//! Workspace-level observability round-trip: a small traced simulation's
//! exported artifacts must parse, validate against their schemas, and
//! reconcile with the simulator's own event counters — and attaching the
//! probe must not perturb the simulation by a single bit.

use std::cell::RefCell;
use std::rc::Rc;

use atac::prelude::*;
use atac::trace::{
    chrome_trace, metrics_jsonl, validate_chrome_trace, validate_metrics_jsonl, Subnet, TrafficKind,
};

fn cfg() -> SimConfig {
    SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    }
}

fn traced_run(epoch: Option<u64>) -> (SimResult, Rc<RefCell<TraceCollector>>) {
    let collector = Rc::new(RefCell::new(TraceCollector::new()));
    let probe = ProbeHandle::attach(Rc::clone(&collector));
    let r = atac::run_benchmark_traced(&cfg(), Benchmark::Radix, Scale::Test, probe, epoch);
    (r, collector)
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let plain = atac::run_benchmark(&cfg(), Benchmark::Radix, Scale::Test);
    let (traced, _) = traced_run(Some(1000));
    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.instructions, traced.instructions);
    assert_eq!(plain.ipc.to_bits(), traced.ipc.to_bits());
    assert_eq!(plain.net.fields(), traced.net.fields());
    assert_eq!(plain.coh.fields(), traced.coh.fields());
    assert_eq!(
        plain.energy.total().value().to_bits(),
        traced.energy.total().value().to_bits()
    );
}

#[test]
fn metrics_jsonl_round_trips_and_reconciles_with_netstats() {
    let (r, collector) = traced_run(Some(1000));
    let c = collector.borrow();
    let text = metrics_jsonl(&c);
    let summary = validate_metrics_jsonl(&text).expect("exported metrics validate");

    // Histogram totals equal the network's own delivery counters.
    assert_eq!(
        summary.net_delivery_total,
        r.net.unicast_received + r.net.broadcast_received
    );
    assert_eq!(summary.net_histograms, 8);
    assert_eq!(summary.txn_histograms, 4);
    assert!(summary.epochs > 0, "epoch sampler was enabled");

    // Laser mode-occupancy series reconciles with the counters the
    // energy integration charges (Table V).
    let [_idle, uni, bcast] = summary.laser_mode_cycles;
    assert_eq!(uni, r.net.laser_unicast_cycles);
    assert_eq!(bcast, r.net.laser_broadcast_cycles);
    assert!(uni + bcast > 0, "radix on ATAC+ must transmit optically");
}

#[test]
fn chrome_trace_round_trips_through_validator() {
    let (_, collector) = traced_run(None);
    let c = collector.borrow();
    let events = validate_chrome_trace(&chrome_trace(&c)).expect("exported trace validates");
    assert!(events > 0, "a real run must emit complete events");
    assert_eq!(
        events as u64,
        c.spans().len() as u64,
        "every collected span becomes one X event"
    );
}

#[test]
fn per_class_histograms_attribute_receive_networks() {
    // ATAC+ uses StarNet: optical deliveries must land in the starnet
    // class, never bnet; the electrical mesh carries the rest.
    let (_, collector) = traced_run(None);
    let c = collector.borrow();
    let count = |s: Subnet, k: TrafficKind| c.net_histogram(s, k).count();
    assert!(count(Subnet::ENet, TrafficKind::Unicast) > 0);
    assert!(
        count(Subnet::StarNet, TrafficKind::Unicast)
            + count(Subnet::StarNet, TrafficKind::Broadcast)
            > 0
    );
    assert_eq!(count(Subnet::BNet, TrafficKind::Unicast), 0);
    assert_eq!(count(Subnet::BNet, TrafficKind::Broadcast), 0);
}
