//! Randomized property tests on the core data structures and protocol
//! invariants.
//!
//! Formerly `proptest`-based; now driven by explicit seeded loops over
//! the in-tree PRNG so the workspace builds offline with no external
//! crates. Coverage is equivalent: each property runs against many
//! deterministic seeds, and a failure message names the seed, which
//! reproduces the case exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use atac::coherence::{Addr, LineState, MemorySystem, ProtocolKind, SetAssocCache};
use atac::net::{AtacNet, CoreId, Delivery, Dest, Message, MessageClass, Network, Topology};
use atac::phys::units::Decibels;

// ----------------------------------------------------------------------
// Cache vs reference model
// ----------------------------------------------------------------------

/// A trivially-correct reference for a set-associative LRU cache.
struct RefCache {
    sets: u64,
    ways: usize,
    line: u64,
    // per set: (tag, state), most-recent last
    content: std::collections::HashMap<u64, Vec<(u64, LineState)>>,
}

impl RefCache {
    fn new(capacity: u64, ways: usize, line: u64) -> Self {
        RefCache {
            sets: capacity / line / ways as u64,
            ways,
            line,
            content: Default::default(),
        }
    }
    fn set_tag(&self, a: u64) -> (u64, u64) {
        let l = a / self.line;
        (l % self.sets, l / self.sets)
    }
    fn access(&mut self, a: u64) -> LineState {
        let (s, t) = self.set_tag(a);
        let set = self.content.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&(tag, _)| tag == t) {
            let e = set.remove(pos);
            set.push(e);
            e.1
        } else {
            LineState::I
        }
    }
    fn fill(&mut self, a: u64, st: LineState) {
        let (s, t) = self.set_tag(a);
        let ways = self.ways;
        let set = self.content.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&(tag, _)| tag == t) {
            set.remove(pos);
        } else if set.len() == ways {
            set.remove(0); // LRU
        }
        set.push((t, st));
    }
    fn invalidate(&mut self, a: u64) {
        let (s, t) = self.set_tag(a);
        if let Some(set) = self.content.get_mut(&s) {
            set.retain(|&(tag, _)| tag != t);
        }
    }
}

/// The production cache agrees with the reference model on every access
/// outcome under arbitrary operation sequences.
#[test]
fn cache_matches_reference() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut real = SetAssocCache::new(4096, 4, 64); // tiny: evicts often
        let mut reference = RefCache::new(4096, 4, 64);
        let ops = rng.gen_range(1..400usize);
        for _ in 0..ops {
            let slot = rng.gen_range(0..2048u64);
            let a = Addr(slot * 64);
            match rng.gen_range(0..3u8) {
                0 => {
                    assert_eq!(real.access(a), reference.access(a.0), "seed {seed}");
                }
                1 => {
                    let st = if slot % 2 == 0 {
                        LineState::S
                    } else {
                        LineState::M
                    };
                    real.fill(a, st);
                    reference.fill(a.0, st);
                }
                _ => {
                    real.invalidate(a);
                    reference.invalidate(a.0);
                }
            }
        }
    }
}

/// Decibel ↔ linear conversion roundtrips across the usable range.
#[test]
fn decibel_roundtrip() {
    for i in 0..=600 {
        let db = f64::from(i) * 0.1;
        let lin = Decibels(db).linear_factor();
        let back = Decibels::from_linear(lin).value();
        assert!((back - db).abs() < 1e-9, "db {db}: back {back}");
    }
}

/// seq_newer is an antisymmetric strict order on nearby values
/// (wrap-around safe).
#[test]
fn seq_newer_is_antisymmetric() {
    use atac::coherence::system::seq_newer;
    let mut rng = SmallRng::seed_from_u64(0x5EC_0001);
    for _ in 0..2_000 {
        let base = u16::try_from(rng.gen_range(0..65_536u32)).unwrap();
        let delta = rng.gen_range(1..1000u16);
        let a = base.wrapping_add(delta);
        assert!(seq_newer(a, base));
        assert!(!seq_newer(base, a));
        assert!(!seq_newer(base, base));
    }
}

/// Every message injected into every network is delivered the right
/// number of times (unicast once, broadcast cores−1), under random
/// traffic with back-pressure.
#[test]
fn network_conservation() {
    for seed in 0..24u64 {
        let seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let topo = Topology::small(8, 4);
        let mut net = AtacNet::atac_plus(topo);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sent_u = 0u64;
        let mut sent_b = 0u64;
        let mut out: Vec<Delivery> = Vec::new();
        for now in 0..400u64 {
            for c in 0..64u16 {
                if rng.gen_bool(0.02) {
                    let dest = if rng.gen_bool(0.02) {
                        Dest::Broadcast
                    } else {
                        Dest::Unicast(CoreId(rng.gen_range(0..64)))
                    };
                    let m = Message {
                        src: CoreId(c),
                        dest,
                        class: MessageClass::Control,
                        token: 0,
                    };
                    if net.try_send(m, now) {
                        match dest {
                            Dest::Unicast(_) => sent_u += 1,
                            Dest::Broadcast => sent_b += 1,
                        }
                    }
                }
            }
            net.tick(now);
            net.drain_deliveries(&mut out);
        }
        let mut now = 400;
        while !net.is_idle() {
            net.tick(now);
            net.drain_deliveries(&mut out);
            now += 1;
            assert!(now < 1_000_000, "network failed to drain (seed {seed})");
        }
        assert_eq!(out.len() as u64, sent_u + sent_b * 63, "seed {seed}");
    }
}

/// The coherence protocol reaches quiescence with its invariants intact
/// under arbitrary small workloads (single-writer, directory accuracy)
/// — the protocol-level safety net.
#[test]
fn protocol_invariants_under_random_workloads() {
    for case in 0..10u64 {
        let seed = case.wrapping_mul(0xA7AC_0001);
        // Sweep the write fraction across cases: 0.0, ~0.11, …, 1.0.
        let writes = f64::from(u32::try_from(case).unwrap()) / 9.0;
        let topo = Topology::small(8, 4);
        let mut net = AtacNet::atac_plus(topo);
        let mut ms = MemorySystem::new(topo, ProtocolKind::AckWise { k: 4 });
        let mut rng = SmallRng::seed_from_u64(seed);
        // 16 hot lines + a few private lines per core.
        let scripts: Vec<Vec<(Addr, bool)>> = (0..64)
            .map(|c| {
                (0..20)
                    .map(|_| {
                        let a = if rng.gen_bool(0.7) {
                            Addr(rng.gen_range(0..16u64) * 64)
                        } else {
                            Addr(0x100_0000 + c as u64 * 4096 + rng.gen_range(0..4u64) * 64)
                        };
                        (a, rng.gen_bool(writes))
                    })
                    .collect()
            })
            .collect();
        let mut pc = vec![0usize; 64];
        let mut blocked = [false; 64];
        let mut deliveries = Vec::new();
        let mut done_cores = Vec::new();
        let mut now = 0u64;
        loop {
            for c in 0..64usize {
                if blocked[c] {
                    continue;
                }
                if let Some(&(a, w)) = scripts[c].get(pc[c]) {
                    pc[c] += 1;
                    if matches!(
                        ms.access(CoreId(c as u16), a, w),
                        atac::coherence::AccessResult::Miss
                    ) {
                        blocked[c] = true;
                    }
                }
            }
            ms.flush_outbox(&mut net, now);
            net.tick(now);
            net.drain_deliveries(&mut deliveries);
            for d in deliveries.drain(..) {
                ms.handle_delivery(&d, now);
            }
            ms.memctrl_tick(now);
            ms.drain_completions(&mut done_cores);
            for c in done_cores.drain(..) {
                blocked[c.idx()] = false;
            }
            now += 1;
            let finished =
                pc.iter().zip(&scripts).all(|(p, s)| *p >= s.len()) && !blocked.iter().any(|&b| b);
            if finished && ms.is_quiescent() && net.is_idle() {
                break;
            }
            assert!(now < 3_000_000, "did not quiesce (seed {seed})");
        }
        ms.check_invariants(true);
    }
}

#[test]
fn reference_cache_helper_sane() {
    let mut r = RefCache::new(4096, 4, 64);
    assert_eq!(r.access(0), LineState::I);
    r.fill(0, LineState::S);
    assert_eq!(r.access(0), LineState::S);
    r.invalidate(0);
    assert_eq!(r.access(0), LineState::I);
}
