//! Qualitative paper-shape regressions at CI scale.
//!
//! Each test pins one of the paper's *qualitative* claims at a 64-core
//! scale that runs in seconds — the full quantitative comparison lives in
//! the 1024-core figure harness (`atac-bench`), but these keep the shapes
//! from silently regressing.

use atac::net::harness::{run_synthetic, SyntheticConfig};
use atac::net::{AtacNet, ReceiveNet, RoutingPolicy};
use atac::prelude::*;
use atac::sim::energy::integrate;

fn cfg64() -> SimConfig {
    SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    }
}

/// §V-C / Fig. 7: the Table IV scenario ordering on a *real* run.
#[test]
fn scenario_energy_ordering_on_real_run() {
    let base = cfg64();
    let r = atac::run_benchmark(&base, Benchmark::Fmm, Scale::Test);
    let net_energy = |s: PhotonicScenario| {
        let cfg = SimConfig {
            scenario: s,
            ..base.clone()
        };
        integrate(&cfg, &r.net, &r.coh, r.cycles, r.ipc)
            .network()
            .value()
    };
    let ideal = net_energy(PhotonicScenario::Ideal);
    let practical = net_energy(PhotonicScenario::Practical);
    let tuned = net_energy(PhotonicScenario::RingTuned);
    let cons = net_energy(PhotonicScenario::Conservative);
    assert!(ideal <= practical && practical < tuned && tuned < cons);
    // Fig. 7's headline: ATAC+ ≈ ATAC+(Ideal).
    assert!(
        practical / ideal < 1.2,
        "practical/ideal {}",
        practical / ideal
    );
}

/// §V-C: "the cache energy dominates (>75%) the combined total energy"
/// (our small chip lands a little lower; the 1024-core figure hits ~80%).
#[test]
fn caches_dominate_network_plus_cache() {
    let cfg = cfg64();
    let r = atac::run_benchmark(&cfg, Benchmark::OceanContig, Scale::Test);
    let frac = r.energy.caches() / r.energy.network_and_caches();
    assert!(frac > 0.5, "cache fraction {frac}");
}

/// Fig. 9 mechanism: with a gated laser, network energy rises with
/// waveguide loss, and the 30 mW non-linearity limit caps the blow-up.
#[test]
fn waveguide_loss_raises_energy_then_clamps() {
    let base = cfg64();
    let r = atac::run_benchmark(&base, Benchmark::Radix, Scale::Test);
    let e = |db: f64| {
        let cfg = SimConfig {
            waveguide_loss_db: Some(db),
            ..base.clone()
        };
        integrate(&cfg, &r.net, &r.coh, r.cycles, r.ipc)
            .laser
            .value()
    };
    assert!(e(8.0) > e(1.6), "loss must raise laser energy");
    // far beyond the clamp, energy stops growing
    let hi = e(60.0);
    let higher = e(70.0);
    assert!(
        (higher - hi).abs() < 1e-12 * hi.max(1e-30),
        "clamp must flatten the tail"
    );
}

/// Fig. 15's mechanism at small scale: ACKwise runtime is *not* a strong
/// function of k (broadcast vs multi-unicast effects offset).
#[test]
fn ackwise_k_runtime_weakly_sensitive() {
    let mk = |k| SimConfig {
        protocol: ProtocolKind::AckWise { k },
        ..cfg64()
    };
    let c4 = atac::run_benchmark(&mk(4), Benchmark::Barnes, Scale::Test).cycles as f64;
    let c64 = atac::run_benchmark(&mk(64), Benchmark::Barnes, Scale::Test).cycles as f64;
    let ratio = c64 / c4;
    assert!(
        (0.5..2.0).contains(&ratio),
        "k=64/k=4 runtime ratio {ratio} out of the paper's 'little variation' band"
    );
}

/// Fig. 16's mechanism: directory energy grows steeply with k while the
/// rest of the system is nearly unchanged.
#[test]
fn directory_energy_scales_with_k() {
    let mk = |k| SimConfig {
        protocol: ProtocolKind::AckWise { k },
        ..cfg64()
    };
    let r4 = atac::run_benchmark(&mk(4), Benchmark::Radix, Scale::Test);
    let r64 = atac::run_benchmark(&mk(64), Benchmark::Radix, Scale::Test);
    let dir4 = (r4.energy.dir_dynamic + r4.energy.dir_static).value();
    let dir64 = (r64.energy.dir_dynamic + r64.energy.dir_static).value();
    assert!(dir64 > 1.3 * dir4, "directory {dir4} -> {dir64}");
}

/// Fig. 3's zero-load ordering: pure-electrical routing (Distance-All)
/// has the *worst* zero-load latency; optical routing the best.
#[test]
fn zero_load_latency_ordering() {
    let topo = Topology::small(16, 4); // 256 cores: enough distance to matter
    let lat = |policy| {
        let mut net = AtacNet::new(topo, 64, 4, policy, ReceiveNet::StarNet);
        let cfg = SyntheticConfig {
            load: 0.005,
            warmup: 200,
            measure: 1_000,
            drain: 20_000,
            ..Default::default()
        };
        run_synthetic(&mut net, &cfg).avg_latency
    };
    let cluster = lat(RoutingPolicy::Cluster);
    let all_electric = lat(RoutingPolicy::DistanceAll);
    assert!(
        cluster < all_electric,
        "optical {cluster} must beat electrical {all_electric} at zero load"
    );
}

/// §V-B: broadcast-heavy applications lose the most on EMesh-Pure.
#[test]
fn broadcast_heavy_apps_hurt_most_on_pure_mesh() {
    let slowdown = |b| {
        let pure = atac::run_benchmark(&cfg64(), b, Scale::Test).cycles as f64;
        let cfg = SimConfig {
            arch: Arch::EMeshPure,
            ..cfg64()
        };
        let on_pure = atac::run_benchmark(&cfg, b, Scale::Test).cycles as f64;
        on_pure / pure
    };
    // barnes broadcasts ~100× more often than lu_contig per unicast.
    assert!(
        slowdown(Benchmark::Barnes) > slowdown(Benchmark::LuContig) * 0.9,
        "broadcast-heavy app should suffer at least comparably on EMesh-Pure"
    );
}

/// Table V's mechanism: the SWMR links are idle the vast majority of the
/// time — the laser-gating opportunity the whole paper turns on.
#[test]
fn swmr_links_mostly_idle() {
    let cfg = cfg64();
    for b in [Benchmark::Barnes, Benchmark::LuContig] {
        let r = atac::run_benchmark(&cfg, b, Scale::Test);
        let util = r.net.swmr_utilization(cfg.topo.clusters());
        assert!(util < 0.5, "{}: utilization {util}", b.name());
    }
}
