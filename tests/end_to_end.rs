//! Workspace-level end-to-end tests: the full stack (workload → cores →
//! coherence → network → energy) on every architecture, checking
//! cross-crate accounting identities and the paper's qualitative
//! orderings at a size small enough for CI.

use atac::prelude::*;
use atac::workloads::Op;

fn cfg(arch: Arch) -> SimConfig {
    SimConfig {
        topo: Topology::small(8, 4),
        arch,
        ..SimConfig::default()
    }
}

const ARCHS: [Arch; 4] = [
    Arch::EMeshPure,
    Arch::EMeshBcast,
    Arch::Atac(
        atac::net::RoutingPolicy::Cluster,
        atac::net::ReceiveNet::BNet,
    ),
    Arch::Atac(
        atac::net::RoutingPolicy::Distance(5),
        atac::net::ReceiveNet::StarNet,
    ),
];

#[test]
fn every_benchmark_completes_on_every_architecture() {
    for b in Benchmark::ALL {
        for arch in ARCHS {
            let c = cfg(arch);
            let r = atac::run_benchmark(&c, b, Scale::Test);
            assert!(r.cycles > 0, "{b:?} on {arch:?}");
            assert!(
                r.ipc > 0.0 && r.ipc <= 1.0,
                "{b:?} on {arch:?}: ipc {}",
                r.ipc
            );
            assert!(r.energy.total().value() > 0.0);
        }
    }
}

#[test]
fn memory_op_accounting_is_exact() {
    // The L1-D access counters must equal the workload's memory ops, and
    // instruction counts must match the scripts — the accounting identity
    // connecting atac-workloads to atac-coherence through atac-sim.
    for b in [
        Benchmark::Radix,
        Benchmark::LuContig,
        Benchmark::DynamicGraph,
    ] {
        let c = cfg(Arch::atac_plus());
        let w = b.build(c.topo.cores(), Scale::Test);
        let r = atac::sim::run(&c, &w);
        assert_eq!(
            r.coh.l1d_reads + r.coh.l1d_writes,
            w.total_mem_ops(),
            "{b:?} memory op accounting"
        );
        assert_eq!(
            r.instructions,
            w.total_instructions(),
            "{b:?} instruction accounting"
        );
        assert_eq!(
            r.coh.l1i_accesses, r.instructions,
            "{b:?} ifetch accounting"
        );
    }
}

#[test]
fn deliveries_match_protocol_expectations() {
    // Every ACKwise broadcast is received by cores-1 receivers.
    let c = cfg(Arch::atac_plus());
    let r = atac::run_benchmark(&c, Benchmark::Barnes, Scale::Test);
    if r.coh.inv_broadcasts > 0 {
        assert_eq!(
            r.net.broadcast_received,
            r.coh.inv_broadcasts * (c.topo.cores() as u64 - 1),
            "broadcast fan-out"
        );
    }
}

#[test]
fn emesh_pure_pays_for_broadcasts() {
    // On a broadcast-heavy app, EMesh-Pure must inject far more flits
    // (1 broadcast → N−1 unicast packets) than EMesh-BCast.
    let pure = atac::run_benchmark(&cfg(Arch::EMeshPure), Benchmark::Barnes, Scale::Test);
    let bcast = atac::run_benchmark(&cfg(Arch::EMeshBcast), Benchmark::Barnes, Scale::Test);
    // each broadcast becomes 63 unicast packets at the source
    assert!(pure.coh.inv_broadcasts > 0, "barnes must broadcast");
    assert!(
        pure.net.flits_injected > bcast.net.flits_injected + pure.coh.inv_broadcasts * 55 * 2,
        "pure {} vs bcast {} ({} broadcasts)",
        pure.net.flits_injected,
        bcast.net.flits_injected,
        pure.coh.inv_broadcasts,
    );
    // NOTE: at this miniature 64-core scale the *runtime* gap between the
    // meshes is noise (a broadcast only expands 63-way); the decisive
    // 1024-core runtime comparison is Fig. 4's job (`fig04_runtime`).
}

#[test]
fn optical_traffic_flows_only_on_atac() {
    {
        let b = Benchmark::Radix;
        let mesh = atac::run_benchmark(&cfg(Arch::EMeshBcast), b, Scale::Test);
        assert_eq!(mesh.net.onet_flits_sent, 0);
        assert_eq!(mesh.energy.laser.value(), 0.0);
        let atac = atac::run_benchmark(&cfg(Arch::atac_baseline()), b, Scale::Test);
        assert!(
            atac.net.onet_flits_sent > 0,
            "cluster routing must use the ONet"
        );
    }
}

#[test]
fn energy_breakdown_fields_sum_to_total() {
    let r = atac::run_benchmark(&cfg(Arch::atac_plus()), Benchmark::OceanContig, Scale::Test);
    let e = &r.energy;
    let sum = e.network().value() + e.caches().value() + e.cores().value();
    assert!((sum - e.total().value()).abs() < 1e-12 * sum.max(1.0));
}

#[test]
fn scenario_reintegration_equals_direct_simulation() {
    // Energy under scenario X computed by re-integration must equal a
    // fresh simulation configured with scenario X (timing is identical).
    let base = cfg(Arch::atac_plus());
    let r1 = atac::run_benchmark(&base, Benchmark::Fmm, Scale::Test);
    let cons_cfg = SimConfig {
        scenario: PhotonicScenario::Conservative,
        ..base.clone()
    };
    let r2 = atac::run_benchmark(&cons_cfg, Benchmark::Fmm, Scale::Test);
    assert_eq!(r1.cycles, r2.cycles, "scenario must not affect timing");
    let reint = atac::sim::energy::integrate(&cons_cfg, &r1.net, &r1.coh, r1.cycles, r1.ipc);
    assert!(
        (reint.total().value() - r2.energy.total().value()).abs()
            < 1e-9 * r2.energy.total().value(),
        "re-integration mismatch"
    );
}

#[test]
fn dirkb_and_ackwise_agree_on_work_done() {
    // Same workload, same architecture: the protocols may differ in
    // traffic but must execute the same instructions.
    let mk = |protocol| SimConfig {
        protocol,
        ..cfg(Arch::atac_plus())
    };
    let a = atac::run_benchmark(
        &mk(ProtocolKind::AckWise { k: 4 }),
        Benchmark::Radix,
        Scale::Test,
    );
    let d = atac::run_benchmark(
        &mk(ProtocolKind::DirB { k: 4 }),
        Benchmark::Radix,
        Scale::Test,
    );
    assert_eq!(a.instructions, d.instructions);
    assert_eq!(a.coh.l1d_reads, d.coh.l1d_reads);
    // Dir_kB collects acks from everyone: strictly more ack traffic
    // whenever any broadcast happened.
    if d.coh.inv_broadcasts > 0 {
        assert!(d.coh.inv_acks > a.coh.inv_acks);
    }
}

#[test]
fn full_map_ackwise_never_broadcasts() {
    let c = SimConfig {
        protocol: ProtocolKind::AckWise { k: 64 },
        ..cfg(Arch::atac_plus())
    };
    let r = atac::run_benchmark(&c, Benchmark::Barnes, Scale::Test);
    assert_eq!(r.coh.inv_broadcasts, 0);
}

#[test]
fn workload_barrier_structure_is_executable() {
    // Every benchmark's scripts must interleave to completion — i.e. the
    // barrier structure is globally consistent (validated + executed).
    for b in Benchmark::ALL {
        let w = b.build(64, Scale::Test);
        w.validate();
        let barriers = w.scripts[0]
            .iter()
            .filter(|o| matches!(o, Op::Barrier))
            .count();
        assert!(barriers > 0, "{} must synchronize", b.name());
    }
}

#[test]
fn end_to_end_determinism() {
    let go = || {
        let r = atac::run_benchmark(
            &cfg(Arch::atac_plus()),
            Benchmark::OceanNonContig,
            Scale::Test,
        );
        (
            r.cycles,
            r.net.flits_injected,
            r.coh.inv_broadcasts,
            r.energy.total().value().to_bits(),
        )
    };
    assert_eq!(go(), go());
}
