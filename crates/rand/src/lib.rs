//! In-tree stand-in for the subset of the `rand` 0.8 API this workspace
//! uses, so the whole repository builds and tests offline (the build
//! machines cannot reach a cargo registry).
//!
//! Only the surface the simulator actually calls is provided:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer `Range`s, and [`Rng::gen_bool`].
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! deterministic, well-distributed, and cheap — but they are **not**
//! bit-identical to upstream `rand`'s streams. All in-repo tests seed
//! explicitly and assert statistical or structural properties, never
//! exact upstream sequences, so this distinction is invisible here.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32 // audit: allow(cast) truncation is the point
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draw uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Draw uniformly from `[0, span)` with Lemire's rejection method
/// (unbiased; at most one extra draw in expectation even for worst-case
/// spans).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        let low = m as u64; // audit: allow(cast) low 64 bits of the 128-bit product
        if low >= threshold {
            return (m >> 64) as u64; // audit: allow(cast) high 64 bits fit by construction
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = u64::from(high) - u64::from(low);
                low + uniform_below(rng, span) as $t // audit: allow(cast) result < span fits the type
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64);

impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let span = (high - low) as u64; // audit: allow(cast) usize ≤ 64 bits on supported targets
        low + uniform_below(rng, span) as usize // audit: allow(cast) result < span fits usize
    }
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // Two's-complement span: reinterpret as unsigned, widen.
                let wide = <$u>::from_ne_bytes((high.wrapping_sub(low)).to_ne_bytes());
                low.wrapping_add(uniform_below(rng, u64::from(wide)) as $t) // audit: allow(cast) offset < span
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]` (matching upstream `rand`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range; exact for
        // every representable p well beyond f64's 53-bit mantissa.
        let scaled = (p * (u64::MAX as f64 + 1.0)) as u64; // audit: allow(cast) intentional quantization
        self.next_u64() < scaled
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG — xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro state must not be all zero; SplitMix64 cannot
            // produce four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator. For this shim it is the same engine as
    /// [`SmallRng`]; nothing in the workspace relies on `StdRng` being
    /// cryptographically strong.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..17u16);
            assert!((10..17).contains(&x));
            let y = rng.gen_range(0..3usize);
            assert!(y < 3);
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_close() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0; // audit: allow(cast) test statistics
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(13);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
