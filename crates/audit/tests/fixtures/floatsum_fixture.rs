//! Float-accum-rule fixture (never compiled; lexed by the audit tests).
//!
//! Seeded: exactly two violations — an unmarked float merge and an
//! unmarked seconds sum outside a merge-named fn. The marked merge, the
//! in-body marker, the waived energy site, the integer counter, and the
//! test module must all stay quiet.

pub struct Phase {
    pub total_secs: f64,
    pub busy_secs: f64,
    pub energy_j: f64,
    pub count: u64,
}

impl Phase {
    /// Unmarked float merge: violation.
    pub fn merge(&mut self, o: &Phase) {
        self.total_secs += o.total_secs;
    }

    /// Unmarked seconds sum outside a merge-named fn: violation.
    pub fn lap(&mut self, d: f64) {
        self.busy_secs += d;
    }

    /// Fold another phase in.
    // audit: order-stable — phases merged in fixed declaration order
    pub fn absorb(&mut self, o: &Phase) {
        self.count += o.count;
        self.total_secs += o.total_secs;
    }

    pub fn combine(&mut self, o: &Phase) {
        // audit: order-stable — operands sorted by phase name before this loop
        self.count += o.count;
    }

    pub fn add_energy(&mut self, j: f64) {
        // audit: allow(float-accum) single writer, serial epoch loop
        self.energy_j += j;
    }

    /// Integer counter outside a merge: fine without a marker.
    pub fn bump(&mut self) {
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sums_in_tests_are_fine() {
        let mut s = 0.0f64;
        s += 1.5;
        let _ = s;
    }
}
