//! Hot-alloc-rule fixture (never compiled; lexed by the audit tests).
//!
//! The test registers `tick` and `deliver_flit` as per-cycle. Seeded:
//! three violations in `tick` (push, clone, format), a waived `vec!`
//! site, setup-time allocations in `new` (censused, not violations),
//! and comment/string decoys.

pub struct Router {
    buf: Vec<u32>,
    names: Vec<String>,
}

impl Router {
    /// Setup-time allocation: censused, never a violation.
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(64),
            names: Vec::new(),
        }
    }

    pub fn tick(&mut self, flit: u32) {
        self.buf.push(flit);
        let snapshot = self.names.clone();
        // Decoy: never call .push( or Box::new( per cycle.
        let label = format!("flit {flit}");
        // audit: allow(alloc) scratch reused, pre-sized at construction
        let scratch = vec![0u8; 4];
        let _ = (snapshot, label, scratch);
    }

    pub fn deliver_flit(&mut self) {
        let msg = "calling .clone() here would be a violation";
        let _ = msg;
    }
}

#[cfg(test)]
mod tests {
    // Decoy: test code may allocate freely.
    #[test]
    fn helper_allocates() {
        let mut v = Vec::new();
        v.push(1u32);
        let s = format!("{v:?}").to_string();
        let _ = s;
    }
}
