//! Determinism-rule fixture (never compiled; lexed by the audit tests).
//!
//! Seeded live violations — exactly four: a `HashMap` field, a
//! `HashSet` local, an `Instant::now` call, and an `env::var` read.
//! Everything else is a decoy the lexer/scope tracker must keep quiet:
//! string literals, doc comments, commented-out code, a `#[cfg(test)]`
//! module, "Instantiate" prose, and properly waived lines.

/// Routing state. Decoy: this doc comment mentions HashMap freely.
pub struct Router {
    table: std::collections::HashMap<u32, u32>,
}

impl Router {
    /// Instantiate the router. Decoy: "Instantiate" must not match the
    /// `Instant` token.
    pub fn build(&mut self) {
        // Decoy: commented-out code.
        // let old: HashSet<u32> = HashSet::new();
        /* let older = HashMap::with_capacity(8); */
        let msg = "never use HashMap or Instant::now in simulated state";
        let mut seen = std::collections::HashSet::new();
        seen.insert(msg.len());
    }

    pub fn time_things(&mut self) {
        let t0 = std::time::Instant::now();
        let jobs = std::env::var("ATAC_JOBS");
        let _ = (t0, jobs);
    }

    pub fn waived_things(&mut self) {
        // audit: allow(nondet-map) keyed lookups only, never iterated
        let cache: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let wall = std::time::SystemTime::now(); // audit: allow(ambient) host log timestamp only
        let _ = (cache, wall);
    }
}

#[cfg(test)]
mod tests {
    // Decoy: tests may hash and time freely.
    #[test]
    fn hashes_and_clocks_in_tests_are_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        let t = std::time::Instant::now();
        let _ = (m, t);
    }
}
