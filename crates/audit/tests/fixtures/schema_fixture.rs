//! Schema-drift-rule fixture (never compiled; lexed by the audit tests).
//!
//! `emit` writes three static keys (`schema`, `cycles`, `energy_j`) via
//! escaped, raw-string, and dynamic literals; `parse` only knows
//! `schema` and `cycles` — `energy_j` is the seeded drift.

pub fn emit(out: &mut String, cycles: u64, energy: f64, name: &str, v: u64) {
    out.push_str("{\"schema\": 1,");
    out.push_str(&format!("\"cycles\": {cycles},"));
    out.push_str(&format!(r#""energy_j": {energy},"#));
    out.push_str(&format!("\"{name}\": {v}"));
    out.push_str("}");
}

pub fn parse(doc: &Json) -> Option<(u64, u64)> {
    let s = doc.get("schema")?.as_u64()?;
    let c = doc.get("cycles")?.as_u64()?;
    Some((s, c))
}
