//! Rule 10: float accumulation order in sweep-reachable reductions.
//!
//! The parallel executor merges per-run artifacts (histograms, host
//! profiles, phase timings) into sweep-level documents, and the history
//! registry folds those again. Float addition is not associative: if a
//! merge's accumulation order depended on worker completion order, the
//! "byte-identical parallel vs serial sweeps" contract would hold only
//! by luck. This rule flags `+=` accumulation in the reduction files
//! when it is float-shaped (an `f64`/seconds/energy/coverage operand)
//! or sits in a merge-named function, and requires the *function* to
//! declare its ordering contract with a comment:
//!
//! ```text
//! // audit: order-stable — merged in planned-run order, not completion order
//! fn absorb(&mut self, other: &Profile) { … }
//! ```
//!
//! Integer accumulators in merge functions need the marker too — the
//! point is that every reduction states *why* its order (or operand
//! algebra) makes the result deterministic. A single odd site can be
//! waived with `// audit: allow(float-accum) <reason>`.

use crate::lex::{tokens, FileModel};
use crate::{comment_block_above, has_waiver, violation, Violation};

/// The merge/reduction files reachable from the parallel executor: the
/// trace accumulators workers fill, the executor that folds them, and
/// the report layer that folds sweeps into history and rendered output.
pub const REDUCTION_FILES: &[&str] = &[
    "crates/trace/src/profile.rs",
    "crates/trace/src/hist.rs",
    "crates/trace/src/collect.rs",
    "crates/bench/src/executor.rs",
    "crates/bench/src/cache.rs",
    "crates/report/src/history.rs",
    "crates/report/src/sweep.rs",
    "crates/report/src/gate.rs",
    "crates/report/src/render.rs",
];

/// Function-name fragments that mark a reduction.
const MERGE_NAMES: &[&str] = &["merge", "absorb", "combine", "accumulate", "reduce", "fold"];

/// Identifier fragments that mark a float-shaped operand.
const FLOAT_HINTS: &[&str] = &["secs", "energy", "joule", "coverage", "edp", "watts"];

fn is_merge_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    MERGE_NAMES.iter().any(|m| lower.contains(m))
}

fn line_is_float_shaped(code: &str) -> bool {
    tokens(code).any(|t| {
        t == "f64"
            || t == "as_secs_f64"
            || FLOAT_HINTS
                .iter()
                .any(|h| t.to_ascii_lowercase().contains(h))
    })
}

/// Is the enclosing function (or this line) declared order-stable? The
/// marker may sit on the line, the line above, anywhere in the function
/// body, or in the comment block above the signature.
fn order_stable(model: &FileModel, idx: usize) -> bool {
    const MARKER: &str = "audit: order-stable";
    let line = &model.lines[idx];
    if line.comment.contains(MARKER) {
        return true;
    }
    if idx > 0 && model.lines[idx - 1].comment.contains(MARKER) {
        return true;
    }
    if let Some(fn_idx) = line.fn_idx {
        let span = &model.fns[fn_idx];
        let in_extent =
            (span.sig_line..=span.body_end).any(|l| model.lines[l].comment.contains(MARKER));
        if in_extent {
            return true;
        }
        if comment_block_above(model, span.sig_line)
            .iter()
            .any(|l| l.contains(MARKER))
        {
            return true;
        }
    }
    false
}

/// Run the float-accumulation rule over one reduction file.
pub fn check_float_accum(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test || !line.code.contains("+=") {
            continue;
        }
        let in_merge_fn = line
            .fn_idx
            .is_some_and(|i| is_merge_name(&model.fns[i].name));
        let floaty = line_is_float_shaped(&line.code);
        if !(in_merge_fn || floaty) {
            continue;
        }
        if order_stable(model, idx) || has_waiver(model, idx, "float-accum") {
            continue;
        }
        let func = line
            .fn_idx
            .map_or_else(|| "<file scope>".to_string(), |i| model.fns[i].name.clone());
        let why = if in_merge_fn && floaty {
            "float accumulation in a merge function"
        } else if in_merge_fn {
            "accumulation in a merge function"
        } else {
            "float-shaped accumulation in a sweep-reachable reduction file"
        };
        let msg = format!(
            "{why} (`{func}`): float addition is not associative, so the sum must \
             not depend on worker completion order; declare the contract with \
             `// audit: order-stable — <why>` on the function, or waive one site \
             with `// audit: allow(float-accum) <reason>`"
        );
        out.push(violation(rel, model, idx, "float-accum", msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = include_str!("../tests/fixtures/floatsum_fixture.rs");

    fn run(src: &str) -> Vec<Violation> {
        let m = FileModel::parse(src);
        let mut v = Vec::new();
        check_float_accum("crates/trace/src/profile.rs", &m, &mut v);
        v
    }

    #[test]
    fn fixture_fires_on_unmarked_reductions_only() {
        let v = run(FIXTURE);
        assert!(v.iter().all(|x| x.rule == "float-accum"), "{v:?}");
        // Seeded: an unmarked float merge and an unmarked secs sum.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("merge function")));
    }

    #[test]
    fn marked_function_covers_every_site_in_it() {
        let v = run("/// Fold another profile in.\n\
             // audit: order-stable — phases merged by fixed name order\n\
             fn merge(&mut self, o: &P) {\n\
                 self.total_secs += o.total_secs;\n\
                 self.busy_secs += o.busy_secs;\n\
             }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn integer_counters_outside_merges_are_fine() {
        let v = run("fn bump(&mut self) {\n    self.cache_hits += 1;\n    self.i += n;\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn integer_merge_still_needs_marker() {
        let v = run("fn merge(&mut self, o: &H) {\n    self.count += o.count;\n}\n");
        assert_eq!(v.len(), 1, "u64 merges must state associativity too");
        let ok = run(
            "fn merge(&mut self, o: &H) {\n    // audit: order-stable — u64 addition is associative\n    self.count += o.count;\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }
}
