//! A lightweight string/comment-aware Rust lexer and per-file scope
//! tracker — the substrate every audit rule runs on.
//!
//! [`FileModel::parse`] classifies every byte of a source file as code,
//! comment, or string-literal interior (line + nested block comments,
//! plain/raw/byte strings, char literals vs lifetimes), then walks the
//! code text tracking `fn` / `mod` / `impl` brace scopes. Rules
//! therefore see, per line:
//!
//! * `code` — the line with comments and string interiors blanked out,
//!   so a pattern inside a doc comment, an error message, or a
//!   commented-out experiment can never fire a rule;
//! * `comment` — just the comment text, where waiver markers live;
//! * `strings` — the string-literal payloads (the schema-drift rule
//!   reads JSON key vocabularies out of these);
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` module
//!   or a `#[test]` function, *anywhere* in the file (the old audit
//!   only skipped a trailing test module);
//! * the innermost enclosing function, via [`FnSpan`] — which is what
//!   lets the allocation census and the float-accumulation rule reason
//!   about *where* a pattern occurs, not just that it occurs.

/// One function's extent in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// 0-based line where the item header began (attributes included).
    pub sig_line: usize,
    /// 0-based line of the body's opening `{`.
    pub body_start: usize,
    /// 0-based line of the matching `}` (== `body_start` for one-liners).
    pub body_end: usize,
    /// Inside a `#[cfg(test)]` module, or itself a `#[test]` fn.
    pub in_test: bool,
}

/// One source line, classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// The line exactly as written.
    pub raw: String,
    /// The line with comment bytes and string/char interiors replaced
    /// by spaces (delimiters kept). Same length as `raw`.
    pub code: String,
    /// Only the comment bytes of the line, concatenated.
    pub comment: String,
    /// Contents of string literals that *start* on this line (a
    /// multi-line literal contributes its whole payload here).
    pub strings: Vec<String>,
    /// Line is inside test-only code (`#[cfg(test)]` mod / `#[test]` fn).
    pub in_test: bool,
    /// Index into [`FileModel::fns`] of the innermost enclosing fn.
    pub fn_idx: Option<usize>,
}

/// A lexed + scope-tracked source file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Per-line classification, in file order.
    pub lines: Vec<Line>,
    /// Every `fn` item found, in order of appearance.
    pub fns: Vec<FnSpan>,
}

/// Byte classification produced by the lexer pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cls {
    Code,
    Comment,
    Str,
}

impl FileModel {
    /// Lex and scope-track `text`.
    pub fn parse(text: &str) -> FileModel {
        let (cls, strings_by_line) = classify(text);
        let mut lines: Vec<Line> = Vec::new();
        let bytes = text.as_bytes();
        let mut start = 0usize;
        let mut line_no = 0usize;
        for i in 0..=bytes.len() {
            if i == bytes.len() || bytes[i] == b'\n' {
                let raw = &text[start..i];
                let mut code = String::with_capacity(raw.len());
                let mut comment = String::new();
                for (off, ch) in raw.char_indices() {
                    match cls[start + off] {
                        Cls::Code => code.push(ch),
                        Cls::Comment => {
                            code.push(' ');
                            comment.push(ch);
                        }
                        Cls::Str => code.push(' '),
                    }
                }
                lines.push(Line {
                    raw: raw.to_string(),
                    code,
                    comment,
                    strings: strings_by_line
                        .iter()
                        .filter(|(l, _)| *l == line_no)
                        .map(|(_, s)| s.clone())
                        .collect(),
                    in_test: false,
                    fn_idx: None,
                });
                line_no += 1;
                start = i + 1;
            }
        }
        let mut model = FileModel {
            lines,
            fns: Vec::new(),
        };
        track_scopes(&mut model);
        model
    }

    /// The extent of the named function (first match), if present.
    pub fn find_fn(&self, name: &str) -> Option<&FnSpan> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// All spans with the given name (trait impls repeat names).
    pub fn find_fns<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FnSpan> {
        self.fns.iter().filter(move |f| f.name == name)
    }
}

/// Classify every byte of `text`; also collect `(start_line, payload)`
/// for each string literal.
#[allow(clippy::too_many_lines)]
fn classify(text: &str) -> (Vec<Cls>, Vec<(usize, String)>) {
    let b = text.as_bytes();
    let n = b.len();
    let mut cls = vec![Cls::Code; n];
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    // Current string accumulator: (start_line, payload).
    let mut cur_str: Option<(usize, String)> = None;

    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str { raw_hashes: Option<u32> },
        CharLit,
    }
    let mut st = St::Code;

    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
        }
        match st {
            St::Code => {
                if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
                    st = St::LineComment;
                    cls[i] = Cls::Comment;
                    cls[i + 1] = Cls::Comment;
                    i += 2;
                    continue;
                }
                if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    st = St::BlockComment(1);
                    cls[i] = Cls::Comment;
                    cls[i + 1] = Cls::Comment;
                    i += 2;
                    continue;
                }
                // Raw / byte strings: r"...", r#"..."#, b"...", br#"..."#.
                let prev_ident = i > 0 && is_ident_byte(b[i - 1]);
                if !prev_ident && (c == b'r' || c == b'b') {
                    let mut j = i + 1;
                    if c == b'b' && j < n && b[j] == b'r' {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while j < n && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || c == b'r'; // saw 'r' (maybe after 'b')
                    let rawish = c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r');
                    if j < n && b[j] == b'"' && (is_raw || hashes == 0) && (rawish || hashes == 0) {
                        if rawish {
                            st = St::Str {
                                raw_hashes: Some(hashes),
                            };
                            cur_str = Some((line, String::new()));
                            i = j + 1;
                            continue;
                        }
                        // b"..." — ordinary escape rules.
                        if c == b'b' && i + 1 < n && b[i + 1] == b'"' {
                            st = St::Str { raw_hashes: None };
                            cur_str = Some((line, String::new()));
                            i += 2;
                            continue;
                        }
                    }
                }
                if c == b'"' {
                    st = St::Str { raw_hashes: None };
                    cur_str = Some((line, String::new()));
                    i += 1;
                    continue;
                }
                if c == b'\'' {
                    // Char literal vs lifetime.
                    if i + 1 < n && b[i + 1] == b'\\' {
                        st = St::CharLit;
                        i += 1;
                        continue;
                    }
                    if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                        // 'x' — blank the payload byte (may start a
                        // multibyte char; blank until the closing quote).
                        let mut j = i + 1;
                        while j < n && b[j] != b'\'' {
                            cls[j] = Cls::Str;
                            j += 1;
                        }
                        i = (j + 1).min(n);
                        continue;
                    }
                    // Multibyte char literal like 'é' (payload > 1 byte,
                    // closing quote not at i+2): detect by scanning a few
                    // bytes for a close quote with no ident chars after.
                    if i + 2 < n && !b[i + 1].is_ascii() {
                        let mut j = i + 1;
                        while j < n && b[j] != b'\'' && j - i <= 5 {
                            j += 1;
                        }
                        if j < n && b[j] == b'\'' {
                            for slot in &mut cls[i + 1..j] {
                                *slot = Cls::Str;
                            }
                            i = j + 1;
                            continue;
                        }
                    }
                    // Lifetime — leave as code.
                    i += 1;
                    continue;
                }
                i += 1;
            }
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                } else {
                    cls[i] = Cls::Comment;
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    cls[i] = Cls::Comment;
                    cls[i + 1] = Cls::Comment;
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    cls[i] = Cls::Comment;
                    cls[i + 1] = Cls::Comment;
                    st = St::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                if c != b'\n' {
                    cls[i] = Cls::Comment;
                }
                i += 1;
            }
            St::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == b'\\' && i + 1 < n {
                        cls[i] = Cls::Str;
                        cls[i + 1] = Cls::Str;
                        if let Some((_, s)) = cur_str.as_mut() {
                            s.push(b[i] as char);
                            s.push(b[i + 1] as char);
                        }
                        if b[i + 1] == b'\n' {
                            line += 1;
                        }
                        i += 2;
                        continue;
                    }
                    if c == b'"' {
                        st = St::Code;
                        if let Some(done) = cur_str.take() {
                            strings.push(done);
                        }
                        i += 1;
                        continue;
                    }
                    cls[i] = Cls::Str;
                    if let Some((_, s)) = cur_str.as_mut() {
                        // Multibyte payload bytes are pushed lossily as
                        // replacement spaces; key extraction only needs
                        // ASCII.
                        s.push(if c.is_ascii() { c as char } else { ' ' });
                    }
                    i += 1;
                }
                Some(h) => {
                    if c == b'"' {
                        let mut k = 0u32;
                        while (k as usize) < n - i - 1 && b[i + 1 + k as usize] == b'#' && k < h {
                            k += 1;
                        }
                        if k == h {
                            st = St::Code;
                            if let Some(done) = cur_str.take() {
                                strings.push(done);
                            }
                            i += 1 + h as usize;
                            continue;
                        }
                    }
                    cls[i] = Cls::Str;
                    if let Some((_, s)) = cur_str.as_mut() {
                        s.push(if c.is_ascii() { c as char } else { ' ' });
                    }
                    i += 1;
                }
            },
            St::CharLit => {
                if c == b'\\' && i + 1 < n {
                    cls[i] = Cls::Str;
                    cls[i + 1] = Cls::Str;
                    i += 2;
                    continue;
                }
                if c == b'\'' {
                    st = St::Code;
                    i += 1;
                    continue;
                }
                cls[i] = Cls::Str;
                i += 1;
            }
        }
    }
    (cls, strings)
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// What a brace scope is, decided from the item header preceding `{`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ScopeKind {
    Fn(usize),
    TestScope,
    Other,
}

struct Frame {
    kind: ScopeKind,
}

/// Walk the code text, pushing a frame per `{` and popping per `}`,
/// classifying each frame from the accumulated item header.
fn track_scopes(model: &mut FileModel) {
    let mut stack: Vec<Frame> = Vec::new();
    let mut header = String::new();
    let mut header_start: Option<usize> = None;
    let mut open_fns: Vec<usize> = Vec::new(); // indices into model.fns
    let mut fn_bodies: Vec<(usize, usize, usize)> = Vec::new(); // (fn idx, start, end)

    let line_count = model.lines.len();
    for ln in 0..line_count {
        let code = model.lines[ln].code.clone();
        let start_in_test = stack.iter().any(|f| f.kind == ScopeKind::TestScope);
        let start_fn = open_fns.last().copied();
        for ch in code.chars() {
            match ch {
                '{' => {
                    let kind = classify_header(&header, header_start.unwrap_or(ln), ln, model);
                    if let ScopeKind::Fn(idx) = kind {
                        open_fns.push(idx);
                        model.fns[idx].body_start = ln;
                    }
                    stack.push(Frame { kind });
                    header.clear();
                    header_start = None;
                }
                '}' => {
                    if let Some(frame) = stack.pop() {
                        if let ScopeKind::Fn(idx) = frame.kind {
                            open_fns.pop();
                            fn_bodies.push((idx, model.fns[idx].body_start, ln));
                        }
                    }
                    header.clear();
                    header_start = None;
                }
                ';' => {
                    header.clear();
                    header_start = None;
                }
                c => {
                    if !c.is_whitespace() && header_start.is_none() {
                        header_start = Some(ln);
                    }
                    header.push(c);
                }
            }
        }
        header.push(' ');
        let end_in_test = stack.iter().any(|f| f.kind == ScopeKind::TestScope);
        let end_fn = open_fns.last().copied();
        let l = &mut model.lines[ln];
        l.in_test = start_in_test || end_in_test;
        l.fn_idx = end_fn.or(start_fn);
    }
    for (idx, _start, end) in fn_bodies {
        model.fns[idx].body_end = end;
    }
    // Propagate test-ness onto the fn spans themselves.
    for f in &mut model.fns {
        if model.lines[f.body_start].in_test {
            f.in_test = true;
        }
    }
}

/// Decide what scope a `{` opens, registering a new [`FnSpan`] when the
/// header declares a function.
fn classify_header(
    header: &str,
    header_start: usize,
    brace_line: usize,
    model: &mut FileModel,
) -> ScopeKind {
    let compact: String = header.chars().filter(|c| !c.is_whitespace()).collect();
    let is_test_attr = compact.contains("#[cfg(test)]")
        || compact.contains("#[cfg(all(test")
        || compact.contains("#[cfg(any(test")
        || compact.contains("#[test]");

    // `fn name` — token scan so `Fn`/`FnMut` bounds and `fn(` pointer
    // types don't count.
    let toks: Vec<&str> = tokens(header).collect();
    let mut fn_name = None;
    for w in toks.windows(2) {
        if w[0] == "fn" && is_ident(w[1]) {
            fn_name = Some(w[1].to_string());
            break;
        }
    }
    if let Some(name) = fn_name {
        let idx = model.fns.len();
        model.fns.push(FnSpan {
            name,
            sig_line: header_start,
            body_start: brace_line,
            body_end: brace_line,
            in_test: is_test_attr,
        });
        if is_test_attr {
            return ScopeKind::TestScope;
        }
        return ScopeKind::Fn(idx);
    }
    if is_test_attr && has_token(header, "mod") {
        return ScopeKind::TestScope;
    }
    ScopeKind::Other
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| !c.is_ascii_digit())
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Identifier-like tokens of `code` (split on non-word characters).
pub fn tokens(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
}

/// Whole-token containment: `has_token("Instantiate x", "Instant")` is
/// false, which substring matching gets wrong.
pub fn has_token(code: &str, tok: &str) -> bool {
    tokens(code).any(|t| t == tok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let m = FileModel::parse(
            "let a = 1; // HashMap in a comment\nlet s = \"HashMap::new()\"; let b = 2;\n",
        );
        assert!(!m.lines[0].code.contains("HashMap"));
        assert!(m.lines[0].comment.contains("HashMap"));
        assert!(!m.lines[1].code.contains("HashMap"));
        assert_eq!(m.lines[1].strings, vec!["HashMap::new()".to_string()]);
        assert!(m.lines[1].code.contains("let b = 2;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let m = FileModel::parse("/* outer /* inner */ still comment */ let x = 1;\n/*\nunwrap()\n*/\nlet y = q.unwrap();\n");
        assert!(m.lines[0].code.contains("let x = 1;"));
        assert!(!m.lines[0].code.contains("inner"));
        assert!(!m.lines[2].code.contains("unwrap"));
        assert!(m.lines[4].code.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let m = FileModel::parse(
            "let a = r#\"say \"_ =>\" here\"#;\nlet b = \"esc \\\" _ => quote\";\nlet c = 'x';\nlet lt: &'static str = \"s\";\n",
        );
        assert!(!m.lines[0].code.contains("=>"));
        assert!(m.lines[0].strings[0].contains("_ =>"));
        assert!(!m.lines[1].code.contains("=>"));
        assert!(!m.lines[2].code.contains('x'));
        assert!(m.lines[3].code.contains("'static"));
    }

    #[test]
    fn string_with_comment_marker_does_not_eat_line() {
        let m = FileModel::parse("let s = \"a // b\"; q.unwrap();\n");
        assert!(m.lines[0].code.contains(".unwrap()"));
        assert!(m.lines[0].comment.is_empty());
    }

    #[test]
    fn fn_scopes_and_extents() {
        let src = "\
pub fn outer(x: u32) -> u32 {
    let v = x + 1;
    v
}

impl Foo {
    fn method(&self) {
        helper();
    }
}
";
        let m = FileModel::parse(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "method"]);
        let outer = m.find_fn("outer").unwrap();
        assert_eq!((outer.body_start, outer.body_end), (0, 3));
        let method = m.find_fn("method").unwrap();
        assert_eq!((method.body_start, method.body_end), (6, 8));
        assert_eq!(m.lines[1].fn_idx, Some(0));
        assert_eq!(m.lines[7].fn_idx, Some(1));
        assert_eq!(m.lines[5].fn_idx, None, "impl body line, not inside a fn");
    }

    #[test]
    fn multi_line_signature_attaches_to_fn() {
        let src = "\
fn long(
    a: u32,
    b: u32,
) -> u32 {
    a + b
}
";
        let m = FileModel::parse(src);
        let f = m.find_fn("long").unwrap();
        assert_eq!(f.sig_line, 0);
        assert_eq!(f.body_start, 3);
        assert_eq!(f.body_end, 5);
        assert_eq!(m.lines[4].fn_idx, Some(0));
    }

    #[test]
    fn cfg_test_module_anywhere_marks_lines() {
        let src = "\
fn real() {
    work();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        fake();
    }
}

fn after_tests() {
    more_work();
}
";
        let m = FileModel::parse(src);
        assert!(!m.lines[1].in_test);
        assert!(m.lines[8].in_test, "inside #[cfg(test)] mod");
        assert!(
            !m.lines[13].in_test,
            "code after the test module is live again"
        );
        assert!(m.find_fn("t").unwrap().in_test);
        assert!(!m.find_fn("after_tests").unwrap().in_test);
    }

    #[test]
    fn test_attr_fn_outside_mod_is_test() {
        let src = "#[test]\nfn standalone() {\n    fake();\n}\n";
        let m = FileModel::parse(src);
        assert!(m.lines[2].in_test);
    }

    #[test]
    fn fn_pointer_types_and_fn_bounds_are_not_fns() {
        let src = "fn real(cb: fn(u32) -> u32) -> Box<dyn Fn()> {\n    cb(1);\n}\n";
        let m = FileModel::parse(src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("let t = Instant::now();", "Instant"));
        assert!(!has_token("/// Instantiate the network", "Instant"));
        assert!(!has_token("Instantiate", "Instant"));
        assert!(has_token("use std::env;", "env"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let m = FileModel::parse("let a = '\"'; let b = q.unwrap();\nlet c = '\\n';\n");
        assert!(m.lines[0].code.contains(".unwrap()"));
        assert!(m.lines[1].code.contains("let c"));
    }
}
