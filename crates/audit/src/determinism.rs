//! Rule 8: statically enforce the bit-identical-results contract.
//!
//! The regression gate (`atac-report gate --baseline`) and the parallel
//! executor's `ATAC_VERIFY` mode both *compare* results exactly; this
//! rule removes the two classic ways a simulator silently stops being
//! comparable in the first place:
//!
//! * **Hash-order iteration.** `std::collections::HashMap`/`HashSet`
//!   randomize their iteration order per process (SipHash keyed from the
//!   OS). Any iteration that reaches simulated state, message order, or
//!   exported stats makes results differ run-to-run. Result-bearing
//!   crates must use `BTreeMap`/`BTreeSet`; a container that is provably
//!   never iterated (or sorted before iteration) can be waived with
//!   `// audit: allow(nondet-map) <reason>`.
//! * **Ambient input.** Wall clocks (`Instant`, `SystemTime`),
//!   environment variables (`env::var`), and OS-seeded randomness
//!   (`thread_rng`, `from_entropy`, `RandomState`) inject host state
//!   into the run. Host-*observability* code is exempt by construction:
//!   it lives in `crates/trace`/`crates/bench`, which this rule does not
//!   scan (see [`HOST_OBSERVABILITY`]). The vendored `crates/rand` with
//!   an explicit `SmallRng::seed_from_u64` seed is the sanctioned
//!   randomness. Genuine orchestration entry points can be waived with
//!   `// audit: allow(ambient) <reason>`.

use crate::lex::{has_token, FileModel};
use crate::{has_waiver, violation, Violation};

/// Source prefixes of the result-bearing crates: everything whose output
/// feeds figures, sweep artifacts, or the history registry.
pub const DETERMINISM_PREFIXES: &[&str] = &[
    "crates/net/src/",
    "crates/coherence/src/",
    "crates/sim/src/",
    "crates/phys/src/",
    "crates/workloads/src/",
];

/// Host-side observability surfaces that are *deliberately* outside
/// [`DETERMINISM_PREFIXES`]: they measure the host (wall clocks, RSS,
/// `Instant`-derived span timestamps) and never feed a `run_key`-compared
/// metric. The `HostProfiler` phase laps and the flight journal's
/// host-time fields (`start_s`/`end_s`/`t_s`/`wall_s`) are exempt by
/// construction — the gate compares simulated metrics, not these.
/// The self-check test below keeps this list and the scanned prefixes
/// disjoint, so hoisting one of these files into a result-bearing crate
/// trips the audit instead of silently widening the exemption.
pub const HOST_OBSERVABILITY: &[&str] =
    &["crates/trace/src/profile.rs", "crates/trace/src/flight.rs"];

/// Hash containers whose iteration order is process-randomized.
const HASH_CONTAINERS: &[&str] = &["HashMap", "HashSet"];

/// Identifiers that read host wall-clocks or OS entropy.
const AMBIENT_TOKENS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "RandomState",
];

/// Run the determinism rule over one file. Files outside
/// [`DETERMINISM_PREFIXES`] are skipped, as are `#[cfg(test)]` regions
/// (tests may hash and time freely — they assert on outputs, they do not
/// produce them).
pub fn check_determinism(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    if !DETERMINISM_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test {
            continue;
        }
        let code = &line.code;

        for container in HASH_CONTAINERS {
            if has_token(code, container) && !has_waiver(model, idx, "nondet-map") {
                let msg = format!(
                    "`{container}` in a result-bearing crate: iteration order is \
                     process-randomized and can leak into simulated state or exported \
                     stats; use BTreeMap/BTreeSet, or sort before iterating and waive \
                     with `// audit: allow(nondet-map) <reason>`"
                );
                out.push(violation(rel, model, idx, "determinism", msg));
            }
        }

        for tok in AMBIENT_TOKENS {
            if has_token(code, tok) && !has_waiver(model, idx, "ambient") {
                let msg = format!(
                    "`{tok}` in a result-bearing crate injects host state into the \
                     run; keep wall-clock/entropy out of simulated results (host \
                     profiling lives in crates/trace), or waive a genuine \
                     orchestration entry with `// audit: allow(ambient) <reason>`"
                );
                out.push(violation(rel, model, idx, "determinism", msg));
            }
        }

        if code.contains("env::var") && !has_waiver(model, idx, "ambient") {
            out.push(violation(
                rel,
                model,
                idx,
                "determinism",
                "`env::var` in a result-bearing crate makes results depend on the \
                 caller's environment; thread configuration through SimConfig (it \
                 is part of the run key), or waive an orchestration entry with \
                 `// audit: allow(ambient) <reason>`"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let m = FileModel::parse(src);
        let mut v = Vec::new();
        check_determinism(rel, &m, &mut v);
        v
    }

    const FIXTURE: &str = include_str!("../tests/fixtures/determinism_fixture.rs");

    #[test]
    fn fixture_fires_on_live_code_only() {
        let v = run("crates/net/src/fixture.rs", FIXTURE);
        let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert!(rules.iter().all(|r| *r == "determinism"), "{v:?}");
        // Exactly the four seeded live violations: HashMap field,
        // HashSet local, Instant::now, env::var. The decoys (string
        // literal, doc comment, commented-out code, #[cfg(test)] module,
        // "Instantiate" prose, waived lines) must all stay quiet.
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("HashMap")));
        assert!(v.iter().any(|x| x.message.contains("HashSet")));
        assert!(v.iter().any(|x| x.message.contains("Instant")));
        assert!(v.iter().any(|x| x.message.contains("env::var")));
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let v = run(
            "crates/bench/src/executor.rs",
            "use std::collections::HashMap;\nlet t = Instant::now();\n",
        );
        assert!(v.is_empty(), "host-side crates may hash and time: {v:?}");
    }

    #[test]
    fn waivers_are_honored() {
        let v = run(
            "crates/sim/src/x.rs",
            "// audit: allow(nondet-map) never iterated, keyed lookups only\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             let t = std::env::var(\"ATAC_X\"); // audit: allow(ambient) CLI entry, part of run key\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn instantiate_prose_is_not_instant() {
        let v = run(
            "crates/sim/src/config.rs",
            "/// Instantiate the configured network.\nfn build() { net(); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn host_observability_stays_outside_the_scanned_prefixes() {
        for file in HOST_OBSERVABILITY {
            assert!(
                !DETERMINISM_PREFIXES.iter().any(|p| file.starts_with(p)),
                "{file} is host-side observability; listing it under a scanned \
                 prefix would flag its own wall-clock reads"
            );
            // And the exemption names real files, not ghosts.
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(file);
            assert!(root.is_file(), "{file} no longer exists; update the list");
        }
    }

    #[test]
    fn seeded_small_rng_is_sanctioned() {
        let v = run(
            "crates/workloads/src/x.rs",
            "use rand::rngs::SmallRng;\nlet mut rng = SmallRng::seed_from_u64(seed);\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
