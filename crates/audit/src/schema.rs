//! Rule 11: schema drift between JSON emitters and their validators.
//!
//! Every JSON artifact in this workspace is written by a hand-rolled
//! emitter and read back by a hand-rolled validator/parser — that pair
//! is the schema. Nothing stops an emitter gaining a field its reader
//! never learns about (the reader is forward-compatible and would
//! silently ignore it), which is exactly how a "recorded" metric ends
//! up invisible to the regression gate. This rule extracts the static
//! key vocabulary each emitter writes (the `\"key\":` literals in its
//! format strings; `{…}`-interpolated dynamic keys are exempt) and
//! requires every key to appear in the paired validator functions'
//! string literals. The committed `BENCH_history.jsonl` is additionally
//! checked against the history emitter's vocabulary, with the
//! `HostPhase` names admitted for the dynamic `phases` members.
//!
//! The registry below self-checks: naming a function that no longer
//! exists is itself a violation, so a rename cannot silently drop a
//! pair. Waive an intentional emitter-only key with
//! `// audit: allow(schema) <reason>` on the emitter function.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lex::FileModel;
use crate::{has_waiver, violation, Violation};

/// One emitter/validator pair.
struct SchemaPair {
    /// Human label for messages.
    label: &'static str,
    /// File owning the emitter functions.
    emit_file: &'static str,
    /// The functions whose string literals form the emitted vocabulary.
    emit_fns: &'static [&'static str],
    /// `(file, functions)` whose string literals form the accepted
    /// vocabulary.
    vocab: &'static [(&'static str, &'static [&'static str])],
}

const PAIRS: &[SchemaPair] = &[
    SchemaPair {
        label: "trace metrics JSONL",
        emit_file: "crates/trace/src/export.rs",
        emit_fns: &["metrics_jsonl", "push_histogram_line"],
        vocab: &[("crates/trace/src/export.rs", &["validate_metrics_jsonl"])],
    },
    SchemaPair {
        label: "chrome trace",
        emit_file: "crates/trace/src/export.rs",
        emit_fns: &["chrome_trace"],
        vocab: &[("crates/trace/src/export.rs", &["validate_chrome_trace"])],
    },
    SchemaPair {
        label: "bench run record",
        emit_file: "crates/bench/src/runjson.rs",
        emit_fns: &["encode", "push_counters"],
        vocab: &[(
            "crates/bench/src/runjson.rs",
            &["record", "counters", "histogram", "latency"],
        )],
    },
    SchemaPair {
        label: "sweep log",
        emit_file: "crates/bench/src/executor.rs",
        emit_fns: &[
            "to_json",
            "profile_json",
            "summary_json",
            "netprof_json",
            "executor_json",
        ],
        vocab: &[(
            "crates/report/src/sweep.rs",
            &[
                "parse_sweep",
                "parse_metrics",
                "parse_profile",
                "parse_netprof",
                "parse_executor",
            ],
        )],
    },
    SchemaPair {
        label: "flight journal",
        emit_file: "crates/trace/src/flight.rs",
        emit_fns: &["to_jsonl", "event_json"],
        vocab: &[(
            "crates/trace/src/flight.rs",
            &["parse_flight", "parse_event"],
        )],
    },
    SchemaPair {
        label: "history line",
        emit_file: "crates/report/src/history.rs",
        emit_fns: &["encode_line", "profile_json"],
        vocab: &[
            ("crates/report/src/history.rs", &["decode_line"]),
            (
                "crates/report/src/sweep.rs",
                &["parse_metrics", "parse_profile"],
            ),
        ],
    },
];

/// Undo source-level quote escaping so `\"key\":` and `"key":` read the
/// same.
fn normalize(payload: &str) -> String {
    payload.replace("\\\"", "\"")
}

/// Collect `"ident":`-shaped keys from a (normalized) string payload.
fn keys_in_payload(payload: &str, out: &mut BTreeSet<String>) {
    let s = normalize(payload);
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'"' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j > i + 1 && j < b.len() && b[j] == b'"' && !b[i + 1].is_ascii_digit() {
            let mut k = j + 1;
            while k < b.len() && b[k] == b' ' {
                k += 1;
            }
            if k < b.len() && b[k] == b':' {
                out.insert(s[i + 1..j].to_string());
                i = k + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| !c.is_ascii_digit())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The spans of the named functions (non-test), plus the names that
/// could not be found.
fn fn_extents<'m>(
    model: &'m FileModel,
    fns: &[&str],
) -> (Vec<&'m crate::lex::FnSpan>, Vec<String>) {
    let mut spans = Vec::new();
    let mut missing = Vec::new();
    for name in fns {
        let mut found = false;
        for f in model.fns.iter().filter(|f| f.name == *name && !f.in_test) {
            spans.push(f);
            found = true;
        }
        if !found {
            missing.push((*name).to_string());
        }
    }
    (spans, missing)
}

/// Keys an emitter writes: `"ident":` patterns inside its string
/// literals. Dynamic keys (`"{…}":`) never match the ident scan and are
/// exempt by construction.
fn emitted_keys(model: &FileModel, fns: &[&str]) -> (BTreeSet<String>, Vec<String>) {
    let (spans, missing) = fn_extents(model, fns);
    let mut keys = BTreeSet::new();
    for span in spans {
        for idx in span.sig_line..=span.body_end {
            for s in &model.lines[idx].strings {
                keys_in_payload(s, &mut keys);
            }
        }
    }
    (keys, missing)
}

/// The vocabulary a validator understands: every pure-identifier string
/// literal in its extent (`"cycles"` passed to a getter) plus any
/// `"ident":` keys embedded in longer literals.
fn vocab_keys(model: &FileModel, fns: &[&str]) -> (BTreeSet<String>, Vec<String>) {
    let (spans, missing) = fn_extents(model, fns);
    let mut keys = BTreeSet::new();
    for span in spans {
        for idx in span.sig_line..=span.body_end {
            for s in &model.lines[idx].strings {
                let n = normalize(s);
                if is_ident(&n) {
                    keys.insert(n);
                } else {
                    keys_in_payload(s, &mut keys);
                }
            }
        }
    }
    (keys, missing)
}

/// Run the schema-drift rule: every registered emitter's static keys
/// must be known to its validators, and `BENCH_history.jsonl` must use
/// only keys the history emitter can produce.
pub fn check_schema_drift<'m, F>(root: &Path, model_of: &F, out: &mut Vec<Violation>)
where
    F: Fn(&str) -> &'m FileModel,
{
    for pair in PAIRS {
        check_pair(pair, model_of, out);
    }
    check_history_file(root, model_of, out);
}

fn check_pair<'m, F>(pair: &SchemaPair, model_of: &F, out: &mut Vec<Violation>)
where
    F: Fn(&str) -> &'m FileModel,
{
    let emit_model = model_of(pair.emit_file);
    let (emitted, missing_emit) = emitted_keys(emit_model, pair.emit_fns);
    let mut vocab = BTreeSet::new();
    let mut missing_vocab = Vec::new();
    for (file, fns) in pair.vocab {
        let (k, m) = vocab_keys(model_of(file), fns);
        vocab.extend(k);
        missing_vocab.extend(m.into_iter().map(|f| format!("{file}::{f}")));
    }

    for name in missing_emit {
        out.push(violation(
            pair.emit_file,
            emit_model,
            0,
            "schema-drift",
            format!(
                "schema registry ({label}) names emitter fn `{name}` which no longer \
                 exists; update PAIRS in crates/audit/src/schema.rs",
                label = pair.label
            ),
        ));
    }
    for name in missing_vocab {
        out.push(violation(
            pair.emit_file,
            emit_model,
            0,
            "schema-drift",
            format!(
                "schema registry ({label}) names validator fn `{name}` which no longer \
                 exists; update PAIRS in crates/audit/src/schema.rs",
                label = pair.label
            ),
        ));
    }

    let drifted: Vec<&String> = emitted.iter().filter(|k| !vocab.contains(*k)).collect();
    if drifted.is_empty() {
        return;
    }
    // Anchor the violation on the first emitter function's signature.
    let anchor = fn_extents(emit_model, pair.emit_fns)
        .0
        .first()
        .map_or(0, |s| s.sig_line);
    if has_waiver(emit_model, anchor, "schema") {
        return;
    }
    let keys: Vec<String> = drifted.iter().map(|k| format!("`{k}`")).collect();
    let readers: Vec<String> = pair
        .vocab
        .iter()
        .map(|(f, fns)| format!("{f} [{}]", fns.join(", ")))
        .collect();
    let msg = format!(
        "{label} emitter writes key(s) {keys} that no paired validator mentions \
         ({readers}); teach the reader the field or waive with \
         `// audit: allow(schema) <reason>` on the emitter",
        label = pair.label,
        keys = keys.join(", "),
        readers = readers.join("; "),
    );
    out.push(violation(
        pair.emit_file,
        emit_model,
        anchor,
        "schema-drift",
        msg,
    ));
}

/// Check the committed history registry against the emitter vocabulary.
fn check_history_file<'m, F>(root: &Path, model_of: &F, out: &mut Vec<Violation>)
where
    F: Fn(&str) -> &'m FileModel,
{
    let path = root.join("BENCH_history.jsonl");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let hist = model_of("crates/report/src/history.rs");
    let (mut vocab, _) = emitted_keys(hist, &["encode_line", "profile_json"]);

    // The `phases` object carries dynamic keys: the HostPhase names.
    let profile = model_of("crates/trace/src/profile.rs");
    let (phase_spans, missing) = fn_extents(profile, &["name"]);
    if !missing.is_empty() {
        out.push(Violation {
            file: "BENCH_history.jsonl".to_string(),
            line: 1,
            rule: "schema-drift",
            message: "history check expects HostPhase::name in \
                      crates/trace/src/profile.rs to enumerate phase names; update \
                      crates/audit/src/schema.rs"
                .to_string(),
            snippet: "HostPhase::name".to_string(),
        });
    }
    for span in phase_spans {
        for idx in span.sig_line..=span.body_end {
            for s in &profile.lines[idx].strings {
                let n = normalize(s);
                if is_ident(&n) {
                    vocab.insert(n);
                }
            }
        }
    }

    let mut unknown: BTreeSet<String> = BTreeSet::new();
    let mut first_line = 0usize;
    for (i, line) in text.lines().enumerate() {
        let mut keys = BTreeSet::new();
        keys_in_payload(line, &mut keys);
        for k in keys {
            if !vocab.contains(&k) && unknown.insert(k) && first_line == 0 {
                first_line = i + 1;
            }
        }
    }
    if unknown.is_empty() {
        return;
    }
    let list: Vec<String> = unknown.iter().map(|k| format!("`{k}`")).collect();
    out.push(Violation {
        file: "BENCH_history.jsonl".to_string(),
        line: first_line.max(1),
        rule: "schema-drift",
        message: format!(
            "history registry uses key(s) {} that the current emitter \
             (crates/report/src/history.rs encode_line/profile_json + HostPhase \
             names) cannot produce — emitter drift or a foreign writer touched \
             the registry",
            list.join(", ")
        ),
        snippet: format!("keys: {}", list.join(", ")),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMIT_FIXTURE: &str = include_str!("../tests/fixtures/schema_fixture.rs");

    #[test]
    fn key_extraction_reads_escaped_and_raw_literals() {
        let m = FileModel::parse(EMIT_FIXTURE);
        let (keys, missing) = emitted_keys(&m, &["emit"]);
        assert!(missing.is_empty(), "{missing:?}");
        let got: Vec<&str> = keys.iter().map(String::as_str).collect();
        assert_eq!(got, vec!["cycles", "energy_j", "schema"], "{got:?}");
    }

    #[test]
    fn dynamic_keys_are_exempt() {
        let m = FileModel::parse(
            "fn emit(out: &mut String) {\n    out.push_str(&format!(\"\\\"{name}\\\": {v},\"));\n}\n",
        );
        let (keys, _) = emitted_keys(&m, &["emit"]);
        assert!(keys.is_empty(), "{keys:?}");
    }

    #[test]
    fn vocab_accepts_bare_idents_and_embedded_keys() {
        let m = FileModel::parse(
            "fn parse(o: &Json) {\n    let a = o.get(\"cycles\");\n    let b = check(\"{\\\"schema\\\": 1}\");\n}\n",
        );
        let (keys, _) = vocab_keys(&m, &["parse"]);
        assert!(keys.contains("cycles"));
        assert!(keys.contains("schema"));
    }

    #[test]
    fn fixture_pair_detects_the_seeded_drift() {
        // The fixture's `emit` writes `energy_j` but `parse` only knows
        // schema/cycles — exactly one drifted key.
        let m = FileModel::parse(EMIT_FIXTURE);
        let (emitted, _) = emitted_keys(&m, &["emit"]);
        let (vocab, _) = vocab_keys(&m, &["parse"]);
        let drift: Vec<&String> = emitted.iter().filter(|k| !vocab.contains(*k)).collect();
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0], "energy_j");
    }

    #[test]
    fn history_line_key_scan_ignores_values() {
        let mut keys = BTreeSet::new();
        keys_in_payload(
            r#"{"schema": "atac-report-history-v1", "kind": "run", "source": "simulated", "n": 3}"#,
            &mut keys,
        );
        let got: Vec<&str> = keys.iter().map(String::as_str).collect();
        assert_eq!(got, vec!["kind", "n", "schema", "source"]);
    }
}
