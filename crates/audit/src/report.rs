//! Findings/baseline serialization and the ratchet.
//!
//! The baseline (`audit_baseline.json`) is a *ratchet*, mirroring the
//! append-only discipline of `BENCH_history.jsonl`: findings present
//! when the baseline was written are tolerated but frozen; a finding
//! not in the baseline is **fresh** and fails CI; a baseline entry no
//! longer produced is **stale** and also fails, so fixing a finding
//! forces the baseline to shrink (`--write-baseline`) and the frozen
//! set can only move toward zero.
//!
//! Baseline entries are fingerprints — `rule|file|snippet` — not line
//! numbers, so unrelated edits above a frozen finding do not churn the
//! baseline. The fingerprint is a multiset (`count` per fingerprint):
//! two identical offending lines in one file are two entries, and
//! fixing one of them is already visible to the ratchet.

use std::collections::BTreeMap;

use atac_trace::json;

use crate::{AuditReport, Violation, RULES};

/// Schema tag of the `--json` findings document.
pub const FINDINGS_SCHEMA: &str = "atac-audit-v2";
/// Schema tag of `audit_baseline.json`.
pub const BASELINE_SCHEMA: &str = "atac-audit-baseline-v1";

/// The line-number-independent identity of a finding.
pub fn fingerprint(v: &Violation) -> String {
    format!("{}|{}|{}", v.rule, v.file, v.snippet.trim())
}

/// What the ratchet decided.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// Findings not covered by the baseline — fail.
    pub fresh: Vec<Violation>,
    /// Baseline fingerprints (with leftover counts) no longer produced —
    /// fail until the baseline is regenerated.
    pub stale: Vec<(String, usize)>,
}

/// Compare current findings against a baseline multiset.
pub fn ratchet(violations: &[Violation], baseline: &BTreeMap<String, usize>) -> Ratchet {
    let mut budget = baseline.clone();
    let mut out = Ratchet::default();
    for v in violations {
        let fp = fingerprint(v);
        match budget.get_mut(&fp) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.fresh.push(v.clone()),
        }
    }
    for (fp, n) in budget {
        if n > 0 {
            out.stale.push((fp, n));
        }
    }
    out
}

/// The baseline document for the given findings: every fingerprint with
/// its multiplicity, sorted, one entry per line for reviewable diffs.
pub fn baseline_json(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in violations {
        *counts.entry(fingerprint(v)).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
    out.push_str("  \"entries\": [");
    for (i, (fp, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"fingerprint\": {}, \"count\": {n}}}",
            escape(fp)
        ));
    }
    if counts.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Parse a baseline document into its fingerprint multiset.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline: {e:?}"))?;
    let schema = doc
        .get("schema")
        .and_then(json::Json::as_str)
        .ok_or("baseline: missing \"schema\"")?;
    if schema != BASELINE_SCHEMA {
        return Err(format!(
            "baseline: schema {schema:?}, expected {BASELINE_SCHEMA:?}"
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(json::Json::as_arr)
        .ok_or("baseline: missing \"entries\" array")?;
    let mut out = BTreeMap::new();
    for e in entries {
        let fp = e
            .get("fingerprint")
            .and_then(json::Json::as_str)
            .ok_or("baseline: entry missing \"fingerprint\"")?;
        let n = e
            .get("count")
            .and_then(json::Json::as_u64)
            .ok_or("baseline: entry missing \"count\"")?;
        let n = usize::try_from(n).map_err(|_| "baseline: count out of range".to_string())?;
        if out.insert(fp.to_string(), n).is_some() {
            return Err(format!("baseline: duplicate fingerprint {fp:?}"));
        }
    }
    Ok(out)
}

/// The machine-readable findings document (`--json`): rules, violations
/// with fingerprints, and the full hot-path allocation census.
pub fn findings_json(rep: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{FINDINGS_SCHEMA}\",\n"));
    out.push_str(&format!("  \"rules\": {},\n", RULES.len()));

    out.push_str("  \"violations\": [");
    for (i, v) in rep.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"fingerprint\": {}, \
             \"message\": {}, \"snippet\": {}}}",
            escape(&v.file),
            v.line,
            escape(v.rule),
            escape(&fingerprint(v)),
            escape(&v.message),
            escape(&v.snippet)
        ));
    }
    out.push_str(if rep.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"census\": [");
    for (i, s) in rep.census.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"func\": {}, \"kind\": {}, \
             \"per_cycle\": {}, \"snippet\": {}}}",
            escape(&s.file),
            s.line,
            escape(&s.func),
            escape(s.kind),
            s.per_cycle,
            escape(&s.snippet)
        ));
    }
    out.push_str(if rep.census.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

/// JSON string literal with the escapes this workspace's emitters use.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, snippet: &str) -> Violation {
        Violation {
            file: file.to_string(),
            line: 7,
            rule,
            message: "msg".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn baseline_round_trips() {
        let vs = vec![
            v("hot-alloc", "a.rs", "x.push(1);"),
            v("hot-alloc", "a.rs", "x.push(1);"),
            v("determinism", "b.rs", "let m = HashMap::new();"),
        ];
        let text = baseline_json(&vs);
        let parsed = parse_baseline(&text).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.get("hot-alloc|a.rs|x.push(1);"), Some(&2));
        assert_eq!(
            parsed.get("determinism|b.rs|let m = HashMap::new();"),
            Some(&1)
        );
    }

    #[test]
    fn ratchet_passes_when_findings_match_baseline() {
        let vs = vec![v("hot-alloc", "a.rs", "x.push(1);")];
        let base = parse_baseline(&baseline_json(&vs)).expect("baseline");
        let out = ratchet(&vs, &base);
        assert!(out.fresh.is_empty(), "{:?}", out.fresh);
        assert!(out.stale.is_empty(), "{:?}", out.stale);
    }

    #[test]
    fn ratchet_flags_fresh_finding() {
        let base = parse_baseline(&baseline_json(&[v("hot-alloc", "a.rs", "x.push(1);")]))
            .expect("baseline");
        let now = vec![
            v("hot-alloc", "a.rs", "x.push(1);"),
            v("hot-alloc", "a.rs", "y.push(2);"),
        ];
        let out = ratchet(&now, &base);
        assert_eq!(out.fresh.len(), 1);
        assert_eq!(out.fresh[0].snippet, "y.push(2);");
        assert!(out.stale.is_empty());
    }

    #[test]
    fn ratchet_flags_stale_entry_after_fix() {
        let base = parse_baseline(&baseline_json(&[
            v("hot-alloc", "a.rs", "x.push(1);"),
            v("determinism", "b.rs", "HashMap::new()"),
        ]))
        .expect("baseline");
        let now = vec![v("hot-alloc", "a.rs", "x.push(1);")];
        let out = ratchet(&now, &base);
        assert!(out.fresh.is_empty());
        assert_eq!(
            out.stale,
            vec![("determinism|b.rs|HashMap::new()".to_string(), 1)]
        );
    }

    #[test]
    fn ratchet_is_a_multiset_not_a_set() {
        // Two identical lines frozen; fixing one must surface as stale.
        let base = parse_baseline(&baseline_json(&[
            v("hot-alloc", "a.rs", "x.push(1);"),
            v("hot-alloc", "a.rs", "x.push(1);"),
        ]))
        .expect("baseline");
        let now = vec![v("hot-alloc", "a.rs", "x.push(1);")];
        let out = ratchet(&now, &base);
        assert!(out.fresh.is_empty());
        assert_eq!(
            out.stale,
            vec![("hot-alloc|a.rs|x.push(1);".to_string(), 1)]
        );
    }

    #[test]
    fn fingerprint_is_line_number_independent() {
        let mut a = v("hot-alloc", "a.rs", "x.push(1);");
        let mut b = a.clone();
        a.line = 10;
        b.line = 900;
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn findings_json_is_parseable_and_tagged() {
        let rep = AuditReport {
            violations: vec![v("hot-alloc", "a.rs", "x.push(\"s\\\\\");")],
            census: vec![crate::AllocSite {
                file: "a.rs".to_string(),
                line: 7,
                func: "tick".to_string(),
                kind: "push",
                per_cycle: true,
                snippet: "x.push(1);".to_string(),
            }],
        };
        let doc = json::parse(&findings_json(&rep)).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Json::as_str),
            Some(FINDINGS_SCHEMA)
        );
        assert_eq!(
            doc.get("rules").and_then(json::Json::as_u64),
            Some(RULES.len() as u64)
        );
        let viol = doc.get("violations").and_then(json::Json::as_arr).unwrap();
        assert_eq!(viol.len(), 1);
        assert_eq!(
            viol[0].get("snippet").and_then(json::Json::as_str),
            Some("x.push(\"s\\\\\");")
        );
        let census = doc.get("census").and_then(json::Json::as_arr).unwrap();
        assert_eq!(
            census[0].get("func").and_then(json::Json::as_str),
            Some("tick")
        );
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let rep = AuditReport::default();
        json::parse(&findings_json(&rep)).expect("valid JSON");
        let base = parse_baseline(&baseline_json(&[])).expect("empty baseline");
        assert!(base.is_empty());
    }
}
