//! Rule 9: the hot-path allocation census.
//!
//! ROADMAP item 1 (the ≥5× network hot-path overhaul) needs to know
//! exactly where the per-cycle wormhole/coherence paths allocate before
//! anyone can credibly remove those allocations. This rule walks the
//! rule-4 hot-path files and inventories every allocation-shaped call
//! site — `push`/`push_back`, `Box::new`, `clone()`, `to_string()`,
//! `format!`, `collect()`, `vec![`, `Vec::new`, `String::from`, … —
//! attributing each to its enclosing function via the scope tracker.
//!
//! The full inventory ships in the `--json` findings document (the
//! machine-readable census). Sites inside the *registered per-cycle
//! functions* ([`PER_CYCLE_FNS`]) are additionally violations: existing
//! ones are frozen in the committed baseline (the ratchet), so the set
//! can only shrink, and any new allocation on a per-cycle path fails CI
//! the moment it is written. A site that is genuinely fine (e.g. an
//! amortized, pre-sized buffer) can be waived with
//! `// audit: allow(alloc) <reason>`.

use crate::lex::FileModel;
use crate::{has_waiver, violation, Violation};

/// One allocation-shaped call site in a hot-path file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Enclosing function name.
    pub func: String,
    /// Allocation kind (`push`, `box`, `clone`, `format`, `collect`, …).
    pub kind: &'static str,
    /// The enclosing function is in the per-cycle registry.
    pub per_cycle: bool,
    /// The source line, trimmed.
    pub snippet: String,
}

/// Allocation-shaped source patterns, matched against comment- and
/// string-scrubbed code. `(pattern, kind)`.
const ALLOC_PATTERNS: &[(&str, &str)] = &[
    (".push(", "push"),
    (".push_back(", "push"),
    (".push_front(", "push"),
    (".push_str(", "push"),
    ("Box::new(", "box"),
    (".clone()", "clone"),
    (".to_string()", "to_string"),
    (".to_owned()", "to_owned"),
    (".to_vec()", "to_vec"),
    ("format!(", "format"),
    (".collect()", "collect"),
    (".collect::<", "collect"),
    ("vec![", "vec"),
    ("Vec::new(", "vec"),
    ("Vec::with_capacity(", "vec"),
    ("String::new(", "string"),
    ("String::from(", "string"),
];

/// The per-cycle functions of each hot-path file: the code that runs
/// every simulated cycle (or per flit/message/access, which at 64–1024
/// cores is strictly more often). Constructors, probe wiring, config
/// getters, per-epoch reconciliation, and debug validators are
/// deliberately absent — they may allocate. The audit self-checks this
/// registry: naming a function that no longer exists is itself a
/// violation, so renames cannot silently drop coverage.
pub const PER_CYCLE_FNS: &[(&str, &[&str])] = &[
    (
        "crates/net/src/mesh.rs",
        &[
            "port",
            "has_work",
            "alloc_packet",
            "free_packet",
            "activate",
            "flits_of",
            "try_send",
            "try_send_to_hub",
            "pop_hub_out",
            "hub_out_ready",
            "has_hub_out",
            "inject_expanded_broadcast",
            "inject_tree_broadcast",
            "note_ready",
            "dest_xy",
            "xy_toward",
            "route_port",
            "is_idle",
            "next_event",
            "drain_deliveries",
            "tick",
            "buf_front",
            "buf_push",
            "buf_pop",
            "peek",
            "tick_router",
            "service",
            "try_forward_run",
            "forward_flit",
            "continues_at",
            "on_tail_arrival",
            "spawn",
            "deliver_flit",
            "eject_to_hub",
        ],
    ),
    (
        "crates/net/src/onet.rs",
        &[
            "can_accept",
            "accept",
            "is_idle",
            "drain_deliveries",
            "next_event",
            "tick",
            "tick_senders",
            "dest_range",
            "tick_receivers",
            "deliver",
        ],
    ),
    (
        "crates/net/src/atac.rs",
        &[
            "via_onet",
            "try_send",
            "tick",
            "drain_deliveries",
            "is_idle",
            "next_event",
        ],
    ),
    (
        "crates/coherence/src/system.rs",
        &[
            "seq_newer",
            "ifetch",
            "ifetch_block",
            "access",
            "start_miss",
            "drain_completions",
            "flush_outbox",
            "outbox_pending",
            "memctrl_tick",
            "next_mem_event",
            "handle_delivery",
            "core_msg",
            "core_fill",
            "core_inv",
            "core_bcast_inv",
            "release_held",
            "handle_victim",
            "dir_request",
            "dir_process",
            "dir_inv_ack",
            "dir_mem_data",
            "dir_check_acks_done",
            "dir_evict",
            "dir_evict_dirty",
            "dir_wb_data",
            "dir_flush_data",
            "dir_retire",
            "set_dir",
            "mem_read",
            "mem_write",
            "send_home",
            "send",
        ],
    ),
    (
        "crates/coherence/src/directory.rs",
        &[
            "one",
            "count",
            "overflowed",
            "add",
            "remove",
            "contains",
            "ptrs",
            "is_transient",
        ],
    ),
    (
        "crates/coherence/src/protocol.rs",
        &["class", "insert", "take", "peek", "live"],
    ),
    (
        "crates/coherence/src/cache.rs",
        &[
            "set_of",
            "tag_of",
            "state",
            "access",
            "set_state",
            "invalidate",
            "fill",
        ],
    ),
    (
        "crates/coherence/src/memctrl.rs",
        &["submit", "drain_completed", "next_event", "is_idle"],
    ),
    (
        "crates/sim/src/engine.rs",
        &["run_profiled", "run_observed", "ifetch"],
    ),
    // energy.rs is censused (informational sites) but its integration
    // runs per epoch, not per cycle — no per-cycle functions.
    ("crates/sim/src/energy.rs", &[]),
];

fn per_cycle_fns_of(rel: &str) -> &'static [&'static str] {
    PER_CYCLE_FNS
        .iter()
        .find(|(f, _)| *f == rel)
        .map_or(&[], |(_, fns)| fns)
}

/// Census one hot-path file: record every allocation site, and emit
/// violations for unwaived sites in the per-cycle functions.
pub fn check_hot_alloc(
    rel: &str,
    model: &FileModel,
    census: &mut Vec<AllocSite>,
    out: &mut Vec<Violation>,
) {
    check_with_registry(rel, model, per_cycle_fns_of(rel), census, out);
}

/// The census core, with an explicit per-cycle registry (tests inject
/// their own).
fn check_with_registry(
    rel: &str,
    model: &FileModel,
    registered: &[&str],
    census: &mut Vec<AllocSite>,
    out: &mut Vec<Violation>,
) {
    // Registry self-check: every registered function must still exist
    // (outside test modules), or the census is silently under-scoped.
    for name in registered {
        if !model.fns.iter().any(|f| f.name == *name && !f.in_test) {
            out.push(violation(
                rel,
                model,
                0,
                "hot-alloc",
                format!(
                    "per-cycle registry names fn `{name}` which no longer exists in this \
                     file; update PER_CYCLE_FNS in crates/audit/src/hotalloc.rs"
                ),
            ));
        }
    }

    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test {
            continue;
        }
        let Some(fn_idx) = line.fn_idx else { continue };
        let func = &model.fns[fn_idx].name;
        let per_cycle = registered.contains(&func.as_str());

        for (pat, kind) in ALLOC_PATTERNS {
            if !line.code.contains(pat) {
                continue;
            }
            let snippet = line.raw.trim().to_string();
            census.push(AllocSite {
                file: rel.to_string(),
                line: idx + 1,
                func: func.clone(),
                kind,
                per_cycle,
                snippet,
            });
            if per_cycle && !has_waiver(model, idx, "alloc") {
                let msg = format!(
                    "allocation (`{kind}`) inside per-cycle fn `{func}`; hoist it out of \
                     the cycle loop, pre-size a reused buffer, or waive with \
                     `// audit: allow(alloc) <reason>` (existing sites are frozen in \
                     audit_baseline.json)"
                );
                out.push(violation(rel, model, idx, "hot-alloc", msg));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = include_str!("../tests/fixtures/hotalloc_fixture.rs");

    fn run(src: &str) -> (Vec<AllocSite>, Vec<Violation>) {
        let m = FileModel::parse(src);
        let mut census = Vec::new();
        let mut v = Vec::new();
        check_with_registry("fx.rs", &m, &["tick", "deliver_flit"], &mut census, &mut v);
        (census, v)
    }

    #[test]
    fn fixture_census_and_violations() {
        let (census, v) = run(FIXTURE);
        // Census sees allocations in BOTH per-cycle and setup fns…
        assert!(census.iter().any(|s| s.func == "tick" && s.per_cycle));
        assert!(census.iter().any(|s| s.func == "new" && !s.per_cycle));
        // …but only per-cycle, unwaived sites violate.
        assert!(v.iter().all(|x| x.rule == "hot-alloc"));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("`push`")));
        assert!(v.iter().any(|x| x.message.contains("`clone`")));
        assert!(v.iter().any(|x| x.message.contains("`format`")));
        // The waived vec site and the commented/string decoys are quiet.
        assert!(!v.iter().any(|x| x.message.contains("`vec`")), "{v:?}");
    }

    #[test]
    fn registry_self_check_fires_on_stale_name() {
        let (_, v) = run("fn only_this() { x.push(1); }\n");
        assert!(
            v.iter()
                .filter(|x| x.message.contains("no longer exists"))
                .count()
                == 2,
            "{v:?}"
        );
    }

    #[test]
    fn real_registry_paths_are_hot_path_files() {
        for (file, _) in PER_CYCLE_FNS {
            assert!(
                crate::HOT_PATH_FILES.contains(file),
                "{file} is registered per-cycle but not a hot-path file"
            );
        }
    }
}
