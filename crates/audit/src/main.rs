//! Workspace invariant linter with a ratcheted baseline.
//!
//! ```text
//! cargo run -p atac-audit                  # ratchet vs ./audit_baseline.json (if present)
//! cargo run -p atac-audit -- --json out.json          # also write the findings document
//! cargo run -p atac-audit -- --baseline other.json    # explicit baseline path
//! cargo run -p atac-audit -- --no-baseline            # raw mode: any violation fails
//! cargo run -p atac-audit -- --write-baseline         # freeze current findings
//! ```
//!
//! Exit code 0 means: no findings beyond the baseline AND no stale
//! baseline entries. A fresh finding fails (the ratchet only tightens);
//! a fixed finding also fails until `--write-baseline` shrinks the
//! frozen set — so the baseline can never drift upward silently.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use atac_audit::{report, RULES};

struct Args {
    root: PathBuf,
    json_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: atac_audit::workspace_root(),
        json_out: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(take(&mut it, "--root")?),
            "--json" => args.json_out = Some(PathBuf::from(take(&mut it, "--json")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(take(&mut it, "--baseline")?)),
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.no_baseline && args.baseline.is_some() {
        return Err("--no-baseline conflicts with --baseline".to_string());
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn print_help() {
    println!(
        "atac-audit: project-specific static analysis ({} rules)",
        RULES.len()
    );
    println!();
    for r in RULES {
        println!("  {:<16} {}", r.id, r.summary);
    }
    println!();
    println!("  --root <dir>       workspace root (default: resolved from the manifest)");
    println!("  --json <file>      write the machine-readable findings document");
    println!("  --baseline <file>  ratchet against this baseline (default: <root>/audit_baseline.json if present)");
    println!("  --no-baseline      raw mode: any violation fails");
    println!("  --write-baseline   freeze the current findings into the baseline and exit 0");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("atac-audit: {e}");
            return ExitCode::FAILURE;
        }
    };

    let rep = atac_audit::audit_workspace(&args.root);

    if let Some(path) = &args.json_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("atac-audit: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(path, report::findings_json(&rep)) {
            eprintln!("atac-audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "atac-audit: wrote {} ({} violations, {} census sites)",
            path.display(),
            rep.violations.len(),
            rep.census.len()
        );
    }

    let default_baseline = args.root.join("audit_baseline.json");
    let baseline_path = args.baseline.clone().unwrap_or(default_baseline);

    if args.write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, report::baseline_json(&rep.violations)) {
            eprintln!("atac-audit: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "atac-audit: froze {} finding(s) into {}",
            rep.violations.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Resolve the baseline: explicit path must exist; the default path
    // is optional; --no-baseline skips it entirely.
    let baseline: BTreeMap<String, usize> = if args.no_baseline {
        BTreeMap::new()
    } else if baseline_path.exists() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| report::parse_baseline(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("atac-audit: {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        }
    } else if args.baseline.is_some() {
        eprintln!(
            "atac-audit: baseline {} does not exist",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    } else {
        BTreeMap::new()
    };

    let outcome = report::ratchet(&rep.violations, &baseline);
    let frozen = rep.violations.len() - outcome.fresh.len();

    for v in &outcome.fresh {
        eprintln!("{v}");
    }
    for (fp, n) in &outcome.stale {
        eprintln!("stale baseline entry ({n}×, fixed or moved): {fp}");
    }

    if outcome.fresh.is_empty() && outcome.stale.is_empty() {
        println!(
            "atac-audit: clean ({} rules, {} frozen baseline finding(s), {} census sites)",
            RULES.len(),
            frozen,
            rep.census.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "atac-audit: {} fresh violation(s), {} stale baseline entr(ies); \
             fresh findings must be fixed or waived, stale entries shrink via --write-baseline",
            outcome.fresh.len(),
            outcome.stale.len()
        );
        ExitCode::FAILURE
    }
}
