//! Workspace invariant linter. `cargo run -p atac-audit` from anywhere
//! in the repo; exits 0 on a clean tree, 1 with a violation listing
//! otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = atac_audit::workspace_root();
    let violations = atac_audit::audit_workspace(&root);
    if violations.is_empty() {
        println!("atac-audit: clean ({} rules, 0 violations)", 7);
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("atac-audit: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
