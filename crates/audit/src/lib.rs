//! Project-specific static analysis for the ATAC+ workspace.
//!
//! Eleven rules, enforced on a lexed view of the source (see [`lex`]):
//! every file is classified byte-by-byte into code / comment / string
//! before any rule runs, and a brace-tracking scope pass attributes
//! each line to its enclosing `fn` and to `#[cfg(test)]` regions. Rules
//! therefore cannot false-positive inside string literals, doc
//! comments, commented-out code, or test modules — and the newer rules
//! reason about *where* a pattern occurs, not merely that it occurs.
//! (The pass still sees code inside macro invocations, which
//! `syn`-style tooling would not without expansion, and the only
//! dependency is the in-tree `atac-trace` JSON reader.)
//!
//! 1. **`raw-f64`** — public functions in `crates/phys`, `crates/sim`
//!    and `crates/trace` whose name (or a parameter name) speaks of
//!    energy, power, or time must not traffic in bare `f64`; they must
//!    use the unit newtypes from `atac_phys::units`. Waive with
//!    `// audit: allow(raw-f64)`.
//! 2. **`counter-coverage`** — every counter field of `CoherenceStats`
//!    and `NetStats` must either be read by the energy integration in
//!    `crates/sim/src/energy.rs` or carry an explicit
//!    `// audit: non-energy` waiver explaining why it carries no energy.
//! 3. **`wildcard-arm`** — the protocol/network state machines must
//!    match exhaustively: no `_ =>` (or `_ if … =>`) arms in the listed
//!    files, so adding a message kind or route forces every handler to
//!    be revisited.
//! 4. **`hot-path`** — `unwrap()`, `expect()`, and lossy `as` casts in
//!    simulator hot paths need a same-line or line-above
//!    `// audit: allow(unwrap|expect|cast) <reason>` waiver naming the
//!    invariant that makes them safe.
//! 5. **`probe-api`** — instrumentation in hot paths must go through the
//!    `atac_trace::ProbeHandle` forwarders: no direct `.borrow_mut(`
//!    probe access and no raw `*_samples.push(…)` sample vectors. Waive
//!    with `// audit: allow(probe) <reason>`.
//! 6. **`sweep-api`** — all sweep concurrency and run-cache publication
//!    go through the `atac-bench` executor/cache layer: no raw
//!    `thread::spawn` in first-party crates, no ad-hoc file writes in
//!    `crates/bench` outside `executor.rs`/`cache.rs`. Waive with
//!    `// audit: allow(sweep) <reason>`.
//! 7. **`report-api`** — all run-history and report file writes go
//!    through the `crates/report` history writers
//!    (`append_lines`/`write_text` in `history.rs`). Waive with
//!    `// audit: allow(report) <reason>`.
//! 8. **`determinism`** — in the result-bearing crates (`net`,
//!    `coherence`, `sim`, `phys`, `workloads`), no `HashMap`/`HashSet`
//!    (iteration order is randomized per process; use
//!    `BTreeMap`/`BTreeSet` or sort before iterating and waive with
//!    `// audit: allow(nondet-map) <reason>`), and no wall-clock or
//!    ambient input — `Instant`, `SystemTime`, `env::var`,
//!    `thread_rng`/`from_entropy`/`RandomState` — outside
//!    host-profiling code (waive with
//!    `// audit: allow(ambient) <reason>`). This is the static face of
//!    the bit-identical-results contract the regression gate and the
//!    parallel-vs-serial verifier enforce at run time.
//! 9. **`hot-alloc`** — an allocation census over the rule-4 hot-path
//!    files: every `push`/`Box::new`/`clone()`/`format!`/`to_string`/
//!    `collect()`/… site is inventoried (machine-readable via
//!    `--json`), and sites inside the registered *per-cycle* functions
//!    are violations unless waived with
//!    `// audit: allow(alloc) <reason>`. Existing sites are frozen in
//!    the committed baseline; the census scopes the ROADMAP item 1
//!    network hot-path overhaul.
//! 10. **`float-accum`** — `+=` accumulation in merge/reduction code
//!     reachable from the parallel sweep executor must be declared
//!     order-stable (`// audit: order-stable — <why>` on the function),
//!     because float addition is not associative and a
//!     worker-completion-order-dependent sum would break byte-identical
//!     sweep artifacts. Waive a single site with
//!     `// audit: allow(float-accum) <reason>`.
//! 11. **`schema-drift`** — the JSON field vocabularies emitted by the
//!     `trace`/`bench`/`report` writers are cross-checked against their
//!     in-tree validators/parsers, and the committed
//!     `BENCH_history.jsonl` is checked against the history emitter, so
//!     an exporter field cannot silently diverge from its reader. Waive
//!     with `// audit: allow(schema) <reason>` on the emitter line.
//!
//! The binary (`cargo run -p atac-audit`) compares findings against the
//! committed `audit_baseline.json` *ratchet*: pre-existing findings are
//! tolerated but frozen, any new finding fails, and fixing one turns
//! the stale baseline entry into a failure until the baseline is
//! regenerated (`--write-baseline`) — mirroring the append-only
//! discipline of `BENCH_history.jsonl`. The same pass runs under
//! `cargo test` via [`tests::shipped_tree_is_clean`].

use std::fmt;
use std::path::{Path, PathBuf};

pub mod determinism;
pub mod floatsum;
pub mod hotalloc;
pub mod lex;
pub mod report;
pub mod schema;

pub use hotalloc::AllocSite;
use lex::FileModel;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the problem and the fix.
    pub message: String,
    /// The offending source line, trimmed — the line-number-independent
    /// part of the baseline fingerprint.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One entry of the rule registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// The identifier violations carry in [`Violation::rule`].
    pub id: &'static str,
    /// One-line summary for `--help`-style output.
    pub summary: &'static str,
}

/// Every rule this crate enforces. The CLI banner, the findings
/// document, and the docs all derive their rule count from here, so a
/// new rule cannot leave a stale hard-coded `7` behind.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "raw-f64",
        summary: "unit-bearing public signatures use newtypes, not bare f64",
    },
    RuleInfo {
        id: "counter-coverage",
        summary: "every stats counter feeds the energy model or is waived",
    },
    RuleInfo {
        id: "wildcard-arm",
        summary: "protocol/network state machines match exhaustively",
    },
    RuleInfo {
        id: "hot-path",
        summary: "hot-path unwrap/expect/lossy casts carry justifying waivers",
    },
    RuleInfo {
        id: "probe-api",
        summary: "hot-path instrumentation goes through ProbeHandle",
    },
    RuleInfo {
        id: "sweep-api",
        summary: "sweep concurrency and cache writes go through the executor",
    },
    RuleInfo {
        id: "report-api",
        summary: "history/report writes go through the report-crate writers",
    },
    RuleInfo {
        id: "determinism",
        summary: "result-bearing crates: no hash-order iteration or ambient input",
    },
    RuleInfo {
        id: "hot-alloc",
        summary: "allocation census over per-cycle hot-path functions",
    },
    RuleInfo {
        id: "float-accum",
        summary: "merge/reduction float sums declare their accumulation order",
    },
    RuleInfo {
        id: "schema-drift",
        summary: "JSON emitter vocabularies match their validators and history",
    },
];

/// Everything one audit pass produces: the violations (ratcheted against
/// the baseline by the CLI) and the full hot-path allocation census
/// (informational sites included).
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Rule violations, sorted by (file, line).
    pub violations: Vec<Violation>,
    /// Every allocation site in the hot-path files, per-cycle or not.
    pub census: Vec<AllocSite>,
}

/// Files whose `match` statements must be exhaustive (rule 3).
const EXHAUSTIVE_MATCH_FILES: &[&str] = &[
    "crates/coherence/src/protocol.rs",
    "crates/coherence/src/directory.rs",
    "crates/coherence/src/system.rs",
    "crates/net/src/mesh.rs",
    "crates/net/src/onet.rs",
    "crates/net/src/atac.rs",
];

/// Simulator hot paths where panics and lossy casts need waivers
/// (rule 4) and where rule 9 takes its allocation census.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/net/src/mesh.rs",
    "crates/net/src/onet.rs",
    "crates/net/src/atac.rs",
    "crates/coherence/src/system.rs",
    "crates/coherence/src/directory.rs",
    "crates/coherence/src/protocol.rs",
    "crates/coherence/src/cache.rs",
    "crates/coherence/src/memctrl.rs",
    "crates/sim/src/engine.rs",
    "crates/sim/src/energy.rs",
];

/// Files rule 5 checks beyond [`HOT_PATH_FILES`].
const PROBE_API_EXTRA_FILES: &[&str] = &["crates/net/src/harness.rs"];

/// The two modules that own sweep concurrency and run-cache publication;
/// rule 6 exempts them and polices everything else.
const SWEEP_API_FILES: &[&str] = &["crates/bench/src/cache.rs", "crates/bench/src/executor.rs"];

/// First-party source roots scanned by the whole-workspace rules.
/// `crates/rand` (vendored third-party) and `crates/audit` (this crate's
/// own pattern literals) are deliberately absent.
const FIRST_PARTY_DIRS: &[&str] = &[
    "crates/bench/src",
    "crates/coherence/src",
    "crates/core/src",
    "crates/net/src",
    "crates/phys/src",
    "crates/report/src",
    "crates/sim/src",
    "crates/trace/src",
    "crates/workloads/src",
];

/// The module that owns every history/report file write; rule 7 exempts
/// it and polices the rest of `crates/report`.
const REPORT_API_FILES: &[&str] = &["crates/report/src/history.rs"];

/// Keywords marking a function (or parameter) as an energy/power/time
/// API for rule 1.
const UNIT_KEYWORDS: &[&str] = &[
    "energy", "power", "edp", "runtime", "latency", "delay", "time", "watts", "joule",
];

/// Run every rule against the workspace rooted at `root`.
///
/// # Panics
/// Panics if a source file listed by the rules cannot be read — the
/// audit is meaningless against a partial tree.
pub fn audit_workspace(root: &Path) -> AuditReport {
    let mut v = Vec::new();
    let mut census = Vec::new();

    // Lex every first-party file exactly once; all rules share the
    // models.
    let mut models: Vec<(String, FileModel)> = Vec::new();
    for dir in FIRST_PARTY_DIRS {
        for file in rust_files(&root.join(dir)) {
            let rel = rel_path(root, &file);
            models.push((rel, FileModel::parse(&read(&file))));
        }
    }
    let model_of = |rel: &str| -> &FileModel {
        models
            .iter()
            .find(|(r, _)| r == rel)
            .map(|(_, m)| m)
            .unwrap_or_else(|| panic!("audit: no model for {rel}"))
    };

    // Rule 1 over every source file of the unit-bearing crates.
    for (rel, model) in &models {
        if ["crates/phys/", "crates/sim/", "crates/trace/"]
            .iter()
            .any(|p| rel.starts_with(p))
        {
            check_raw_f64(rel, model, &mut v);
        }
    }

    // Rule 2: counter structs vs the energy integration.
    let energy_tokens = token_set(&read(&root.join("crates/sim/src/energy.rs")));
    for (rel, struct_name) in [
        ("crates/coherence/src/stats.rs", "CoherenceStats"),
        ("crates/net/src/stats.rs", "NetStats"),
    ] {
        check_counter_coverage(rel, model_of(rel), struct_name, &energy_tokens, &mut v);
    }

    // Rule 3.
    for rel in EXHAUSTIVE_MATCH_FILES {
        check_wildcard_arms(rel, model_of(rel), &mut v);
    }

    // Rules 4, 5, 9 over the hot-path files.
    for rel in HOT_PATH_FILES {
        let model = model_of(rel);
        check_hot_path(rel, model, &mut v);
        check_probe_api(rel, model, &mut v);
        hotalloc::check_hot_alloc(rel, model, &mut census, &mut v);
    }
    for rel in PROBE_API_EXTRA_FILES {
        check_probe_api(rel, model_of(rel), &mut v);
    }

    // Rules 6 and 8 over every first-party source file (rule 8 narrows
    // to the result-bearing crates internally).
    for (rel, model) in &models {
        check_sweep_api(rel, model, &mut v);
        determinism::check_determinism(rel, model, &mut v);
    }

    // Rule 7 over the report crate.
    for (rel, model) in &models {
        if rel.starts_with("crates/report/") {
            check_report_api(rel, model, &mut v);
        }
    }

    // Rule 10 over the sweep-reachable reduction files.
    for rel in floatsum::REDUCTION_FILES {
        floatsum::check_float_accum(rel, model_of(rel), &mut v);
    }

    // Rule 11: emitter vocabularies vs validators and the history file.
    schema::check_schema_drift(root, &model_of, &mut v);

    v.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    census.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    AuditReport {
        violations: v,
        census,
    }
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

// ----------------------------------------------------------------------
// Shared machinery
// ----------------------------------------------------------------------

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("audit: cannot read {}: {e}", path.display()))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d)
            .unwrap_or_else(|e| panic!("audit: cannot list {}: {e}", d.display()));
        for entry in entries {
            let p = entry.expect("readable dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Build a [`Violation`], capturing the line's trimmed raw text as the
/// fingerprint snippet. `idx` is 0-based.
pub(crate) fn violation(
    rel: &str,
    model: &FileModel,
    idx: usize,
    rule: &'static str,
    message: String,
) -> Violation {
    let snippet = model
        .lines
        .get(idx)
        .map(|l| {
            let t = l.raw.trim();
            let mut s: String = t.chars().take(160).collect();
            if s.len() < t.len() {
                s.push('…');
            }
            s
        })
        .unwrap_or_default();
    Violation {
        file: rel.to_string(),
        line: idx + 1,
        rule,
        message,
        snippet,
    }
}

/// Does line `idx` (or the line above it) carry an
/// `audit: allow(<kind>)` waiver in its comment?
pub(crate) fn has_waiver(model: &FileModel, idx: usize, kind: &str) -> bool {
    let marker = format!("audit: allow({kind})");
    if model.lines[idx].comment.contains(&marker) {
        return true;
    }
    idx > 0 && model.lines[idx - 1].comment.contains(&marker)
}

/// The contiguous run of pure-comment lines immediately above `idx`,
/// as raw text.
pub(crate) fn comment_block_above(model: &FileModel, idx: usize) -> Vec<&str> {
    let mut block = Vec::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &model.lines[i];
        if !l.comment.is_empty() && l.code.trim().is_empty() {
            block.push(l.raw.as_str());
        } else {
            break;
        }
    }
    block
}

/// All identifier-like tokens in `text` (word characters split on
/// everything else), for cheap "is this name mentioned" queries.
fn token_set(text: &str) -> std::collections::BTreeSet<String> {
    let mut set = std::collections::BTreeSet::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            set.insert(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        set.insert(cur);
    }
    set
}

fn name_has_unit_keyword(name: &str) -> bool {
    UNIT_KEYWORDS.iter().any(|k| name.contains(k))
}

// ----------------------------------------------------------------------
// Rule 1: no bare f64 in public unit-bearing signatures
// ----------------------------------------------------------------------

pub fn check_raw_f64(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    let n = model.lines.len();
    let mut i = 0;
    while i < n {
        let line = &model.lines[i];
        let t = line.code.trim_start();
        if line.in_test || !(t.starts_with("pub fn ") || t.starts_with("pub const fn ")) {
            i += 1;
            continue;
        }
        // Join the signature until its body/terminator appears.
        let first = i;
        let mut sig = String::new();
        while i < n {
            let code = &model.lines[i].code;
            sig.push_str(code);
            sig.push(' ');
            i += 1;
            if code.contains('{') || code.contains(';') {
                break;
            }
        }
        if has_waiver(model, first, "raw-f64") {
            continue;
        }
        check_signature(rel, model, first, &sig, out);
    }
}

fn check_signature(
    rel: &str,
    model: &FileModel,
    first: usize,
    sig: &str,
    out: &mut Vec<Violation>,
) {
    let Some(name) = fn_name(sig) else { return };
    let params = param_list(sig);

    // Return type: `-> f64` on a unit-keyword function.
    if name_has_unit_keyword(name) {
        if let Some(ret) = sig.split("->").nth(1) {
            let ret = ret
                .trim()
                .trim_end_matches('{')
                .trim_end_matches(';')
                .trim();
            if ret == "f64" {
                let name = name.to_string();
                out.push(violation(
                    rel,
                    model,
                    first,
                    "raw-f64",
                    format!(
                        "pub fn `{name}` returns bare f64; return a unit newtype from \
                         atac_phys::units (or waive with `// audit: allow(raw-f64)`)"
                    ),
                ));
            }
        }
    }

    // Parameters: `energyish_name: f64`.
    for (pname, ptype) in params {
        if ptype == "f64" && name_has_unit_keyword(&pname) {
            out.push(violation(
                rel,
                model,
                first,
                "raw-f64",
                format!(
                    "pub fn `{name}` takes `{pname}: f64`; use a unit newtype from \
                     atac_phys::units (or waive with `// audit: allow(raw-f64)`)"
                ),
            ));
        }
    }
}

fn fn_name(sig: &str) -> Option<&str> {
    let after = sig.split("fn ").nth(1)?;
    let end = after.find(|c: char| c == '(' || c == '<' || c.is_whitespace())?;
    Some(&after[..end])
}

/// `(param_name, flattened_type)` pairs from the top-level parameter
/// list. Nested commas (generics, tuples) are handled by depth tracking.
fn param_list(sig: &str) -> Vec<(String, String)> {
    let open = match sig.find('(') {
        Some(p) => p + 1,
        None => return Vec::new(),
    };
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut cur = String::new();
    for c in sig[open..].chars() {
        match c {
            '(' | '<' | '[' => depth += 1,
            ')' | '>' | ']' => {
                // `->` arrows never appear inside the param list; `>`
                // here only closes generics.
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ',' if depth == 1 => {
                params.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        params.push(cur);
    }
    params
        .iter()
        .filter_map(|p| {
            let (name, ty) = p.split_once(':')?;
            Some((
                name.trim().trim_start_matches("mut ").trim().to_string(),
                ty.split_whitespace().collect::<String>(),
            ))
        })
        .collect()
}

// ----------------------------------------------------------------------
// Rule 2: every stats counter feeds the energy model or is waived
// ----------------------------------------------------------------------

pub fn check_counter_coverage(
    rel: &str,
    model: &FileModel,
    struct_name: &str,
    energy_tokens: &std::collections::BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    let header = format!("pub struct {struct_name}");
    let Some(start) = model.lines.iter().position(|l| l.code.contains(&header)) else {
        out.push(violation(
            rel,
            model,
            0,
            "counter-coverage",
            format!("expected `pub struct {struct_name}` in this file"),
        ));
        return;
    };

    let mut fields = 0usize;
    let mut depth = 0i32;
    for idx in start..model.lines.len() {
        let code = &model.lines[idx].code;
        depth += i32::try_from(code.matches('{').count()).expect("line length");
        let closes = i32::try_from(code.matches('}').count()).expect("line length");

        if let Some(field) = counter_field(code) {
            fields += 1;
            let waived = comment_block_above(model, idx)
                .iter()
                .any(|l| l.contains("audit: non-energy"));
            if !waived && !energy_tokens.contains(field) {
                let msg = format!(
                    "`{struct_name}::{field}` is counted but never read by \
                     crates/sim/src/energy.rs; charge it or waive with \
                     `// audit: non-energy — <why>`"
                );
                out.push(violation(rel, model, idx, "counter-coverage", msg));
            }
        }

        depth -= closes;
        if depth <= 0 && idx > start {
            break;
        }
    }

    if fields == 0 {
        out.push(violation(
            rel,
            model,
            start,
            "counter-coverage",
            format!("`{struct_name}` declares no `pub <name>: u64` counter fields — parser drift?"),
        ));
    }
}

/// If `code` declares a `pub <ident>: u64,` counter field, return the
/// field name.
fn counter_field(code: &str) -> Option<&str> {
    let t = code.trim();
    let rest = t.strip_prefix("pub ")?;
    let (name, ty) = rest.split_once(':')?;
    let name = name.trim();
    let ty = ty.trim().trim_end_matches(',').trim();
    let ident = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    (ident && ty == "u64").then_some(name)
}

// ----------------------------------------------------------------------
// Rule 3: exhaustive matches in the state machines
// ----------------------------------------------------------------------

pub fn check_wildcard_arms(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    for idx in 0..model.lines.len() {
        if is_wildcard_arm(&model.lines[idx].code) {
            out.push(violation(
                rel,
                model,
                idx,
                "wildcard-arm",
                "wildcard `_ =>` arm in a protocol/network state machine; \
                 list the variants explicitly so new message kinds fail to compile"
                    .to_string(),
            ));
        }
    }
}

/// Detect a bare `_ =>` / `_ if … =>` match arm in the code part of a
/// line. Binding patterns like `(s, _) =>` or `Some(_) =>` are fine —
/// those still name the variant.
fn is_wildcard_arm(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with("_ if ") {
        return true;
    }
    for (pos, _) in code.match_indices("_ =>") {
        let before = code[..pos].chars().next_back();
        if matches!(before, None | Some(' ') | Some('\t') | Some('|')) {
            return true;
        }
    }
    false
}

// ----------------------------------------------------------------------
// Rule 4: hot-path panic/cast hygiene
// ----------------------------------------------------------------------

/// Lossy `as` targets: narrowing integer casts and f32. Widening or
/// same-width casts (`as u64`, `as usize`, `as f64`) are conventional in
/// counter arithmetic and excluded.
const LOSSY_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

pub fn check_hot_path(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test {
            continue;
        }
        let code = &line.code;

        for (token, kind) in [(".unwrap()", "unwrap"), (".expect(", "expect")] {
            if code.contains(token) && !has_waiver(model, idx, kind) {
                let msg = format!(
                    "`{kind}` in a simulator hot path; justify the invariant with \
                     `// audit: allow({kind}) <reason>` or handle the None/Err case"
                );
                out.push(violation(rel, model, idx, "hot-path", msg));
            }
        }

        if has_lossy_cast(code) && !has_waiver(model, idx, "cast") {
            out.push(violation(
                rel,
                model,
                idx,
                "hot-path",
                "lossy `as` cast in a simulator hot path; use `From`/`try_from` \
                 or justify with `// audit: allow(cast) <reason>`"
                    .to_string(),
            ));
        }
    }
}

fn has_lossy_cast(code: &str) -> bool {
    for (pos, _) in code.match_indices(" as ") {
        let after = &code[pos + 4..];
        for target in LOSSY_CAST_TARGETS {
            if let Some(rest) = after.strip_prefix(target) {
                let boundary = rest
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
                if boundary {
                    return true;
                }
            }
        }
    }
    false
}

// ----------------------------------------------------------------------
// Rule 5: hot-path instrumentation goes through the probe API
// ----------------------------------------------------------------------

pub fn check_probe_api(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test {
            continue;
        }
        let code = &line.code;

        if code.contains(".borrow_mut(") && !has_waiver(model, idx, "probe") {
            out.push(violation(
                rel,
                model,
                idx,
                "probe-api",
                "direct `.borrow_mut()` in an instrumented hot path; dispatch \
                 events through the `ProbeHandle` forwarders (one disabled-probe \
                 branch) or waive with `// audit: allow(probe) <reason>`"
                    .to_string(),
            ));
        }

        if pushes_sample_vec(code) && !has_waiver(model, idx, "probe") {
            out.push(violation(
                rel,
                model,
                idx,
                "probe-api",
                "raw `*_samples.push(…)` in an instrumented hot path; record \
                 into an `atac_trace::Histogram` (mergeable, constant-size) or \
                 waive with `// audit: allow(probe) <reason>`"
                    .to_string(),
            ));
        }
    }
}

/// Does `code` push onto an identifier ending in `_samples`?
fn pushes_sample_vec(code: &str) -> bool {
    for (pos, _) in code.match_indices(".push(") {
        let before = &code[..pos];
        let ident_start = before
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(0, |p| p + 1);
        if before[ident_start..].ends_with("_samples") {
            return true;
        }
    }
    false
}

// ----------------------------------------------------------------------
// Rule 6: sweep concurrency and cache writes go through the executor
// ----------------------------------------------------------------------

pub fn check_sweep_api(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    if SWEEP_API_FILES.contains(&rel) {
        return;
    }
    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test {
            continue;
        }
        let code = &line.code;

        if code.contains("thread::spawn(") && !has_waiver(model, idx, "sweep") {
            out.push(violation(
                rel,
                model,
                idx,
                "sweep-api",
                "raw `thread::spawn` outside the sweep executor; declare the \
                 work as a `RunPlan` (atac-bench executor) so panics propagate \
                 and the pool size honors ATAC_JOBS, or waive with \
                 `// audit: allow(sweep) <reason>`"
                    .to_string(),
            ));
        }

        // Ad-hoc file creation is policed only in `crates/bench`, the
        // crate that owns `target/atac-results/` — a bare write there
        // bypasses atomic publication.
        if rel.starts_with("crates/bench/") {
            for pat in ["fs::write(", "File::create(", "OpenOptions"] {
                if code.contains(pat) && !has_waiver(model, idx, "sweep") {
                    let msg = format!(
                        "ad-hoc `{pat}…` in crates/bench outside the cache layer; \
                         publish run records through `RunCache`/`publish_atomic` \
                         (temp file + rename) or waive with \
                         `// audit: allow(sweep) <reason>`"
                    );
                    out.push(violation(rel, model, idx, "sweep-api", msg));
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule 7: history/report writes go through the report-crate writers
// ----------------------------------------------------------------------

pub fn check_report_api(rel: &str, model: &FileModel, out: &mut Vec<Violation>) {
    if REPORT_API_FILES.contains(&rel) {
        return;
    }
    for idx in 0..model.lines.len() {
        let line = &model.lines[idx];
        if line.in_test {
            continue;
        }
        for pat in ["fs::write(", "File::create(", "OpenOptions"] {
            if line.code.contains(pat) && !has_waiver(model, idx, "report") {
                let msg = format!(
                    "ad-hoc `{pat}…` in crates/report outside history.rs; write \
                     through `append_lines`/`write_text` so the registry stays \
                     append-only, or waive with `// audit: allow(report) <reason>`"
                );
                out.push(violation(rel, model, idx, "report-api", msg));
            }
        }
    }
}

// ----------------------------------------------------------------------
// Tests: each rule must fire on a seeded violation and stay quiet on
// clean input; the shipped tree must audit clean modulo the committed
// baseline.
// ----------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse(src)
    }

    #[test]
    fn shipped_tree_is_clean_modulo_baseline() {
        let root = workspace_root();
        let rep = audit_workspace(&root);
        let baseline_path = root.join("audit_baseline.json");
        let baseline = if baseline_path.exists() {
            report::parse_baseline(&std::fs::read_to_string(&baseline_path).expect("readable"))
                .expect("valid baseline")
        } else {
            std::collections::BTreeMap::new()
        };
        let outcome = report::ratchet(&rep.violations, &baseline);
        assert!(
            outcome.fresh.is_empty(),
            "new audit violations (not in audit_baseline.json):\n{}",
            outcome
                .fresh
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            outcome.stale.is_empty(),
            "baseline entries no longer found (shrink with --write-baseline):\n{}",
            outcome
                .stale
                .iter()
                .map(|(fp, n)| format!("{n}× {fp}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            !rep.census.is_empty(),
            "hot-path census found no allocation sites at all — scanner drift?"
        );
    }

    #[test]
    fn rule_registry_matches_doc_count() {
        assert_eq!(RULES.len(), 11);
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len(), "duplicate rule ids");
    }

    // ---- rule 1 ----

    #[test]
    fn raw_f64_return_fires() {
        let m = model("pub fn laser_energy(&self) -> f64 {\n");
        let mut v = Vec::new();
        check_raw_f64("x.rs", &m, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "raw-f64");
        assert_eq!(v[0].line, 1);
        assert!(v[0].snippet.contains("laser_energy"));
    }

    #[test]
    fn raw_f64_param_fires_across_lines() {
        let m = model("pub fn charge(\n    &mut self,\n    idle_power: f64,\n) -> Joules {\n");
        let mut v = Vec::new();
        check_raw_f64("x.rs", &m, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("idle_power"));
    }

    #[test]
    fn raw_f64_respects_waiver_and_units() {
        let m = model(
            "// audit: allow(raw-f64) plotting helper, dimensionless by design\n\
             pub fn energy_ratio(&self) -> f64 { 0.0 }\n\
             pub fn laser_energy(&self) -> Joules { Joules(0.0) }\n\
             pub fn value(self) -> f64 { self.0 }\n\
             pub fn scale(&self, ipc: f64) -> Joules { Joules(ipc) }\n",
        );
        let mut v = Vec::new();
        check_raw_f64("x.rs", &m, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_f64_skips_test_module() {
        let m = model("#[cfg(test)]\nmod tests {\n    pub fn fake_energy() -> f64 { 0.0 }\n}\n");
        let mut v = Vec::new();
        check_raw_f64("x.rs", &m, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn raw_f64_ignores_commented_out_signatures() {
        let m = model("// pub fn laser_energy(&self) -> f64 {\n/* pub fn idle_power() -> f64 */\n");
        let mut v = Vec::new();
        check_raw_f64("x.rs", &m, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- rule 2 ----

    fn toy_energy_tokens() -> std::collections::BTreeSet<String> {
        token_set("e.dyn = net.charged_events as f64;")
    }

    #[test]
    fn orphan_counter_fires() {
        let m = model(
            "counters_struct! {\n\
                 pub struct NetStats {\n\
                 /// Charged.\n\
                 pub charged_events: u64,\n\
                 /// Forgotten.\n\
                 pub orphan_events: u64,\n\
             }\n\
             }\n",
        );
        let mut v = Vec::new();
        check_counter_coverage("s.rs", &m, "NetStats", &toy_energy_tokens(), &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("orphan_events"));
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn non_energy_waiver_is_honored() {
        let m = model(
            "pub struct NetStats {\n\
                 /// Diagnostic only.\n\
                 // audit: non-energy — congestion diagnostic, no energy event\n\
                 pub orphan_events: u64,\n\
             }\n",
        );
        let mut v = Vec::new();
        check_counter_coverage("s.rs", &m, "NetStats", &toy_energy_tokens(), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_struct_is_reported() {
        let m = model("fn nothing() {}");
        let mut v = Vec::new();
        check_counter_coverage("s.rs", &m, "NetStats", &toy_energy_tokens(), &mut v);
        assert_eq!(v.len(), 1);
    }

    // ---- rule 3 ----

    #[test]
    fn wildcard_arm_detection() {
        assert!(is_wildcard_arm("            _ => self.drop(),"));
        assert!(is_wildcard_arm("_ => {}"));
        assert!(is_wildcard_arm("            _ if x > 0 => step(),"));
        assert!(is_wildcard_arm("            Kind::A | _ => step(),"));
        // Variant-naming patterns are fine.
        assert!(!is_wildcard_arm("            (s, _) => step(),"));
        assert!(!is_wildcard_arm("            Some(_) => step(),"));
        assert!(!is_wildcard_arm("            let _ = consume();"));
        assert!(!is_wildcard_arm("            Kind::A => step(),"));
    }

    #[test]
    fn wildcard_in_comment_or_string_does_not_fire() {
        let m = model("// never write `_ =>` here\nlet s = \"_ => bad\";\nx => y,\n");
        let mut v = Vec::new();
        check_wildcard_arms("m.rs", &m, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- rule 4 ----

    #[test]
    fn hot_path_unwrap_fires_and_waives() {
        let mut v = Vec::new();
        check_hot_path("h.rs", &model("let x = q.pop().unwrap();\n"), &mut v);
        assert_eq!(v.len(), 1);

        let mut v = Vec::new();
        check_hot_path(
            "h.rs",
            &model("let x = q.pop().unwrap(); // audit: allow(unwrap) queue checked non-empty\n"),
            &mut v,
        );
        assert!(v.is_empty());

        let mut v = Vec::new();
        check_hot_path(
            "h.rs",
            &model(
                "// audit: allow(expect) slot is live by refcount\nlet x = s.expect(\"live\");\n",
            ),
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn hot_path_ignores_unwrap_in_string_literal() {
        let m = model("let msg = \"call .unwrap() responsibly\";\n");
        let mut v = Vec::new();
        check_hot_path("h.rs", &m, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lossy_cast_detection() {
        assert!(has_lossy_cast("let x = n as u16;"));
        assert!(has_lossy_cast("f(len as u32)"));
        assert!(has_lossy_cast("let y = big as i32 + 1;"));
        assert!(!has_lossy_cast("let x = n as u64;"));
        assert!(!has_lossy_cast("let x = n as usize;"));
        assert!(!has_lossy_cast("let x = n as f64;"));
        assert!(!has_lossy_cast("let x = n as u160;")); // not a real type, but boundary-checked
    }

    #[test]
    fn hot_path_skips_test_module() {
        let m = model("#[cfg(test)]\nmod tests {\n    fn f() { q.pop().unwrap(); }\n}\n");
        let mut v = Vec::new();
        check_hot_path("h.rs", &m, &mut v);
        assert!(v.is_empty());
    }

    // ---- rule 5 ----

    #[test]
    fn probe_api_borrow_mut_fires_and_waives() {
        let mut v = Vec::new();
        check_probe_api(
            "n.rs",
            &model("self.probe.as_ref().map(|p| p.borrow_mut().net_deliver(&ev));\n"),
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "probe-api");

        let mut v = Vec::new();
        check_probe_api(
            "n.rs",
            &model(
                "// audit: allow(probe) collector drained once at shutdown, cold path\n\
                 let mut c = collector.borrow_mut();\n",
            ),
            &mut v,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn probe_api_sample_vec_fires() {
        let mut v = Vec::new();
        check_probe_api(
            "h.rs",
            &model("lat_samples.push(d.at - gen_time[t]);\n"),
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Histogram"));
        // Pushing to anything else is fine.
        let mut v = Vec::new();
        check_probe_api(
            "h.rs",
            &model("deliveries.push(d);\nheap.push(Reverse((now, c)));\n"),
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn probe_api_skips_test_module() {
        let m = model("#[cfg(test)]\nmod tests {\n    fn f() { probe.borrow_mut().tick(); }\n}\n");
        let mut v = Vec::new();
        check_probe_api("n.rs", &m, &mut v);
        assert!(v.is_empty());
    }

    // ---- rule 6 ----

    #[test]
    fn sweep_api_spawn_fires_and_waives() {
        let mut v = Vec::new();
        check_sweep_api(
            "crates/sim/src/engine.rs",
            &model("let h = std::thread::spawn(move || simulate(cfg));\n"),
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sweep-api");

        let mut v = Vec::new();
        check_sweep_api(
            "crates/sim/src/engine.rs",
            &model(
                "// audit: allow(sweep) watchdog thread, not sweep work\n\
                 let h = std::thread::spawn(watchdog);\n",
            ),
            &mut v,
        );
        assert!(v.is_empty(), "{v:?}");

        // The executor/cache pair is exempt wholesale.
        let mut v = Vec::new();
        check_sweep_api(
            "crates/bench/src/executor.rs",
            &model("std::thread::spawn(f); fs::write(p, c);\n"),
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn sweep_api_file_writes_fire_in_bench_only() {
        let bad = model("fs::write(&path, runjson::encode(&rec));\n");
        let mut v = Vec::new();
        check_sweep_api("crates/bench/src/bin/fig99.rs", &bad, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("publish_atomic"));

        // The same write elsewhere in the workspace is out of scope
        // (exporters etc. own their formats).
        let mut v = Vec::new();
        check_sweep_api("crates/trace/src/export.rs", &bad, &mut v);
        assert!(v.is_empty());

        // File::create and OpenOptions are the same hole.
        let mut v = Vec::new();
        check_sweep_api(
            "crates/bench/src/lib.rs",
            &model("let f = File::create(&p)?;\nlet o = OpenOptions::new();\n"),
            &mut v,
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn sweep_api_skips_tests_and_comments() {
        let m = model(
            "// never call thread::spawn( here\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn f() { std::thread::spawn(|| {}); fs::write(a, b); }\n\
             }\n",
        );
        let mut v = Vec::new();
        check_sweep_api("crates/bench/src/lib.rs", &m, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- rule 7 ----

    #[test]
    fn report_api_writes_fire_outside_history() {
        let bad = model("fs::write(&path, &markdown)?;\nlet f = File::create(&out)?;\n");
        let mut v = Vec::new();
        check_report_api("crates/report/src/render.rs", &bad, &mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, "report-api");
        assert!(v[0].message.contains("append_lines"));

        // The designated writer module is exempt wholesale.
        let writer =
            model("let f = OpenOptions::new().append(true).open(p)?;\nfs::write(p, t)?;\n");
        let mut v = Vec::new();
        check_report_api("crates/report/src/history.rs", &writer, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn report_api_waiver_and_test_module_are_honored() {
        let waived = model(
            "// audit: allow(report) debug dump, not a registry artifact\n\
             fs::write(&dbg_path, &dump)?;\n",
        );
        let mut v = Vec::new();
        check_report_api("crates/report/src/main.rs", &waived, &mut v);
        assert!(v.is_empty(), "{v:?}");

        let test_only = model("#[cfg(test)]\nmod tests {\n    fn f() { fs::write(a, b); }\n}\n");
        let mut v = Vec::new();
        check_report_api("crates/report/src/gate.rs", &test_only, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- shared machinery ----

    #[test]
    fn param_parser_handles_nesting() {
        let p = param_list("pub fn f(a: Vec<(u32, f64)>, tuning_power: f64) -> X {");
        assert_eq!(p.len(), 2);
        assert_eq!(p[1], ("tuning_power".to_string(), "f64".to_string()));
    }

    #[test]
    fn waiver_lookup_reads_comments_only() {
        let m = model("let s = \"audit: allow(unwrap) decoy\"; q.unwrap();\n");
        assert!(!has_waiver(&m, 0, "unwrap"), "string decoy must not waive");
        let m = model("q.unwrap(); // audit: allow(unwrap) head checked\n");
        assert!(has_waiver(&m, 0, "unwrap"));
    }
}
