//! Project-specific static analysis for the ATAC+ workspace.
//!
//! Seven rules, all enforced line/token-wise on the raw source text (so
//! they see code inside macro invocations, which `syn`-style tooling
//! would not without expansion — and this crate must build with zero
//! dependencies):
//!
//! 1. **`raw-f64`** — public functions in `crates/phys`, `crates/sim`
//!    and `crates/trace` whose name (or a parameter name) speaks of
//!    energy, power, or time must not traffic in bare `f64`; they must
//!    use the unit newtypes from `atac_phys::units`. Waive with
//!    `// audit: allow(raw-f64)`.
//! 2. **`counter-coverage`** — every counter field of `CoherenceStats`
//!    and `NetStats` must either be read by the energy integration in
//!    `crates/sim/src/energy.rs` or carry an explicit
//!    `// audit: non-energy` waiver explaining why it carries no energy.
//!    This catches the classic drift bug where an event is counted but
//!    silently never charged.
//! 3. **`wildcard-arm`** — the protocol/network state machines must
//!    match exhaustively: no `_ =>` (or `_ if … =>`) arms in the listed
//!    files, so adding a message kind or route forces every handler to
//!    be revisited.
//! 4. **`hot-path`** — `unwrap()`, `expect()`, and lossy `as` casts in
//!    simulator hot paths need a same-line or line-above
//!    `// audit: allow(unwrap|expect|cast) <reason>` waiver naming the
//!    invariant that makes them safe.
//! 5. **`probe-api`** — instrumentation in hot paths must go through the
//!    `atac_trace::ProbeHandle` forwarders: no direct `.borrow_mut(`
//!    probe access (which would bypass the one-branch disabled-probe
//!    guarantee) and no raw `*_samples.push(…)` sample vectors (latency
//!    observations belong in a mergeable `Histogram`). Waive with
//!    `// audit: allow(probe) <reason>`.
//! 6. **`sweep-api`** — all sweep concurrency and run-cache publication
//!    go through the `atac-bench` executor/cache layer: no raw
//!    `thread::spawn` anywhere in the first-party crates (the worker
//!    pool owns threading; scoped `s.spawn` inside it is fine), and no
//!    ad-hoc `fs::write`/`File::create`/`OpenOptions` in `crates/bench`
//!    outside `executor.rs`/`cache.rs` — a bare write under
//!    `target/atac-results/` would bypass the atomic temp-file + rename
//!    protocol that keeps parallel sweeps torn-record-free. Waive with
//!    `// audit: allow(sweep) <reason>`.
//! 7. **`report-api`** — all run-history and report file writes go
//!    through the `crates/report` history writers
//!    (`append_lines`/`write_text` in `history.rs`): no ad-hoc
//!    `fs::write`/`File::create`/`OpenOptions` elsewhere in
//!    `crates/report`. The registry is append-only and
//!    schema-versioned; a stray write could truncate or interleave
//!    `BENCH_history.jsonl` and silently blind the regression gate.
//!    Waive with `// audit: allow(report) <reason>`.
//!
//! The binary (`cargo run -p atac-audit`) exits non-zero on any
//! violation; the same pass runs under `cargo test` via
//! [`tests::shipped_tree_is_clean`].

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`raw-f64`, `counter-coverage`, `wildcard-arm`,
    /// `hot-path`, `probe-api`, `sweep-api`, `report-api`).
    pub rule: &'static str,
    /// Human-readable description of the problem and the fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files whose `match` statements must be exhaustive (rule 3).
const EXHAUSTIVE_MATCH_FILES: &[&str] = &[
    "crates/coherence/src/protocol.rs",
    "crates/coherence/src/directory.rs",
    "crates/coherence/src/system.rs",
    "crates/net/src/mesh.rs",
    "crates/net/src/onet.rs",
    "crates/net/src/atac.rs",
];

/// Simulator hot paths where panics and lossy casts need waivers
/// (rule 4).
const HOT_PATH_FILES: &[&str] = &[
    "crates/net/src/mesh.rs",
    "crates/net/src/onet.rs",
    "crates/net/src/atac.rs",
    "crates/coherence/src/system.rs",
    "crates/coherence/src/directory.rs",
    "crates/coherence/src/protocol.rs",
    "crates/coherence/src/cache.rs",
    "crates/coherence/src/memctrl.rs",
    "crates/sim/src/engine.rs",
    "crates/sim/src/energy.rs",
];

/// Files rule 5 checks beyond [`HOT_PATH_FILES`]: instrumentation-heavy
/// code that is not panic/cast-sensitive but must still use the probe
/// API rather than ad-hoc sample collection.
const PROBE_API_EXTRA_FILES: &[&str] = &["crates/net/src/harness.rs"];

/// The two modules that own sweep concurrency and run-cache publication;
/// rule 6 exempts them and polices everything else.
const SWEEP_API_FILES: &[&str] = &["crates/bench/src/cache.rs", "crates/bench/src/executor.rs"];

/// First-party source roots rule 6 scans for raw `thread::spawn`.
/// `crates/rand` (vendored third-party) and `crates/audit` (this crate's
/// own pattern literals) are deliberately absent.
const SWEEP_API_DIRS: &[&str] = &[
    "crates/bench/src",
    "crates/coherence/src",
    "crates/core/src",
    "crates/net/src",
    "crates/phys/src",
    "crates/report/src",
    "crates/sim/src",
    "crates/trace/src",
    "crates/workloads/src",
];

/// The module that owns every history/report file write; rule 7 exempts
/// it and polices the rest of `crates/report`.
const REPORT_API_FILES: &[&str] = &["crates/report/src/history.rs"];

/// Keywords marking a function (or parameter) as an energy/power/time
/// API for rule 1.
const UNIT_KEYWORDS: &[&str] = &[
    "energy", "power", "edp", "runtime", "latency", "delay", "time", "watts", "joule",
];

/// Run every rule against the workspace rooted at `root`.
///
/// # Panics
/// Panics if a source file listed by the rules cannot be read — the
/// audit is meaningless against a partial tree.
pub fn audit_workspace(root: &Path) -> Vec<Violation> {
    let mut v = Vec::new();

    // Rule 1 over every source file of the unit-bearing crates.
    for dir in ["crates/phys/src", "crates/sim/src", "crates/trace/src"] {
        for file in rust_files(&root.join(dir)) {
            let rel = rel_path(root, &file);
            let text = read(&file);
            check_raw_f64(&rel, &text, &mut v);
        }
    }

    // Rule 2: counter structs vs the energy integration.
    let energy = read(&root.join("crates/sim/src/energy.rs"));
    let energy_tokens = token_set(&energy);
    for (rel, struct_name) in [
        ("crates/coherence/src/stats.rs", "CoherenceStats"),
        ("crates/net/src/stats.rs", "NetStats"),
    ] {
        let text = read(&root.join(rel));
        check_counter_coverage(rel, &text, struct_name, &energy_tokens, &mut v);
    }

    // Rule 3.
    for rel in EXHAUSTIVE_MATCH_FILES {
        let text = read(&root.join(rel));
        check_wildcard_arms(rel, &text, &mut v);
    }

    // Rule 4.
    for rel in HOT_PATH_FILES {
        let text = read(&root.join(rel));
        check_hot_path(rel, &text, &mut v);
    }

    // Rule 5.
    for rel in HOT_PATH_FILES.iter().chain(PROBE_API_EXTRA_FILES) {
        let text = read(&root.join(rel));
        check_probe_api(rel, &text, &mut v);
    }

    // Rule 6 over every first-party source file.
    for dir in SWEEP_API_DIRS {
        for file in rust_files(&root.join(dir)) {
            let rel = rel_path(root, &file);
            let text = read(&file);
            check_sweep_api(&rel, &text, &mut v);
        }
    }

    // Rule 7 over the report crate.
    for file in rust_files(&root.join("crates/report/src")) {
        let rel = rel_path(root, &file);
        let text = read(&file);
        check_report_api(&rel, &text, &mut v);
    }

    v.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    v
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

// ----------------------------------------------------------------------
// Shared text machinery
// ----------------------------------------------------------------------

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("audit: cannot read {}: {e}", path.display()))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d)
            .unwrap_or_else(|e| panic!("audit: cannot list {}: {e}", d.display()));
        for entry in entries {
            let p = entry.expect("readable dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Split a line into its code part and its `//` comment part, ignoring
/// `//` sequences inside string literals.
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// 0-based index of the first line of the file's trailing `#[cfg(test)]`
/// region, or `len` if there is none. By workspace convention the test
/// module is the last item in a file.
fn test_region_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

/// Does line `idx` (or the full line above it) carry an
/// `audit: allow(<kind>)` waiver?
fn has_waiver(lines: &[&str], idx: usize, kind: &str) -> bool {
    let marker = format!("audit: allow({kind})");
    let (_, comment) = split_comment(lines[idx]);
    if comment.contains(&marker) {
        return true;
    }
    idx > 0 && lines[idx - 1].contains(&marker)
}

/// All identifier-like tokens in `text` (word characters split on
/// everything else), for cheap "is this name mentioned" queries.
fn token_set(text: &str) -> std::collections::BTreeSet<String> {
    let mut set = std::collections::BTreeSet::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            set.insert(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        set.insert(cur);
    }
    set
}

fn name_has_unit_keyword(name: &str) -> bool {
    UNIT_KEYWORDS.iter().any(|k| name.contains(k))
}

// ----------------------------------------------------------------------
// Rule 1: no bare f64 in public unit-bearing signatures
// ----------------------------------------------------------------------

fn check_raw_f64(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    let mut i = 0;
    while i < test_start {
        let (code, _) = split_comment(lines[i]);
        if !(code.trim_start().starts_with("pub fn ")
            || code.trim_start().starts_with("pub const fn "))
        {
            i += 1;
            continue;
        }
        // Join the signature until its body/terminator appears.
        let first = i;
        let mut sig = String::new();
        while i < test_start {
            let (code, _) = split_comment(lines[i]);
            sig.push_str(code);
            sig.push(' ');
            i += 1;
            if code.contains('{') || code.contains(';') {
                break;
            }
        }
        if has_waiver(&lines, first, "raw-f64") {
            continue;
        }
        check_signature(rel, first + 1, &sig, out);
    }
}

fn check_signature(rel: &str, line: usize, sig: &str, out: &mut Vec<Violation>) {
    let Some(name) = fn_name(sig) else { return };
    let params = param_list(sig);

    // Return type: `-> f64` on a unit-keyword function.
    if name_has_unit_keyword(name) {
        if let Some(ret) = sig.split("->").nth(1) {
            let ret = ret
                .trim()
                .trim_end_matches('{')
                .trim_end_matches(';')
                .trim();
            if ret == "f64" {
                out.push(Violation {
                    file: rel.to_string(),
                    line,
                    rule: "raw-f64",
                    message: format!(
                        "pub fn `{name}` returns bare f64; return a unit newtype from \
                         atac_phys::units (or waive with `// audit: allow(raw-f64)`)"
                    ),
                });
            }
        }
    }

    // Parameters: `energyish_name: f64`.
    for (pname, ptype) in params {
        if ptype == "f64" && name_has_unit_keyword(&pname) {
            out.push(Violation {
                file: rel.to_string(),
                line,
                rule: "raw-f64",
                message: format!(
                    "pub fn `{name}` takes `{pname}: f64`; use a unit newtype from \
                     atac_phys::units (or waive with `// audit: allow(raw-f64)`)"
                ),
            });
        }
    }
}

fn fn_name(sig: &str) -> Option<&str> {
    let after = sig.split("fn ").nth(1)?;
    let end = after.find(|c: char| c == '(' || c == '<' || c.is_whitespace())?;
    Some(&after[..end])
}

/// `(param_name, flattened_type)` pairs from the top-level parameter
/// list. Nested commas (generics, tuples) are handled by depth tracking.
fn param_list(sig: &str) -> Vec<(String, String)> {
    let open = match sig.find('(') {
        Some(p) => p + 1,
        None => return Vec::new(),
    };
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut cur = String::new();
    for c in sig[open..].chars() {
        match c {
            '(' | '<' | '[' => depth += 1,
            ')' | '>' | ']' => {
                // `->` arrows never appear inside the param list; `>`
                // here only closes generics.
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ',' if depth == 1 => {
                params.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        params.push(cur);
    }
    params
        .iter()
        .filter_map(|p| {
            let (name, ty) = p.split_once(':')?;
            Some((
                name.trim().trim_start_matches("mut ").trim().to_string(),
                ty.split_whitespace().collect::<String>(),
            ))
        })
        .collect()
}

// ----------------------------------------------------------------------
// Rule 2: every stats counter feeds the energy model or is waived
// ----------------------------------------------------------------------

fn check_counter_coverage(
    rel: &str,
    text: &str,
    struct_name: &str,
    energy_tokens: &std::collections::BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    let lines: Vec<&str> = text.lines().collect();
    let header = format!("pub struct {struct_name}");
    let Some(start) = lines.iter().position(|l| l.contains(&header)) else {
        out.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "counter-coverage",
            message: format!("expected `pub struct {struct_name}` in this file"),
        });
        return;
    };

    let mut fields = 0usize;
    let mut depth = 0i32;
    for (idx, raw) in lines.iter().enumerate().skip(start) {
        let (code, _) = split_comment(raw);
        depth += i32::try_from(code.matches('{').count()).expect("line length");
        let closes = i32::try_from(code.matches('}').count()).expect("line length");

        if let Some(field) = counter_field(code) {
            fields += 1;
            let waived = comment_block_above(&lines, idx)
                .iter()
                .any(|l| l.contains("audit: non-energy"));
            if !waived && !energy_tokens.contains(field) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "counter-coverage",
                    message: format!(
                        "`{struct_name}::{field}` is counted but never read by \
                         crates/sim/src/energy.rs; charge it or waive with \
                         `// audit: non-energy — <why>`"
                    ),
                });
            }
        }

        depth -= closes;
        if depth <= 0 && idx > start {
            break;
        }
    }

    if fields == 0 {
        out.push(Violation {
            file: rel.to_string(),
            line: start + 1,
            rule: "counter-coverage",
            message: format!(
                "`{struct_name}` declares no `pub <name>: u64` counter fields — parser drift?"
            ),
        });
    }
}

/// If `code` declares a `pub <ident>: u64,` counter field, return the
/// field name.
fn counter_field(code: &str) -> Option<&str> {
    let t = code.trim();
    let rest = t.strip_prefix("pub ")?;
    let (name, ty) = rest.split_once(':')?;
    let name = name.trim();
    let ty = ty.trim().trim_end_matches(',').trim();
    let ident = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    (ident && ty == "u64").then_some(name)
}

/// The contiguous run of pure-comment lines immediately above `idx`.
fn comment_block_above<'a>(lines: &[&'a str], idx: usize) -> Vec<&'a str> {
    let mut block = Vec::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            block.push(lines[i]);
        } else {
            break;
        }
    }
    block
}

// ----------------------------------------------------------------------
// Rule 3: exhaustive matches in the state machines
// ----------------------------------------------------------------------

fn check_wildcard_arms(rel: &str, text: &str, out: &mut Vec<Violation>) {
    for (idx, raw) in text.lines().enumerate() {
        let (code, _) = split_comment(raw);
        if is_wildcard_arm(code) {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "wildcard-arm",
                message: "wildcard `_ =>` arm in a protocol/network state machine; \
                          list the variants explicitly so new message kinds fail to compile"
                    .to_string(),
            });
        }
    }
}

/// Detect a bare `_ =>` / `_ if … =>` match arm in the code part of a
/// line. Binding patterns like `(s, _) =>` or `Some(_) =>` are fine —
/// those still name the variant.
fn is_wildcard_arm(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with("_ if ") {
        return true;
    }
    for (pos, _) in code.match_indices("_ =>") {
        let before = code[..pos].chars().next_back();
        if matches!(before, None | Some(' ') | Some('\t') | Some('|')) {
            return true;
        }
    }
    false
}

// ----------------------------------------------------------------------
// Rule 4: hot-path panic/cast hygiene
// ----------------------------------------------------------------------

/// Lossy `as` targets: narrowing integer casts and f32. Widening or
/// same-width casts (`as u64`, `as usize`, `as f64`) are conventional in
/// counter arithmetic and excluded.
const LOSSY_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

fn check_hot_path(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    for idx in 0..test_start {
        let (code, _) = split_comment(lines[idx]);

        for (token, kind) in [(".unwrap()", "unwrap"), (".expect(", "expect")] {
            if code.contains(token) && !has_waiver(&lines, idx, kind) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "hot-path",
                    message: format!(
                        "`{kind}` in a simulator hot path; justify the invariant with \
                         `// audit: allow({kind}) <reason>` or handle the None/Err case"
                    ),
                });
            }
        }

        if has_lossy_cast(code) && !has_waiver(&lines, idx, "cast") {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "hot-path",
                message: "lossy `as` cast in a simulator hot path; use `From`/`try_from` \
                          or justify with `// audit: allow(cast) <reason>`"
                    .to_string(),
            });
        }
    }
}

fn has_lossy_cast(code: &str) -> bool {
    for (pos, _) in code.match_indices(" as ") {
        let after = &code[pos + 4..];
        for target in LOSSY_CAST_TARGETS {
            if let Some(rest) = after.strip_prefix(target) {
                let boundary = rest
                    .chars()
                    .next()
                    .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
                if boundary {
                    return true;
                }
            }
        }
    }
    false
}

// ----------------------------------------------------------------------
// Rule 5: hot-path instrumentation goes through the probe API
// ----------------------------------------------------------------------

fn check_probe_api(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    for idx in 0..test_start {
        let (code, _) = split_comment(lines[idx]);

        if code.contains(".borrow_mut(") && !has_waiver(&lines, idx, "probe") {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "probe-api",
                message: "direct `.borrow_mut()` in an instrumented hot path; dispatch \
                          events through the `ProbeHandle` forwarders (one disabled-probe \
                          branch) or waive with `// audit: allow(probe) <reason>`"
                    .to_string(),
            });
        }

        if pushes_sample_vec(code) && !has_waiver(&lines, idx, "probe") {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "probe-api",
                message: "raw `*_samples.push(…)` in an instrumented hot path; record \
                          into an `atac_trace::Histogram` (mergeable, constant-size) or \
                          waive with `// audit: allow(probe) <reason>`"
                    .to_string(),
            });
        }
    }
}

/// Does `code` push onto an identifier ending in `_samples`?
fn pushes_sample_vec(code: &str) -> bool {
    for (pos, _) in code.match_indices(".push(") {
        let before = &code[..pos];
        let ident_start = before
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(0, |p| p + 1);
        if before[ident_start..].ends_with("_samples") {
            return true;
        }
    }
    false
}

// ----------------------------------------------------------------------
// Rule 6: sweep concurrency and cache writes go through the executor
// ----------------------------------------------------------------------

fn check_sweep_api(rel: &str, text: &str, out: &mut Vec<Violation>) {
    if SWEEP_API_FILES.contains(&rel) {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    for idx in 0..test_start {
        let (code, _) = split_comment(lines[idx]);

        if code.contains("thread::spawn(") && !has_waiver(&lines, idx, "sweep") {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "sweep-api",
                message: "raw `thread::spawn` outside the sweep executor; declare the \
                          work as a `RunPlan` (atac-bench executor) so panics propagate \
                          and the pool size honors ATAC_JOBS, or waive with \
                          `// audit: allow(sweep) <reason>`"
                    .to_string(),
            });
        }

        // Ad-hoc file creation is policed only in `crates/bench`, the
        // crate that owns `target/atac-results/` — a bare write there
        // bypasses atomic publication.
        if rel.starts_with("crates/bench/") {
            for pat in ["fs::write(", "File::create(", "OpenOptions"] {
                if code.contains(pat) && !has_waiver(&lines, idx, "sweep") {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "sweep-api",
                        message: format!(
                            "ad-hoc `{pat}…` in crates/bench outside the cache layer; \
                             publish run records through `RunCache`/`publish_atomic` \
                             (temp file + rename) or waive with \
                             `// audit: allow(sweep) <reason>`"
                        ),
                    });
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rule 7: history/report writes go through the report-crate writers
// ----------------------------------------------------------------------

fn check_report_api(rel: &str, text: &str, out: &mut Vec<Violation>) {
    if REPORT_API_FILES.contains(&rel) {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    for idx in 0..test_start {
        let (code, _) = split_comment(lines[idx]);
        for pat in ["fs::write(", "File::create(", "OpenOptions"] {
            if code.contains(pat) && !has_waiver(&lines, idx, "report") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "report-api",
                    message: format!(
                        "ad-hoc `{pat}…` in crates/report outside history.rs; write \
                         through `append_lines`/`write_text` so the registry stays \
                         append-only, or waive with `// audit: allow(report) <reason>`"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Tests: each rule must fire on a seeded violation and stay quiet on
// clean input; the shipped tree must audit clean.
// ----------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_tree_is_clean() {
        let violations = audit_workspace(&workspace_root());
        assert!(
            violations.is_empty(),
            "audit violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    // ---- rule 1 ----

    #[test]
    fn raw_f64_return_fires() {
        let src = "pub fn laser_energy(&self) -> f64 {\n";
        let mut v = Vec::new();
        check_raw_f64("x.rs", src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "raw-f64");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_f64_param_fires_across_lines() {
        let src = "pub fn charge(\n    &mut self,\n    idle_power: f64,\n) -> Joules {\n";
        let mut v = Vec::new();
        check_raw_f64("x.rs", src, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("idle_power"));
    }

    #[test]
    fn raw_f64_respects_waiver_and_units() {
        let clean = "\
// audit: allow(raw-f64) plotting helper, dimensionless by design\n\
pub fn energy_ratio(&self) -> f64 { 0.0 }\n\
pub fn laser_energy(&self) -> Joules { Joules(0.0) }\n\
pub fn value(self) -> f64 { self.0 }\n\
pub fn scale(&self, ipc: f64) -> Joules { Joules(ipc) }\n";
        let mut v = Vec::new();
        check_raw_f64("x.rs", clean, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_f64_skips_test_module() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn fake_energy() -> f64 { 0.0 }\n}\n";
        let mut v = Vec::new();
        check_raw_f64("x.rs", src, &mut v);
        assert!(v.is_empty());
    }

    // ---- rule 2 ----

    fn toy_energy_tokens() -> std::collections::BTreeSet<String> {
        token_set("e.dyn = net.charged_events as f64;")
    }

    #[test]
    fn orphan_counter_fires() {
        let src = "\
counters_struct! {\n\
    pub struct NetStats {\n\
        /// Charged.\n\
        pub charged_events: u64,\n\
        /// Forgotten.\n\
        pub orphan_events: u64,\n\
    }\n\
}\n";
        let mut v = Vec::new();
        check_counter_coverage("s.rs", src, "NetStats", &toy_energy_tokens(), &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("orphan_events"));
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn non_energy_waiver_is_honored() {
        let src = "\
pub struct NetStats {\n\
    /// Diagnostic only.\n\
    // audit: non-energy — congestion diagnostic, no energy event\n\
    pub orphan_events: u64,\n\
}\n";
        let mut v = Vec::new();
        check_counter_coverage("s.rs", src, "NetStats", &toy_energy_tokens(), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_struct_is_reported() {
        let mut v = Vec::new();
        check_counter_coverage(
            "s.rs",
            "fn nothing() {}",
            "NetStats",
            &toy_energy_tokens(),
            &mut v,
        );
        assert_eq!(v.len(), 1);
    }

    // ---- rule 3 ----

    #[test]
    fn wildcard_arm_detection() {
        assert!(is_wildcard_arm("            _ => self.drop(),"));
        assert!(is_wildcard_arm("_ => {}"));
        assert!(is_wildcard_arm("            _ if x > 0 => step(),"));
        assert!(is_wildcard_arm("            Kind::A | _ => step(),"));
        // Variant-naming patterns are fine.
        assert!(!is_wildcard_arm("            (s, _) => step(),"));
        assert!(!is_wildcard_arm("            Some(_) => step(),"));
        assert!(!is_wildcard_arm("            let _ = consume();"));
        assert!(!is_wildcard_arm("            Kind::A => step(),"));
    }

    #[test]
    fn wildcard_in_comment_does_not_fire() {
        let mut v = Vec::new();
        check_wildcard_arms("m.rs", "// never write `_ =>` here\nx => y,\n", &mut v);
        assert!(v.is_empty());
    }

    // ---- rule 4 ----

    #[test]
    fn hot_path_unwrap_fires_and_waives() {
        let bad = "let x = q.pop().unwrap();\n";
        let mut v = Vec::new();
        check_hot_path("h.rs", bad, &mut v);
        assert_eq!(v.len(), 1);

        let waived = "let x = q.pop().unwrap(); // audit: allow(unwrap) queue checked non-empty\n";
        let mut v = Vec::new();
        check_hot_path("h.rs", waived, &mut v);
        assert!(v.is_empty());

        let waived_above =
            "// audit: allow(expect) slot is live by refcount\nlet x = s.expect(\"live\");\n";
        let mut v = Vec::new();
        check_hot_path("h.rs", waived_above, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn lossy_cast_detection() {
        assert!(has_lossy_cast("let x = n as u16;"));
        assert!(has_lossy_cast("f(len as u32)"));
        assert!(has_lossy_cast("let y = big as i32 + 1;"));
        assert!(!has_lossy_cast("let x = n as u64;"));
        assert!(!has_lossy_cast("let x = n as usize;"));
        assert!(!has_lossy_cast("let x = n as f64;"));
        assert!(!has_lossy_cast("let x = n as u160;")); // not a real type, but boundary-checked
    }

    #[test]
    fn hot_path_skips_test_module() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { q.pop().unwrap(); }\n}\n";
        let mut v = Vec::new();
        check_hot_path("h.rs", src, &mut v);
        assert!(v.is_empty());
    }

    // ---- rule 5 ----

    #[test]
    fn probe_api_borrow_mut_fires_and_waives() {
        let bad = "self.probe.as_ref().map(|p| p.borrow_mut().net_deliver(&ev));\n";
        let mut v = Vec::new();
        check_probe_api("n.rs", bad, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "probe-api");

        let waived = "// audit: allow(probe) collector drained once at shutdown, cold path\n\
                      let mut c = collector.borrow_mut();\n";
        let mut v = Vec::new();
        check_probe_api("n.rs", waived, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn probe_api_sample_vec_fires() {
        let bad = "lat_samples.push(d.at - gen_time[t]);\n";
        let mut v = Vec::new();
        check_probe_api("h.rs", bad, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Histogram"));
        // Pushing to anything else is fine.
        let ok = "deliveries.push(d);\nheap.push(Reverse((now, c)));\n";
        let mut v = Vec::new();
        check_probe_api("h.rs", ok, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn probe_api_skips_test_module() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { probe.borrow_mut().tick(); }\n}\n";
        let mut v = Vec::new();
        check_probe_api("n.rs", src, &mut v);
        assert!(v.is_empty());
    }

    // ---- rule 6 ----

    #[test]
    fn sweep_api_spawn_fires_and_waives() {
        let bad = "let h = std::thread::spawn(move || simulate(cfg));\n";
        let mut v = Vec::new();
        check_sweep_api("crates/sim/src/engine.rs", bad, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sweep-api");

        let waived = "// audit: allow(sweep) watchdog thread, not sweep work\n\
                      let h = std::thread::spawn(watchdog);\n";
        let mut v = Vec::new();
        check_sweep_api("crates/sim/src/engine.rs", waived, &mut v);
        assert!(v.is_empty(), "{v:?}");

        // Scoped spawns inside the executor's pool are the sanctioned
        // form and the allowed files are exempt wholesale.
        let mut v = Vec::new();
        check_sweep_api(
            "crates/bench/src/executor.rs",
            "std::thread::spawn(f); fs::write(p, c);\n",
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn sweep_api_file_writes_fire_in_bench_only() {
        let bad = "fs::write(&path, runjson::encode(&rec));\n";
        let mut v = Vec::new();
        check_sweep_api("crates/bench/src/bin/fig99.rs", bad, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("publish_atomic"));

        // The same write elsewhere in the workspace is out of scope
        // (exporters etc. own their formats).
        let mut v = Vec::new();
        check_sweep_api("crates/trace/src/export.rs", bad, &mut v);
        assert!(v.is_empty());

        // File::create and OpenOptions are the same hole.
        let mut v = Vec::new();
        check_sweep_api(
            "crates/bench/src/lib.rs",
            "let f = File::create(&p)?;\nlet o = OpenOptions::new();\n",
            &mut v,
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn sweep_api_skips_tests_and_comments() {
        let src = "// never call thread::spawn( here\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { std::thread::spawn(|| {}); fs::write(a, b); }\n\
                   }\n";
        let mut v = Vec::new();
        check_sweep_api("crates/bench/src/lib.rs", src, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- rule 7 ----

    #[test]
    fn report_api_writes_fire_outside_history() {
        let bad = "fs::write(&path, &markdown)?;\nlet f = File::create(&out)?;\n";
        let mut v = Vec::new();
        check_report_api("crates/report/src/render.rs", bad, &mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, "report-api");
        assert!(v[0].message.contains("append_lines"));

        // The designated writer module is exempt wholesale.
        let writer = "let f = OpenOptions::new().append(true).open(p)?;\nfs::write(p, t)?;\n";
        let mut v = Vec::new();
        check_report_api("crates/report/src/history.rs", writer, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn report_api_waiver_and_test_module_are_honored() {
        let waived = "// audit: allow(report) debug dump, not a registry artifact\n\
                      fs::write(&dbg_path, &dump)?;\n";
        let mut v = Vec::new();
        check_report_api("crates/report/src/main.rs", waived, &mut v);
        assert!(v.is_empty(), "{v:?}");

        let test_only = "#[cfg(test)]\nmod tests {\n    fn f() { fs::write(a, b); }\n}\n";
        let mut v = Vec::new();
        check_report_api("crates/report/src/gate.rs", test_only, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- shared machinery ----

    #[test]
    fn comment_splitter_respects_strings() {
        assert_eq!(split_comment("let x = 1; // tail").0, "let x = 1; ");
        assert_eq!(split_comment("let s = \"a // b\";").1, "");
        assert_eq!(split_comment("let s = \"a // b\"; // real").1, "// real");
    }

    #[test]
    fn param_parser_handles_nesting() {
        let p = param_list("pub fn f(a: Vec<(u32, f64)>, tuning_power: f64) -> X {");
        assert_eq!(p.len(), 2);
        assert_eq!(p[1], ("tuning_power".to_string(), "f64".to_string()));
    }
}
