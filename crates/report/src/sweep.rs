//! Reader for the executor's `BENCH_sweep.json` documents.
//!
//! `atac-bench`'s `SweepLog` emits the sweep artifact (schema
//! `atac-bench-sweep-v4`); this module parses it back into typed form
//! for the history registry, the regression gate, and the renderer.
//! Parsing is *forward-compatible*: unknown object members are ignored,
//! so a newer emitter can add fields without orphaning older readers —
//! only a schema outside the `atac-bench-sweep-v*` family is rejected.
//! A v1 document (no `summaries`, no profiles) still parses; it simply
//! yields nothing for the gate to compare, which the CLI reports. A v2
//! document lacks the per-run `netprof` network microscope breakdowns
//! (re-parsed here into [`atac_trace::NetProfile`], the same type the
//! collector fills, so report-side merging reuses the collector's
//! order-independent integer merge). A v3 document lacks the
//! `executor` self-metrics block, so [`SweepDoc::executor`] decodes as
//! `None` there.

use atac_trace::json::{parse, Json};
use atac_trace::{NetProfile, RouterObs, OCC_BUCKETS, RUN_BUCKETS};

/// Figure-level simulated metrics of one run, as carried by a sweep's
/// `summaries` array and by history `run` lines. All of these are
/// deterministic (bit-stable) under the executor's contract, so the
/// gate compares them exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// The run key (timing configuration × benchmark).
    pub key: String,
    /// Benchmark name.
    pub bench: String,
    /// Completion time in cycles.
    pub cycles: u64,
    /// Total instructions executed.
    pub instructions: u64,
    /// Average per-core IPC.
    pub ipc: f64,
    /// Runtime in seconds under the run's clock.
    pub runtime_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Energy-delay product in joule-seconds.
    pub edp_js: f64,
    /// Merged-class message-latency summary.
    pub latency: LatencySummary,
}

/// Quantiles of the merged per-class latency histograms (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Total messages observed.
    pub count: u64,
}

/// A host self-profile: where the simulator's own wall-clock went.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Wall-clock seconds from profiler creation to snapshot.
    pub total_secs: f64,
    /// Fraction of `total_secs` the phase laps account for.
    pub coverage: f64,
    /// `(phase name, seconds)` pairs, emitter order.
    pub phases: Vec<(String, f64)>,
    /// Fraction of the `network` phase the sub-phase laps tile
    /// (`ATAC_NETPROF` runs only; absent on older documents).
    pub net_coverage: Option<f64>,
    /// `(network sub-phase name, seconds)` pairs, emitter order (empty
    /// when the run carried no sub-phase laps).
    pub net_phases: Vec<(String, f64)>,
}

/// One pool-touched run's wall-clock entry from the sweep's `runs`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// The run key.
    pub key: String,
    /// Wall-clock seconds this key took on its worker.
    pub secs: f64,
    /// `"simulated"`, `"cache_hit"`, or `"joined"`.
    pub source: String,
    /// Host self-profile (simulated runs with profiling enabled only).
    pub profile: Option<PhaseProfile>,
    /// Network microscope counters (simulated runs with `ATAC_NETPROF`
    /// enabled only).
    pub netprof: Option<NetProfile>,
}

/// The executor's self-metrics block (schema v4): how the run cache
/// settled the planned keys, and the sweep process's peak resident
/// set. Absent on v3 and older documents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Keys decoded from already-published records.
    pub cache_hits: u64,
    /// Keys the sweep simulated (including torn-record recoveries).
    pub cache_misses: u64,
    /// Keys joined from a concurrent in-process single-flight.
    pub flight_waits: u64,
    /// High-water resident-set bytes (0 where procfs is absent).
    pub peak_rss_bytes: u64,
}

/// The executor's `ATAC_VERIFY` self-check result: one planned key was
/// re-simulated serially and compared byte-for-byte against the pool's
/// published record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepVerify {
    /// The run key that was re-simulated.
    pub key: String,
    /// Whether the serial re-run matched the pooled record exactly.
    pub identical: bool,
}

/// A parsed `BENCH_sweep.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDoc {
    /// The emitter's schema string (`atac-bench-sweep-v*`).
    pub schema: String,
    /// Worker-pool size (`ATAC_JOBS`).
    pub jobs: u64,
    /// `ATAC_CORES` at emit time (`"default"` when unset).
    pub cores: String,
    /// `ATAC_BENCHES` at emit time (`"all"` when unset).
    pub benches: String,
    /// `(phase name, wall seconds)` pairs, emit order.
    pub phases: Vec<(String, f64)>,
    /// Per-run wall-clock entries for the keys the pool touched.
    pub runs: Vec<SweepRun>,
    /// Figure-level metrics for every planned key (empty on v1 docs).
    pub summaries: Vec<RunMetrics>,
    /// All runs' self-profiles merged (absent when none profiled).
    pub self_profile: Option<PhaseProfile>,
    /// Executor self-metrics (absent on pre-v4 documents).
    pub executor: Option<ExecutorStats>,
    /// `ATAC_VERIFY` outcome (absent unless the sweep ran the
    /// parallel-vs-serial self-check).
    pub verify: Option<SweepVerify>,
}

impl SweepDoc {
    /// Wall-clock seconds of the whole sweep: the `total` phase when the
    /// emitter logged one, else the sum of per-run worker seconds.
    pub fn wall_secs(&self) -> f64 {
        self.phases
            .iter()
            .find(|(n, _)| n == "total")
            .map_or_else(|| self.runs.iter().map(|r| r.secs).sum(), |(_, s)| *s)
    }

    /// Wall-clock seconds the pool spent on `key`, if this sweep
    /// actually simulated it (cache hits and joins do no attributable
    /// simulation work, so they carry no host cost).
    pub fn simulated_secs(&self, key: &str) -> Option<f64> {
        self.runs
            .iter()
            .find(|r| r.key == key && r.source == "simulated")
            .map(|r| r.secs)
    }

    /// All runs' network microscope counters merged, if any run carried
    /// one. Merging happens in document (run-key) order over all-integer
    /// counters, so the aggregate is independent of which worker
    /// produced which run.
    pub fn merged_netprof(&self) -> Option<NetProfile> {
        let mut merged = NetProfile::new();
        let mut any = false;
        for run in &self.runs {
            if let Some(np) = &run.netprof {
                merged.merge(np);
                any = true;
            }
        }
        any.then_some(merged)
    }
}

fn get_f64(obj: &Json, key: &str) -> Option<f64> {
    obj.get(key)?.as_f64()
}

fn get_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key)?.as_u64()
}

fn get_str(obj: &Json, key: &str) -> Option<String> {
    Some(obj.get(key)?.as_str()?.to_string())
}

/// Parse a `"name": seconds` object into ordered pairs.
fn parse_phase_map(obj: &Json) -> Option<Vec<(String, f64)>> {
    match obj {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
            .collect(),
        _ => None,
    }
}

/// Parse a profile object (`total_secs`/`coverage`/`phases`, plus the
/// optional `net_coverage`/`net_phases` network sub-phase attribution).
pub(crate) fn parse_profile(obj: &Json) -> Option<PhaseProfile> {
    Some(PhaseProfile {
        total_secs: get_f64(obj, "total_secs")?,
        coverage: get_f64(obj, "coverage")?,
        phases: parse_phase_map(obj.get("phases")?)?,
        net_coverage: get_f64(obj, "net_coverage"),
        net_phases: obj
            .get("net_phases")
            .and_then(parse_phase_map)
            .unwrap_or_default(),
    })
}

/// Parse a `u64` array.
fn parse_u64_arr(obj: &Json) -> Option<Vec<u64>> {
    obj.as_arr()?.iter().map(Json::as_u64).collect()
}

/// Parse a `netprof` object back into the collector's [`NetProfile`].
/// Router rows are the emitter's flat arrays `[flits_routed,
/// credit_stall_cycles, active_cycles, occupancy_sum, hist0..hist5]`.
pub(crate) fn parse_netprof(obj: &Json) -> Option<NetProfile> {
    let mut p = NetProfile::new();
    p.cycles = get_u64(obj, "cycles")?;
    p.ticks_executed = get_u64(obj, "ticks")?;
    p.cycles_skipped = get_u64(obj, "skipped")?;
    p.skip_jumps = get_u64(obj, "jumps")?;
    p.wake_core = get_u64(obj, "wake_core")?;
    p.wake_mem = get_u64(obj, "wake_mem")?;
    // Optional: absent on documents written before the mesh skip-ahead
    // overhaul introduced the network wake cause.
    p.wake_net = get_u64(obj, "wake_net").unwrap_or(0);
    p.epochs_closed = get_u64(obj, "epochs")?;
    p.coalesced_epochs = get_u64(obj, "coalesced")?;
    p.max_epoch_span = get_u64(obj, "max_epoch_span")?;
    // Optional: absent on documents written before the packet-granular
    // wormhole fast path landed its run-length / arbitration counters.
    if let Some(hist) = obj.get("run_hist").and_then(parse_u64_arr) {
        if hist.len() != RUN_BUCKETS {
            return None;
        }
        p.run_len_hist.copy_from_slice(&hist);
    }
    p.bitset_grants = get_u64(obj, "bitset_grants").unwrap_or(0);
    p.scalar_grants = get_u64(obj, "scalar_grants").unwrap_or(0);
    p.hub_unicast_flits = parse_u64_arr(obj.get("hub_unicast")?)?;
    p.hub_broadcast_flits = parse_u64_arr(obj.get("hub_broadcast")?)?;
    p.link_flits = parse_u64_arr(obj.get("links")?)?;
    for row in obj.get("routers")?.as_arr()? {
        let vals = parse_u64_arr(row)?;
        if vals.len() != 4 + OCC_BUCKETS {
            return None;
        }
        let mut r = RouterObs {
            flits_routed: vals[0],
            credit_stall_cycles: vals[1],
            active_cycles: vals[2],
            occupancy_sum: vals[3],
            occupancy_hist: [0; OCC_BUCKETS],
        };
        r.occupancy_hist.copy_from_slice(&vals[4..]);
        p.routers.push(r);
    }
    Some(p)
}

/// Parse an `executor` self-metrics block (schema v4; all counters
/// mandatory once the block is present).
pub(crate) fn parse_executor(obj: &Json) -> Option<ExecutorStats> {
    Some(ExecutorStats {
        cache_hits: get_u64(obj, "cache_hits")?,
        cache_misses: get_u64(obj, "cache_misses")?,
        flight_waits: get_u64(obj, "flight_waits")?,
        peak_rss_bytes: get_u64(obj, "peak_rss_bytes")?,
    })
}

/// Parse one `summaries` element (shared with history `run` lines,
/// which carry the same member names).
pub(crate) fn parse_metrics(obj: &Json) -> Option<RunMetrics> {
    let lat = obj.get("latency")?;
    Some(RunMetrics {
        key: get_str(obj, "key")?,
        bench: get_str(obj, "bench")?,
        cycles: get_u64(obj, "cycles")?,
        instructions: get_u64(obj, "instructions")?,
        ipc: get_f64(obj, "ipc")?,
        runtime_s: get_f64(obj, "runtime_s")?,
        energy_j: get_f64(obj, "energy_j")?,
        edp_js: get_f64(obj, "edp_js")?,
        latency: LatencySummary {
            p50: get_u64(lat, "p50")?,
            p95: get_u64(lat, "p95")?,
            p99: get_u64(lat, "p99")?,
            max: get_u64(lat, "max")?,
            count: get_u64(lat, "count")?,
        },
    })
}

/// Parse a `BENCH_sweep.json` document. Returns a message naming the
/// first structural problem on failure.
pub fn parse_sweep(text: &str) -> Result<SweepDoc, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let schema = get_str(&doc, "schema").ok_or("sweep document has no `schema` string")?;
    if !schema.starts_with("atac-bench-sweep-v") {
        return Err(format!("unrecognized sweep schema `{schema}`"));
    }
    let mut runs = Vec::new();
    if let Some(arr) = doc.get("runs").and_then(Json::as_arr) {
        for (i, r) in arr.iter().enumerate() {
            runs.push(SweepRun {
                key: get_str(r, "key").ok_or(format!("runs[{i}] has no `key`"))?,
                secs: get_f64(r, "secs").ok_or(format!("runs[{i}] has no `secs`"))?,
                source: get_str(r, "source").ok_or(format!("runs[{i}] has no `source`"))?,
                profile: r.get("profile").and_then(parse_profile),
                netprof: r.get("netprof").and_then(parse_netprof),
            });
        }
    }
    let mut summaries = Vec::new();
    if let Some(arr) = doc.get("summaries").and_then(Json::as_arr) {
        for (i, s) in arr.iter().enumerate() {
            summaries.push(parse_metrics(s).ok_or(format!("summaries[{i}] is malformed"))?);
        }
    }
    Ok(SweepDoc {
        schema,
        jobs: get_u64(&doc, "jobs").ok_or("sweep document has no `jobs`")?,
        cores: get_str(&doc, "cores").unwrap_or_else(|| "default".into()),
        benches: get_str(&doc, "benches").unwrap_or_else(|| "all".into()),
        phases: doc
            .get("phases")
            .and_then(parse_phase_map)
            .unwrap_or_default(),
        runs,
        summaries,
        self_profile: doc.get("self_profile").and_then(parse_profile),
        executor: doc.get("executor").and_then(parse_executor),
        verify: doc.get("verify").and_then(|v| {
            Some(SweepVerify {
                key: get_str(v, "key")?,
                identical: matches!(v.get("identical"), Some(Json::Bool(true))),
            })
        }),
    })
}

/// A two-run v4 sweep fixture shared by this crate's tests. The
/// simulated run carries the full network microscope: sub-phase
/// attribution in its profile and the `netprof` counter block (two
/// routers, one cluster hub); the document-level `executor` block
/// carries the cache-outcome and RSS self-metrics.
#[cfg(test)]
pub(crate) const SAMPLE: &str = r#"{
  "schema": "atac-bench-sweep-v4",
  "jobs": 4,
  "cores": "64",
  "benches": "radix,barnes",
  "phases": {
    "warm": 10.5,
    "render": 2.0,
    "total": 12.75
  },
  "runs": [
    {"key": "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix", "secs": 5.5, "source": "simulated", "profile": {"total_secs": 5.5, "coverage": 0.97, "phases": {"replay": 2.0, "network": 2.5, "coherence": 0.8}, "net_coverage": 0.99, "net_phases": {"route_compute": 0.9, "switch_arb": 0.8, "queue_ops": 0.7}}, "netprof": {"cycles": 500000, "ticks": 300000, "skipped": 200000, "jumps": 150, "wake_core": 120, "wake_mem": 30, "epochs": 10, "coalesced": 3, "max_epoch_span": 90000, "run_hist": [150, 60, 20, 0, 0, 0], "bitset_grants": 220, "scalar_grants": 10, "hub_unicast": [400], "hub_broadcast": [80], "links": [120, 0, 40, 0, 0, 60, 0, 20], "routers": [[200, 12, 90000, 180000, 40000, 30000, 15000, 4000, 900, 100], [120, 2, 45000, 50000, 30000, 10000, 4000, 900, 100, 0]]}},
    {"key": "8x4|emesh-pure|flit64|buf4|ackwise4|radix", "secs": 0.01, "source": "cache_hit"}
  ],
  "summaries": [
    {"key": "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix", "bench": "radix", "cycles": 500000, "instructions": 1000000, "ipc": 0.3125, "runtime_s": 0.0005, "energy_j": 0.125, "edp_js": 6.25e-5, "latency": {"p50": 15, "p95": 63, "p99": 127, "max": 90, "count": 40000}},
    {"key": "8x4|emesh-pure|flit64|buf4|ackwise4|radix", "bench": "radix", "cycles": 800000, "instructions": 1000000, "ipc": 0.2, "runtime_s": 0.0008, "energy_j": 0.25, "edp_js": 2.0e-4, "latency": {"p50": 31, "p95": 127, "p99": 255, "max": 300, "count": 40000}}
  ],
  "self_profile": {"total_secs": 5.5, "coverage": 0.97, "phases": {"replay": 2.0, "network": 2.5, "coherence": 0.8}, "net_coverage": 0.99, "net_phases": {"route_compute": 0.9, "switch_arb": 0.8, "queue_ops": 0.7}},
  "executor": {"cache_hits": 1, "cache_misses": 1, "flight_waits": 0, "peak_rss_bytes": 104857600},
  "verify": {"key": "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix", "identical": true}
}"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_v4_document() {
        let doc = parse_sweep(SAMPLE).expect("valid sweep");
        assert_eq!(doc.jobs, 4);
        let exec = doc.executor.expect("v4 carries executor self-metrics");
        assert_eq!(exec.cache_hits, 1);
        assert_eq!(exec.cache_misses, 1);
        assert_eq!(exec.flight_waits, 0);
        assert_eq!(exec.peak_rss_bytes, 104_857_600);
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.summaries.len(), 2);
        assert_eq!(doc.summaries[0].cycles, 500_000);
        assert_eq!(doc.summaries[0].latency.p95, 63);
        assert_eq!(doc.wall_secs(), 12.75);
        let profile = doc.runs[0].profile.as_ref().expect("profiled run");
        assert_eq!(profile.phases.len(), 3);
        assert_eq!(profile.net_coverage, Some(0.99));
        assert_eq!(profile.net_phases.len(), 3);
        assert_eq!(profile.net_phases[0], ("route_compute".to_string(), 0.9));
        let np = doc.runs[0].netprof.as_ref().expect("observed run");
        assert_eq!(np.cycles, 500_000);
        assert_eq!(np.ticks_executed + np.cycles_skipped, np.cycles);
        assert_eq!(np.routers.len(), 2);
        assert_eq!(np.routers[0].flits_routed, 200);
        assert_eq!(np.routers[0].occupancy_hist[0], 40_000);
        assert_eq!(np.total_flits_routed(), 320);
        assert_eq!(np.total_credit_stalls(), 14);
        // Fast-path counters round-trip through the v4 netprof block.
        assert_eq!(np.run_len_hist, [150, 60, 20, 0, 0, 0]);
        assert_eq!(np.total_grants(), 230);
        assert_eq!(np.bitset_grants, 220);
        assert_eq!(np.scalar_grants, 10);
        assert_eq!(np.link_flits.len(), 8);
        assert!(doc.runs[1].netprof.is_none(), "cache hit carries none");
        // The document-level merge is just the one profiled run here.
        let merged = doc.merged_netprof().expect("one run observed");
        assert_eq!(merged.total_flits_routed(), 320);
        assert_eq!(merged.hub_unicast_flits, vec![400]);
        assert!(doc.self_profile.is_some());
        let verify = doc.verify.as_ref().expect("verify outcome");
        assert!(verify.identical);
        assert!(verify.key.ends_with("|radix"));
        assert_eq!(
            doc.simulated_secs("8x4|atac[distance-15]|flit64|buf4|ackwise4|radix"),
            Some(5.5)
        );
        // Cache hits never report simulated host seconds.
        assert_eq!(
            doc.simulated_secs("8x4|emesh-pure|flit64|buf4|ackwise4|radix"),
            None
        );
    }

    #[test]
    fn netprof_fast_path_counters_optional_for_older_documents() {
        // Sweeps written before the packet-granular fast path carry no
        // run_hist / grant-split members; they parse to zeros.
        let old = r#"{"schema": "atac-bench-sweep-v4", "jobs": 1, "phases": {"total": 1.0},
          "runs": [{"key": "k", "secs": 1.0, "source": "simulated",
            "netprof": {"cycles": 4, "ticks": 4, "skipped": 0, "jumps": 0,
              "wake_core": 0, "wake_mem": 0, "epochs": 1, "coalesced": 0,
              "max_epoch_span": 4, "hub_unicast": [], "hub_broadcast": [],
              "links": [], "routers": []}}]}"#;
        let doc = parse_sweep(old).expect("pre-fast-path netprof parses");
        let np = doc.runs[0].netprof.as_ref().expect("netprof block");
        assert_eq!(np.total_grants(), 0);
        assert_eq!(np.bitset_grants, 0);
        assert_eq!(np.scalar_grants, 0);
    }

    #[test]
    fn v1_documents_parse_with_empty_summaries() {
        let v1 = r#"{"schema": "atac-bench-sweep-v1", "jobs": 2, "phases": {"warm": 1.0},
                     "runs": [{"key": "k", "secs": 1.0, "source": "simulated"}]}"#;
        let doc = parse_sweep(v1).expect("v1 parses");
        assert!(doc.summaries.is_empty());
        assert!(doc.self_profile.is_none());
        assert_eq!(
            doc.wall_secs(),
            1.0,
            "no total phase: falls back to run secs"
        );
    }

    #[test]
    fn v3_documents_parse_without_executor_block() {
        let v3 = r#"{"schema": "atac-bench-sweep-v3", "jobs": 2, "phases": {"warm": 1.0},
                     "runs": [{"key": "k", "secs": 1.0, "source": "simulated"}]}"#;
        let doc = parse_sweep(v3).expect("v3 parses");
        assert_eq!(doc.executor, None, "pre-v4: no self-metrics, not an error");
        // A malformed executor block (missing counters) decodes as
        // absent rather than failing the whole document.
        let partial = r#"{"schema": "atac-bench-sweep-v4", "jobs": 1,
                          "executor": {"cache_hits": 3}}"#;
        let doc = parse_sweep(partial).expect("document still parses");
        assert_eq!(doc.executor, None);
    }

    #[test]
    fn unknown_members_are_ignored_but_foreign_schemas_are_not() {
        let future = r#"{"schema": "atac-bench-sweep-v5", "jobs": 1, "new_field": [1, 2],
                         "runs": [{"key": "k", "secs": 0.5, "source": "simulated", "extra": true}]}"#;
        let doc = parse_sweep(future).expect("future minor version parses");
        assert_eq!(doc.runs.len(), 1);
        assert!(parse_sweep(r#"{"schema": "something-else", "jobs": 1}"#).is_err());
        assert!(parse_sweep("not json").is_err());
        assert!(
            parse_sweep(r#"{"jobs": 1}"#).is_err(),
            "schema is mandatory"
        );
    }
}
