//! The regression gate: does the current sweep regress the baseline?
//!
//! Two classes of metric, two disciplines:
//!
//! * **Simulated metrics** (cycles, instructions, runtime, energy, EDP,
//!   latency quantiles) are deterministic under the executor's
//!   bit-stability contract, so they gate by *exact* comparison against
//!   the latest baseline record per key. A worse value is a regression;
//!   a better one is an improvement (reported, passing by default); an
//!   instruction/message-count change is drift in the workload itself
//!   and always counts as a regression — intentional changes re-seed
//!   the baseline.
//! * **Host seconds** are noisy (machine, load, cache state), so they
//!   gate against the *median* of every baseline sample for the key
//!   with a MAD-scaled tolerance plus a relative floor — a lone
//!   baseline sample (MAD = 0) still admits normal cross-machine
//!   variance. Host checks warn by default and fail only under
//!   `strict_host` (CI machines differ from the machine that seeded
//!   the baseline).
//!
//! The verdict table names every offending key, and [`GateReport::passed`]
//! drives the CLI's exit code.

use std::fmt::Write as _;

use crate::history::History;
use crate::sweep::{RunMetrics, SweepDoc};

/// Gate tolerances and strictness knobs.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Host-seconds tolerance in normal-consistent MADs above the
    /// baseline median.
    pub host_mads: f64,
    /// Relative tolerance floor on host seconds (fraction of the
    /// median), covering single-sample baselines.
    pub host_rel_floor: f64,
    /// Absolute host tolerance floor in seconds, covering sub-second
    /// runs whose relative floor would be microscopic.
    pub host_abs_floor: f64,
    /// Fail (not just warn) on host-time regressions.
    pub strict_host: bool,
    /// Fail when a baseline key is missing from the current sweep.
    pub require_all: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            host_mads: 5.0,
            host_rel_floor: 0.35,
            host_abs_floor: 2.0,
            strict_host: false,
            require_all: false,
        }
    }
}

/// One exact-metric mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name (stable vocabulary: `cycles`, `energy_j`, …).
    pub metric: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// Whether the change is in the regression direction.
    pub worse: bool,
}

impl Delta {
    /// Signed relative change in percent (`+` means increased).
    pub fn pct(&self) -> f64 {
        if self.base == 0.0 {
            if self.cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.cur - self.base) / self.base * 100.0
        }
    }
}

/// The host-seconds check for one key.
#[derive(Debug, Clone, PartialEq)]
pub struct HostCheck {
    /// Median of the baseline samples.
    pub median: f64,
    /// Normal-consistent MAD (1.4826 × raw MAD) of the samples.
    pub mad: f64,
    /// Number of baseline samples behind the median.
    pub samples: usize,
    /// Current sweep's host seconds for the key.
    pub cur: f64,
    /// The upper bound the current value was held to.
    pub bound: f64,
}

impl HostCheck {
    /// Did the current value exceed the noise bound?
    pub fn regressed(&self) -> bool {
        self.cur > self.bound
    }
}

/// Per-key verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Bit-identical simulated metrics, host within bounds.
    Ok,
    /// Simulated metrics changed, all in the improving direction.
    Improved,
    /// At least one simulated metric moved in the regression direction.
    Regressed,
    /// Simulated metrics fine but host seconds exceeded the noise bound.
    HostSlow,
    /// Key exists in the current sweep but not in the baseline.
    New,
    /// Key exists in the baseline but the current sweep never ran it.
    Missing,
}

impl Verdict {
    /// Fixed-width display label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::HostSlow => "host-slow",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        }
    }
}

/// Everything the gate concluded about one key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyReport {
    /// The run key.
    pub key: String,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Exact-metric mismatches (empty when `Ok`/`New`/`Missing`).
    pub deltas: Vec<Delta>,
    /// Host-seconds check, when both sides had simulated samples.
    pub host: Option<HostCheck>,
}

/// The whole gate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-key reports, baseline order then new keys.
    pub keys: Vec<KeyReport>,
    /// Sweep-level network-phase perf guard: the merged self-profile's
    /// `network` host seconds against the baseline sweeps' recorded
    /// samples, under the same MAD noise bounds as the per-key host
    /// checks. `None` when either side lacks netprof host data.
    /// Advisory unless `strict_host`.
    pub net_phase: Option<HostCheck>,
}

/// The exact-comparison metrics: `(name, extractor, any_change_is_worse)`.
/// Metrics with a regression *direction* (third field `false`) count as
/// worse only when they increase; counters whose every change is drift
/// (third field `true`) regress in either direction.
type Extract = fn(&RunMetrics) -> f64;
const EXACT_METRICS: &[(&str, Extract, bool)] = &[
    ("cycles", |m| m.cycles as f64, false),
    ("instructions", |m| m.instructions as f64, true),
    ("runtime_s", |m| m.runtime_s, false),
    ("energy_j", |m| m.energy_j, false),
    ("edp_js", |m| m.edp_js, false),
    ("latency_p50", |m| m.latency.p50 as f64, false),
    ("latency_p95", |m| m.latency.p95 as f64, false),
    ("latency_p99", |m| m.latency.p99 as f64, false),
    ("latency_max", |m| m.latency.max as f64, false),
    ("latency_count", |m| m.latency.count as f64, true),
];

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        f64::midpoint(sorted[n / 2 - 1], sorted[n / 2])
    }
}

/// Median and normal-consistent MAD of a host-seconds sample set.
pub fn median_mad(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|s| (s - med).abs()).collect();
    dev.sort_by(f64::total_cmp);
    (med, 1.4826 * median(&dev))
}

fn exact_deltas(base: &RunMetrics, cur: &RunMetrics) -> Vec<Delta> {
    EXACT_METRICS
        .iter()
        .filter_map(|&(metric, extract, drift)| {
            let (b, c) = (extract(base), extract(cur));
            // Exact comparison on purpose: these values are emitted and
            // re-parsed via round-trip-exact formatting, and the
            // simulator's determinism contract makes them bit-stable.
            (b != c).then_some(Delta {
                metric,
                base: b,
                cur: c,
                worse: drift || c > b,
            })
        })
        .collect()
}

/// Compare the current sweep against the baseline history.
pub fn compare(baseline: &History, current: &SweepDoc, cfg: &GateConfig) -> GateReport {
    let latest = baseline.latest_runs();
    let mut keys = Vec::new();
    let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();

    for base in &latest {
        let key = base.metrics.key.as_str();
        seen.insert(key);
        let Some(cur) = current.summaries.iter().find(|s| s.key == key) else {
            keys.push(KeyReport {
                key: key.to_string(),
                verdict: Verdict::Missing,
                deltas: Vec::new(),
                host: None,
            });
            continue;
        };
        let deltas = exact_deltas(&base.metrics, cur);
        let host = current.simulated_secs(key).and_then(|cur_secs| {
            let samples = baseline.host_samples(key);
            if samples.is_empty() {
                return None;
            }
            let (med, mad) = median_mad(&samples);
            let tolerance = (cfg.host_mads * mad)
                .max(cfg.host_rel_floor * med)
                .max(cfg.host_abs_floor);
            Some(HostCheck {
                median: med,
                mad,
                samples: samples.len(),
                cur: cur_secs,
                bound: med + tolerance,
            })
        });
        let verdict = if deltas.iter().any(|d| d.worse) {
            Verdict::Regressed
        } else if !deltas.is_empty() {
            Verdict::Improved
        } else if host.as_ref().is_some_and(HostCheck::regressed) {
            Verdict::HostSlow
        } else {
            Verdict::Ok
        };
        keys.push(KeyReport {
            key: key.to_string(),
            verdict,
            deltas,
            host,
        });
    }

    for cur in &current.summaries {
        if !seen.contains(cur.key.as_str()) {
            keys.push(KeyReport {
                key: cur.key.clone(),
                verdict: Verdict::New,
                deltas: Vec::new(),
                host: None,
            });
        }
    }

    // Sweep-level network-phase guard: trend the host seconds the merged
    // self-profile attributes to the `network` phase against the samples
    // recorded on earlier sweeps' netprof history lines.
    let net_phase = current
        .self_profile
        .as_ref()
        .and_then(|p| {
            p.phases
                .iter()
                .find(|(name, _)| name == "network")
                .map(|&(_, secs)| secs)
        })
        .and_then(|cur_secs| {
            let samples: Vec<f64> = baseline.netprofs().filter_map(|n| n.net_secs).collect();
            if samples.is_empty() {
                return None;
            }
            let (med, mad) = median_mad(&samples);
            let tolerance = (cfg.host_mads * mad)
                .max(cfg.host_rel_floor * med)
                .max(cfg.host_abs_floor);
            Some(HostCheck {
                median: med,
                mad,
                samples: samples.len(),
                cur: cur_secs,
                bound: med + tolerance,
            })
        });

    GateReport { keys, net_phase }
}

impl GateReport {
    /// Keys whose verdict fails the gate under `cfg`.
    pub fn failures(&self, cfg: &GateConfig) -> Vec<&KeyReport> {
        self.keys
            .iter()
            .filter(|k| match k.verdict {
                Verdict::Regressed => true,
                Verdict::HostSlow => cfg.strict_host,
                Verdict::Missing => cfg.require_all,
                Verdict::Ok | Verdict::Improved | Verdict::New => false,
            })
            .collect()
    }

    /// Does the gate pass under `cfg`? The sweep-level network-phase
    /// guard is advisory (warn-only) unless `strict_host`.
    pub fn passed(&self, cfg: &GateConfig) -> bool {
        self.failures(cfg).is_empty()
            && !(cfg.strict_host && self.net_phase.as_ref().is_some_and(HostCheck::regressed))
    }

    /// Count of keys with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.keys.iter().filter(|k| k.verdict == verdict).count()
    }

    /// The per-key verdict table the CLI prints: one line per key, with
    /// every offending metric named inline.
    pub fn table(&self) -> String {
        let key_w = self
            .keys
            .iter()
            .map(|k| k.key.len())
            .chain(std::iter::once(3))
            .max()
            .unwrap_or(3);
        let mut out = String::new();
        let _ = writeln!(out, "{:key_w$}  {:9}  detail", "key", "verdict");
        for k in &self.keys {
            let mut detail = String::new();
            for d in &k.deltas {
                let _ = write!(
                    detail,
                    "{}{}: {} -> {} ({:+.2}%)",
                    if detail.is_empty() { "" } else { "; " },
                    d.metric,
                    d.base,
                    d.cur,
                    d.pct()
                );
            }
            if let Some(h) = &k.host {
                let _ = write!(
                    detail,
                    "{}host {:.2}s vs median {:.2}s (bound {:.2}s, n={})",
                    if detail.is_empty() { "" } else { "; " },
                    h.cur,
                    h.median,
                    h.bound,
                    h.samples
                );
            }
            let _ = writeln!(out, "{:key_w$}  {:9}  {detail}", k.key, k.verdict.label());
        }
        if let Some(h) = &self.net_phase {
            let _ = writeln!(
                out,
                "network phase: {:.2}s vs median {:.2}s (bound {:.2}s, n={}){}",
                h.cur,
                h.median,
                h.bound,
                h.samples,
                if h.regressed() {
                    "  ** exceeds noise bound **"
                } else {
                    ""
                }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{lines_from_sweep, History};
    use crate::sweep::parse_sweep;

    fn baseline() -> (History, SweepDoc) {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let h = History {
            lines: lines_from_sweep(&doc, "base-sha"),
            skipped: 0,
        };
        (h, doc)
    }

    #[test]
    fn identical_sweep_passes() {
        let (h, doc) = baseline();
        let cfg = GateConfig::default();
        let report = compare(&h, &doc, &cfg);
        assert!(report.passed(&cfg), "{}", report.table());
        assert_eq!(report.count(Verdict::Ok), 2);
        assert!(report.keys.iter().all(|k| k.deltas.is_empty()));
    }

    #[test]
    fn ten_percent_cycle_regression_fails_and_names_the_key() {
        let (h, mut doc) = baseline();
        let cfg = GateConfig::default();
        let key = doc.summaries[0].key.clone();
        doc.summaries[0].cycles = doc.summaries[0].cycles * 11 / 10;
        let report = compare(&h, &doc, &cfg);
        assert!(!report.passed(&cfg));
        let failures = report.failures(&cfg);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].key, key);
        assert_eq!(failures[0].verdict, Verdict::Regressed);
        let delta = &failures[0].deltas[0];
        assert_eq!(delta.metric, "cycles");
        assert!((delta.pct() - 10.0).abs() < 0.01);
        assert!(report.table().contains(&key), "table names the key");
        assert!(report.table().contains("REGRESSED"));
    }

    #[test]
    fn improvement_passes_but_is_reported() {
        let (h, mut doc) = baseline();
        let cfg = GateConfig::default();
        doc.summaries[0].cycles -= 50_000;
        doc.summaries[0].edp_js *= 0.9;
        let report = compare(&h, &doc, &cfg);
        assert!(report.passed(&cfg));
        assert_eq!(report.count(Verdict::Improved), 1);
    }

    #[test]
    fn instruction_drift_regresses_in_either_direction() {
        let (h, mut doc) = baseline();
        let cfg = GateConfig::default();
        doc.summaries[0].instructions -= 1; // "better" is still drift
        let report = compare(&h, &doc, &cfg);
        assert!(!report.passed(&cfg));
        assert_eq!(report.failures(&cfg)[0].deltas[0].metric, "instructions");
    }

    #[test]
    fn host_noise_warns_by_default_and_fails_under_strict() {
        let (h, mut doc) = baseline();
        // Blow way past median + max(5 MADs, 35%, 2s) on the simulated key.
        doc.runs[0].secs = 1000.0;
        let lax = GateConfig::default();
        let report = compare(&h, &doc, &lax);
        assert_eq!(report.count(Verdict::HostSlow), 1);
        assert!(report.passed(&lax), "host noise is advisory by default");
        let strict = GateConfig {
            strict_host: true,
            ..GateConfig::default()
        };
        let report = compare(&h, &doc, &strict);
        assert!(!report.passed(&strict));
        // Within the bound: fine even under strict.
        doc.runs[0].secs = 6.0; // median 5.5 + floor 2.0 = 7.5 bound
        let report = compare(&h, &doc, &strict);
        assert!(report.passed(&strict), "{}", report.table());
    }

    #[test]
    fn new_and_missing_keys() {
        let (h, mut doc) = baseline();
        let cfg = GateConfig::default();
        doc.summaries[0].key = "8x4|brand-new|flit64|buf4|ackwise4|radix".into();
        let report = compare(&h, &doc, &cfg);
        assert_eq!(report.count(Verdict::New), 1);
        assert_eq!(report.count(Verdict::Missing), 1);
        assert!(report.passed(&cfg), "coverage drift warns by default");
        let strict = GateConfig {
            require_all: true,
            ..GateConfig::default()
        };
        assert!(!report.passed(&strict));
    }

    #[test]
    fn network_phase_guard_warns_on_regression_and_fails_under_strict() {
        let (h, mut doc) = baseline();
        let lax = GateConfig::default();
        // Identical sweep: the guard is armed (fixture carries a
        // `network` phase) and within bounds.
        let report = compare(&h, &doc, &lax);
        let check = report.net_phase.as_ref().expect("guard armed");
        assert!(!check.regressed(), "{}", report.table());
        assert!((check.median - 2.5).abs() < 1e-12);
        // Blow past median + max(5 MADs, 35%, 2s) on the network phase.
        if let Some(p) = doc.self_profile.as_mut() {
            for (name, secs) in &mut p.phases {
                if name == "network" {
                    *secs = 100.0;
                }
            }
        }
        let report = compare(&h, &doc, &lax);
        assert!(report.net_phase.as_ref().is_some_and(HostCheck::regressed));
        assert!(report.passed(&lax), "advisory by default");
        assert!(report.table().contains("exceeds noise bound"));
        let strict = GateConfig {
            strict_host: true,
            ..GateConfig::default()
        };
        assert!(!report.passed(&strict));
        // A baseline with no netprof host samples disarms the guard.
        let bare = History::default();
        let report = compare(&bare, &doc, &lax);
        assert_eq!(report.net_phase, None);
    }

    #[test]
    fn median_mad_is_robust() {
        let (med, mad) = median_mad(&[1.0, 1.1, 0.9, 1.05, 50.0]);
        assert!((med - 1.05).abs() < 1e-12, "outlier does not move median");
        assert!(mad < 0.2, "outlier does not inflate MAD: {mad}");
        let (med1, mad1) = median_mad(&[3.0]);
        assert_eq!((med1, mad1), (3.0, 0.0));
        assert_eq!(median_mad(&[]), (0.0, 0.0));
        let (med2, _) = median_mad(&[2.0, 4.0]);
        assert_eq!(med2, 3.0);
    }
}
