//! # atac-report — the run-history observatory
//!
//! The bench harness emits point-in-time artifacts (`BENCH_sweep.json`
//! per sweep); this crate turns them into *decisions across PRs*:
//!
//! * [`history`] — the append-only run-history registry
//!   (`BENCH_history.jsonl`): every sweep's per-key figure-level
//!   metrics plus host self-profiles, keyed by git SHA + run key, with
//!   a versioned, forward-compatible line schema.
//! * [`gate`] — the regression detector: exact-match comparison for
//!   deterministic simulated metrics (the executor's bit-stability
//!   contract makes *any* deviation meaningful) and median/MAD
//!   noise-aware bounds for host wall-clock. `atac-report gate` exits
//!   nonzero naming the offending keys — the CI tripwire.
//! * [`render`] — `BENCH_report.md`: delta tables vs baseline,
//!   unicode-sparkline metric history, top movers, and the host
//!   self-profile breakdown ("where do the simulator's seconds go").
//! * [`sweep`] — the reader for the executor's `BENCH_sweep.json`
//!   (schema `atac-bench-sweep-v*`).
//!
//! The crate depends only on `atac-trace` (for the in-tree JSON
//! reader): it consumes the harness's *artifacts*, not its types, so
//! the gate can compare sweeps produced by any past or future version
//! that speaks the schema family.

pub mod gate;
pub mod history;
pub mod render;
pub mod sweep;

pub use gate::{compare, GateConfig, GateReport, Verdict};
pub use history::{
    append_lines, encode_line, lines_from_sweep, read_history, write_text, FlightEntry, History,
    HistoryLine, NetProfEntry, RunEntry, SweepEntry, HISTORY_SCHEMA,
};
pub use render::{render, render_flight, render_netmap, sparkline};
pub use sweep::{parse_sweep, ExecutorStats, LatencySummary, PhaseProfile, RunMetrics, SweepDoc};
