//! The run-history registry: `BENCH_history.jsonl`.
//!
//! One line per record, append-only, so the file is a merge-friendly
//! trajectory of every sweep a branch has run. Four kinds of line:
//!
//! * `kind: "sweep"` — one per recorded sweep: worker count, wall
//!   seconds, and the merged host self-profile.
//! * `kind: "run"` — one per planned run key: the figure-level
//!   simulated metrics ([`RunMetrics`]) plus the host seconds the sweep
//!   spent actually simulating that key (absent on cache hits).
//! * `kind: "netprof"` — at most one per recorded sweep (only when the
//!   sweep ran under `ATAC_NETPROF`): the merged network-microscope
//!   aggregate — flits routed, credit stalls, skip-ahead efficacy,
//!   epoch coalescing, and the network sub-phase coverage fraction.
//! * `kind: "flight"` — at most one per recorded sweep (schema-v4
//!   sweeps only): the executor's flight-recorder self-metrics — cache
//!   hits/misses, single-flight waits, and the peak RSS high-water
//!   mark. Host-side observability; never gate-compared.
//!
//! Every line carries `schema` (`atac-report-history-v1`) and the git
//! SHA of the tree that produced it; records are keyed by
//! `(sha, run_key)`. Decoding is *forward-compatible*: unknown members
//! are ignored and unknown kinds are skipped (counted, not fatal), so a
//! future writer can extend the schema without orphaning the baseline
//! this repository commits. A line whose schema is outside the
//! `atac-report-history-v*` family, or whose required members are
//! missing, is malformed — the reader reports it rather than silently
//! dropping history.
//!
//! This module is also the crate's only file-writing surface
//! ([`append_lines`], [`write_text`]) — audit rule 7 (`report-api`)
//! keeps every history/report write behind it.

use std::io::Write;
use std::path::Path;

use atac_trace::json::{parse, Json};

use crate::sweep::{parse_metrics, parse_profile, PhaseProfile, RunMetrics, SweepDoc};

/// The schema string this writer stamps on every line.
pub const HISTORY_SCHEMA: &str = "atac-report-history-v1";

/// The schema family the reader accepts.
pub const HISTORY_SCHEMA_PREFIX: &str = "atac-report-history-v";

/// One sweep-level history record.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    /// Git SHA of the tree that ran the sweep.
    pub sha: String,
    /// Worker-pool size.
    pub jobs: u64,
    /// Whole-sweep wall-clock seconds.
    pub wall_secs: f64,
    /// Number of planned run keys (summaries recorded).
    pub planned: u64,
    /// Number of keys this sweep actually simulated.
    pub simulated: u64,
    /// All simulated runs' host self-profiles merged.
    pub self_profile: Option<PhaseProfile>,
}

/// One per-run history record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEntry {
    /// Git SHA of the tree that produced the metrics.
    pub sha: String,
    /// The deterministic figure-level metrics.
    pub metrics: RunMetrics,
    /// Host wall-clock seconds spent simulating this key in the
    /// recording sweep (`None` when the record came from cache).
    pub host_secs: Option<f64>,
}

/// One sweep's merged network-microscope aggregate (`ATAC_NETPROF`
/// sweeps only). Deliberately *small*: the full per-router/link
/// breakdown stays in `BENCH_sweep.json`; history tracks only the
/// sweep-level totals a trajectory can be drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct NetProfEntry {
    /// Git SHA of the tree that ran the sweep.
    pub sha: String,
    /// Crossbar traversals across all routers and runs.
    pub flits_routed: u64,
    /// Credit-stall cycles across all routers and runs.
    pub credit_stalls: u64,
    /// Cycles the engines stepped one-by-one.
    pub ticks: u64,
    /// Cycles the engines skipped over.
    pub skipped: u64,
    /// Skip-ahead jumps taken.
    pub jumps: u64,
    /// Jumps woken by a scheduled core event.
    pub wake_core: u64,
    /// Jumps woken by a memory-controller event.
    pub wake_mem: u64,
    /// Jumps woken by the network's own event horizon (absent — 0 — on
    /// lines written before the mesh skip-ahead overhaul).
    pub wake_net: u64,
    /// Epoch samples a skip-ahead jump coalesced.
    pub coalesced: u64,
    /// Longest single epoch span in cycles.
    pub max_epoch_span: u64,
    /// Fraction of the host `network` phase the sub-phase laps tile
    /// (absent when host profiling was off).
    pub net_coverage: Option<f64>,
    /// Host seconds the sweep's merged self-profile attributes to the
    /// `network` phase — the perf-guard sample the CI sweep trends
    /// (absent when host profiling was off or on older lines).
    pub net_secs: Option<f64>,
}

/// One sweep's executor flight-recorder self-metrics (schema-v4 sweeps
/// only). Like [`NetProfEntry`] this is deliberately small: the full
/// span-level journal stays in `BENCH_flight.jsonl`; history tracks
/// only the counters a cache-efficiency trajectory can be drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Git SHA of the tree that ran the sweep.
    pub sha: String,
    /// Keys satisfied from the run cache (prescan or re-read).
    pub cache_hits: u64,
    /// Keys actually simulated.
    pub cache_misses: u64,
    /// Keys that waited on another worker's in-flight simulation.
    pub flight_waits: u64,
    /// Process RSS high-water mark in bytes over the sweep.
    pub peak_rss_bytes: u64,
}

/// A decoded history line.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryLine {
    /// A sweep-level record.
    Sweep(SweepEntry),
    /// A per-run record.
    Run(RunEntry),
    /// A sweep-level network-microscope aggregate.
    NetProf(NetProfEntry),
    /// A sweep-level executor flight-recorder aggregate.
    Flight(FlightEntry),
}

/// A parsed history file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// Decoded lines, file order (append order = chronological).
    pub lines: Vec<HistoryLine>,
    /// Lines with a valid schema but an unknown `kind` (written by a
    /// newer version; skipped, not fatal).
    pub skipped: usize,
}

impl History {
    /// Per-run records, chronological.
    pub fn runs(&self) -> impl Iterator<Item = &RunEntry> {
        self.lines.iter().filter_map(|l| match l {
            HistoryLine::Run(r) => Some(r),
            _ => None,
        })
    }

    /// Sweep records, chronological.
    pub fn sweeps(&self) -> impl Iterator<Item = &SweepEntry> {
        self.lines.iter().filter_map(|l| match l {
            HistoryLine::Sweep(s) => Some(s),
            _ => None,
        })
    }

    /// Network-microscope aggregates, chronological.
    pub fn netprofs(&self) -> impl Iterator<Item = &NetProfEntry> {
        self.lines.iter().filter_map(|l| match l {
            HistoryLine::NetProf(n) => Some(n),
            _ => None,
        })
    }

    /// Executor flight-recorder aggregates, chronological.
    pub fn flights(&self) -> impl Iterator<Item = &FlightEntry> {
        self.lines.iter().filter_map(|l| match l {
            HistoryLine::Flight(f) => Some(f),
            _ => None,
        })
    }

    /// The most recent run record per key (last line wins — the file is
    /// append-only, so later is newer). Keys in first-seen order.
    pub fn latest_runs(&self) -> Vec<&RunEntry> {
        let mut order: Vec<&str> = Vec::new();
        let mut latest: std::collections::BTreeMap<&str, &RunEntry> =
            std::collections::BTreeMap::new();
        for r in self.runs() {
            if latest.insert(&r.metrics.key, r).is_none() {
                order.push(&r.metrics.key);
            }
        }
        order.into_iter().filter_map(|k| latest.remove(k)).collect()
    }

    /// Every run record for `key`, chronological (the sparkline series).
    pub fn series(&self, key: &str) -> Vec<&RunEntry> {
        self.runs().filter(|r| r.metrics.key == key).collect()
    }

    /// Host-seconds samples for `key` across recorded sweeps (simulated
    /// runs only — the median/MAD population the gate bounds against).
    pub fn host_samples(&self, key: &str) -> Vec<f64> {
        self.runs()
            .filter(|r| r.metrics.key == key)
            .filter_map(|r| r.host_secs)
            .collect()
    }
}

/// Convert one parsed sweep into its history lines (one sweep record,
/// one netprof aggregate when the sweep carried network microscope
/// data, one flight aggregate when the sweep carried executor
/// self-metrics, plus one run record per summary), stamped with `sha`.
pub fn lines_from_sweep(doc: &SweepDoc, sha: &str) -> Vec<HistoryLine> {
    let mut lines = Vec::with_capacity(doc.summaries.len() + 2);
    lines.push(HistoryLine::Sweep(SweepEntry {
        sha: sha.to_string(),
        jobs: doc.jobs,
        wall_secs: doc.wall_secs(),
        planned: doc.summaries.len() as u64,
        simulated: doc.runs.iter().filter(|r| r.source == "simulated").count() as u64,
        self_profile: doc.self_profile.clone(),
    }));
    if let Some(np) = doc.merged_netprof() {
        lines.push(HistoryLine::NetProf(NetProfEntry {
            sha: sha.to_string(),
            flits_routed: np.total_flits_routed(),
            credit_stalls: np.total_credit_stalls(),
            ticks: np.ticks_executed,
            skipped: np.cycles_skipped,
            jumps: np.skip_jumps,
            wake_core: np.wake_core,
            wake_mem: np.wake_mem,
            wake_net: np.wake_net,
            coalesced: np.coalesced_epochs,
            max_epoch_span: np.max_epoch_span,
            net_coverage: doc.self_profile.as_ref().and_then(|p| p.net_coverage),
            net_secs: doc.self_profile.as_ref().and_then(|p| {
                p.phases
                    .iter()
                    .find(|(name, _)| name == "network")
                    .map(|&(_, secs)| secs)
            }),
        }));
    }
    if let Some(ex) = &doc.executor {
        lines.push(HistoryLine::Flight(FlightEntry {
            sha: sha.to_string(),
            cache_hits: ex.cache_hits,
            cache_misses: ex.cache_misses,
            flight_waits: ex.flight_waits,
            peak_rss_bytes: ex.peak_rss_bytes,
        }));
    }
    for s in &doc.summaries {
        lines.push(HistoryLine::Run(RunEntry {
            sha: sha.to_string(),
            metrics: s.clone(),
            host_secs: doc.simulated_secs(&s.key),
        }));
    }
    lines
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn profile_json(p: &PhaseProfile) -> String {
    let phases: Vec<String> = p
        .phases
        .iter()
        .map(|(name, secs)| format!("\"{}\": {:?}", escape(name), secs))
        .collect();
    let mut net = String::new();
    if let Some(cov) = p.net_coverage {
        let subs: Vec<String> = p
            .net_phases
            .iter()
            .map(|(name, secs)| format!("\"{}\": {:?}", escape(name), secs))
            .collect();
        net = format!(
            ", \"net_coverage\": {cov:?}, \"net_phases\": {{{}}}",
            subs.join(", ")
        );
    }
    format!(
        "{{\"total_secs\": {:?}, \"coverage\": {:?}, \"phases\": {{{}}}{net}}}",
        p.total_secs,
        p.coverage,
        phases.join(", ")
    )
}

/// Encode one history line (no trailing newline). Floats print via
/// `{:?}` so they survive a JSON round-trip bit-exactly — the gate
/// compares them with `==`.
pub fn encode_line(line: &HistoryLine) -> String {
    match line {
        HistoryLine::Sweep(s) => {
            let mut out = format!(
                "{{\"schema\": \"{HISTORY_SCHEMA}\", \"kind\": \"sweep\", \"sha\": \"{}\", \
                 \"jobs\": {}, \"wall_secs\": {:?}, \"planned\": {}, \"simulated\": {}",
                escape(&s.sha),
                s.jobs,
                s.wall_secs,
                s.planned,
                s.simulated,
            );
            if let Some(p) = &s.self_profile {
                out.push_str(&format!(", \"self_profile\": {}", profile_json(p)));
            }
            out.push('}');
            out
        }
        HistoryLine::Run(r) => {
            let m = &r.metrics;
            let mut out = format!(
                "{{\"schema\": \"{HISTORY_SCHEMA}\", \"kind\": \"run\", \"sha\": \"{}\", \
                 \"key\": \"{}\", \"bench\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
                 \"ipc\": {:?}, \"runtime_s\": {:?}, \"energy_j\": {:?}, \"edp_js\": {:?}, \
                 \"latency\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"count\": {}}}",
                escape(&r.sha),
                escape(&m.key),
                escape(&m.bench),
                m.cycles,
                m.instructions,
                m.ipc,
                m.runtime_s,
                m.energy_j,
                m.edp_js,
                m.latency.p50,
                m.latency.p95,
                m.latency.p99,
                m.latency.max,
                m.latency.count,
            );
            if let Some(h) = r.host_secs {
                out.push_str(&format!(", \"host_secs\": {h:?}"));
            }
            out.push('}');
            out
        }
        HistoryLine::NetProf(n) => {
            let mut out = format!(
                "{{\"schema\": \"{HISTORY_SCHEMA}\", \"kind\": \"netprof\", \"sha\": \"{}\", \
                 \"flits_routed\": {}, \"credit_stalls\": {}, \"ticks\": {}, \"skipped\": {}, \
                 \"jumps\": {}, \"wake_core\": {}, \"wake_mem\": {}, \"wake_net\": {}, \
                 \"coalesced\": {}, \"max_epoch_span\": {}",
                escape(&n.sha),
                n.flits_routed,
                n.credit_stalls,
                n.ticks,
                n.skipped,
                n.jumps,
                n.wake_core,
                n.wake_mem,
                n.wake_net,
                n.coalesced,
                n.max_epoch_span,
            );
            if let Some(cov) = n.net_coverage {
                out.push_str(&format!(", \"net_coverage\": {cov:?}"));
            }
            if let Some(secs) = n.net_secs {
                out.push_str(&format!(", \"net_secs\": {secs:?}"));
            }
            out.push('}');
            out
        }
        HistoryLine::Flight(f) => format!(
            "{{\"schema\": \"{HISTORY_SCHEMA}\", \"kind\": \"flight\", \"sha\": \"{}\", \
             \"cache_hits\": {}, \"cache_misses\": {}, \"flight_waits\": {}, \
             \"peak_rss_bytes\": {}}}",
            escape(&f.sha),
            f.cache_hits,
            f.cache_misses,
            f.flight_waits,
            f.peak_rss_bytes,
        ),
    }
}

/// Decode one history line. `Ok(None)` means a forward-compatible skip
/// (valid schema family, unknown kind); `Err` names the malformation.
pub fn decode_line(text: &str) -> Result<Option<HistoryLine>, String> {
    let obj = parse(text).map_err(|e| e.to_string())?;
    let schema = obj
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("history line has no `schema` string")?;
    if !schema.starts_with(HISTORY_SCHEMA_PREFIX) {
        return Err(format!("unrecognized history schema `{schema}`"));
    }
    let sha = obj
        .get("sha")
        .and_then(Json::as_str)
        .ok_or("history line has no `sha`")?
        .to_string();
    match obj.get("kind").and_then(Json::as_str) {
        Some("sweep") => Ok(Some(HistoryLine::Sweep(SweepEntry {
            sha,
            jobs: obj
                .get("jobs")
                .and_then(Json::as_u64)
                .ok_or("sweep line has no `jobs`")?,
            wall_secs: obj
                .get("wall_secs")
                .and_then(Json::as_f64)
                .ok_or("sweep line has no `wall_secs`")?,
            planned: obj.get("planned").and_then(Json::as_u64).unwrap_or(0),
            simulated: obj.get("simulated").and_then(Json::as_u64).unwrap_or(0),
            self_profile: obj.get("self_profile").and_then(parse_profile),
        }))),
        Some("run") => {
            let metrics = parse_metrics(&obj).ok_or("run line metrics are malformed")?;
            Ok(Some(HistoryLine::Run(RunEntry {
                sha,
                metrics,
                host_secs: obj.get("host_secs").and_then(Json::as_f64),
            })))
        }
        Some("netprof") => {
            let req = |k: &str| -> Result<u64, String> {
                obj.get(k)
                    .and_then(Json::as_u64)
                    .ok_or(format!("netprof line has no `{k}`"))
            };
            Ok(Some(HistoryLine::NetProf(NetProfEntry {
                sha,
                flits_routed: req("flits_routed")?,
                credit_stalls: req("credit_stalls")?,
                ticks: req("ticks")?,
                skipped: req("skipped")?,
                jumps: req("jumps")?,
                wake_core: req("wake_core")?,
                wake_mem: req("wake_mem")?,
                // Optional: lines predating the mesh skip-ahead
                // overhaul lack the network wake cause and the
                // perf-guard seconds.
                wake_net: obj.get("wake_net").and_then(Json::as_u64).unwrap_or(0),
                coalesced: req("coalesced")?,
                max_epoch_span: req("max_epoch_span")?,
                net_coverage: obj.get("net_coverage").and_then(Json::as_f64),
                net_secs: obj.get("net_secs").and_then(Json::as_f64),
            })))
        }
        Some("flight") => {
            let req = |k: &str| -> Result<u64, String> {
                obj.get(k)
                    .and_then(Json::as_u64)
                    .ok_or(format!("flight line has no `{k}`"))
            };
            Ok(Some(HistoryLine::Flight(FlightEntry {
                sha,
                cache_hits: req("cache_hits")?,
                cache_misses: req("cache_misses")?,
                flight_waits: req("flight_waits")?,
                peak_rss_bytes: req("peak_rss_bytes")?,
            })))
        }
        Some(_) => Ok(None), // a newer writer's kind: skip, don't fail
        None => Err("history line has no `kind`".to_string()),
    }
}

/// Parse a whole history document (JSONL; blank lines allowed). The
/// error names the first malformed line by 1-based number.
pub fn read_history(text: &str) -> Result<History, String> {
    let mut history = History::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match decode_line(line).map_err(|e| format!("history line {}: {e}", i + 1))? {
            Some(decoded) => history.lines.push(decoded),
            None => history.skipped += 1,
        }
    }
    Ok(history)
}

/// Append encoded lines to the history file at `path`, creating it if
/// absent. Appends are the registry's only mutation — existing records
/// are never rewritten, which is what makes the file a trustworthy
/// trajectory.
pub fn append_lines(path: &Path, lines: &[HistoryLine]) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = String::new();
    for line in lines {
        buf.push_str(&encode_line(line));
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())
}

/// Write a rendered report (or any derived text artifact) to `path`.
/// The renderer funnels through here so rule 7 can police the crate's
/// write surface in one place.
pub fn write_text(path: &Path, contents: &str) -> std::io::Result<()> {
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::parse_sweep;

    fn sample_history() -> History {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let mut text = String::new();
        for line in lines_from_sweep(&doc, "sha-1") {
            text.push_str(&encode_line(&line));
            text.push('\n');
        }
        for line in lines_from_sweep(&doc, "sha-2") {
            text.push_str(&encode_line(&line));
            text.push('\n');
        }
        read_history(&text).expect("roundtrip")
    }

    #[test]
    fn sweep_roundtrips_through_history_lines() {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let lines = lines_from_sweep(&doc, "abc123");
        assert_eq!(
            lines.len(),
            5,
            "one sweep record + one netprof aggregate + one flight aggregate + two run records"
        );
        for line in &lines {
            let encoded = encode_line(line);
            let back = decode_line(&encoded).expect("decodes").expect("known kind");
            assert_eq!(&back, line, "bit-exact roundtrip of {encoded}");
        }
        match &lines[1] {
            HistoryLine::NetProf(n) => {
                assert_eq!(n.sha, "abc123");
                assert_eq!(n.flits_routed, 320);
                assert_eq!(n.credit_stalls, 14);
                assert_eq!(n.ticks + n.skipped, 500_000);
                assert_eq!(n.coalesced, 3);
                assert_eq!(n.net_coverage, Some(0.99));
            }
            other => panic!("expected netprof line, got {other:?}"),
        }
        match &lines[2] {
            HistoryLine::Flight(f) => {
                assert_eq!(f.sha, "abc123");
                assert_eq!(f.cache_hits, 1);
                assert_eq!(f.cache_misses, 1);
                assert_eq!(f.flight_waits, 0);
                assert_eq!(f.peak_rss_bytes, 104_857_600);
            }
            other => panic!("expected flight line, got {other:?}"),
        }
        match &lines[3] {
            HistoryLine::Run(r) => {
                assert_eq!(r.sha, "abc123");
                assert_eq!(r.host_secs, Some(5.5), "simulated run carries host secs");
            }
            other => panic!("expected run line, got {other:?}"),
        }
        match &lines[4] {
            HistoryLine::Run(r) => assert_eq!(r.host_secs, None, "cache hit has none"),
            other => panic!("expected run line, got {other:?}"),
        }
    }

    #[test]
    fn history_queries_pick_latest_and_series() {
        let h = sample_history();
        assert_eq!(h.sweeps().count(), 2);
        assert_eq!(h.runs().count(), 4);
        assert_eq!(h.netprofs().count(), 2);
        assert!(h.netprofs().all(|n| n.flits_routed == 320));
        assert_eq!(h.flights().count(), 2);
        assert!(h.flights().all(|f| f.cache_hits + f.cache_misses == 2));
        let latest = h.latest_runs();
        assert_eq!(latest.len(), 2);
        assert!(latest.iter().all(|r| r.sha == "sha-2"), "last line wins");
        let key = "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix";
        assert_eq!(h.series(key).len(), 2);
        assert_eq!(h.host_samples(key), vec![5.5, 5.5]);
        assert_eq!(
            h.host_samples("8x4|emesh-pure|flit64|buf4|ackwise4|radix"),
            Vec::<f64>::new(),
            "cache hits contribute no host samples"
        );
    }

    #[test]
    fn decode_is_forward_compatible_but_not_lax() {
        // Unknown kind from a future writer: skipped, not fatal.
        let future = r#"{"schema": "atac-report-history-v2", "kind": "annotation", "sha": "x"}"#;
        assert_eq!(decode_line(future).expect("skips"), None);
        // Unknown members on a known kind: ignored.
        let extra = r#"{"schema": "atac-report-history-v1", "kind": "sweep", "sha": "x",
                        "jobs": 2, "wall_secs": 1.5, "frobnication": true}"#;
        assert!(matches!(
            decode_line(extra).expect("decodes"),
            Some(HistoryLine::Sweep(_))
        ));
        // Foreign schema, missing kind, bad json: all errors.
        assert!(decode_line(r#"{"schema": "other-v1", "kind": "run", "sha": "x"}"#).is_err());
        assert!(decode_line(r#"{"schema": "atac-report-history-v1", "sha": "x"}"#).is_err());
        assert!(decode_line("{").is_err());
        // And a malformed line is named by number in a full read.
        let text = format!("{future}\n\nnot json\n");
        let err = read_history(&text).expect_err("line 3 is malformed");
        assert!(err.starts_with("history line 3:"), "{err}");
        // While the skippable line is counted.
        let ok = read_history(future).expect("reads");
        assert_eq!(ok.skipped, 1);
        assert!(ok.lines.is_empty());
    }

    #[test]
    fn append_creates_and_extends() {
        let dir = std::env::temp_dir().join(format!("atac-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&path);
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let lines = lines_from_sweep(&doc, "s1");
        append_lines(&path, &lines).expect("first append creates");
        append_lines(&path, &lines_from_sweep(&doc, "s2")).expect("second append extends");
        let text = std::fs::read_to_string(&path).expect("readable");
        let h = read_history(&text).expect("parses");
        assert_eq!(h.sweeps().count(), 2);
        assert_eq!(h.runs().count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
