//! `atac-report` — record sweeps into the run-history registry, gate
//! the current sweep against a baseline, and render the report.
//!
//! ```text
//! atac-report record [--sweep BENCH_sweep.json] [--history BENCH_history.jsonl] [--sha <sha>]
//! atac-report gate --baseline <ref|file> [--sweep BENCH_sweep.json]
//!                  [--history-path BENCH_history.jsonl] [--strict-host] [--require-all]
//! atac-report render [--history BENCH_history.jsonl] [--sweep BENCH_sweep.json]
//!                    [--baseline <ref|file>] [--out BENCH_report.md] [--top <n>]
//! atac-report netmap [--sweep BENCH_sweep.json] [--out BENCH_netmap.md]
//!                    [--top <n>] [--min-coverage <frac>]
//! atac-report flight [--journal BENCH_flight.jsonl] [--out BENCH_flight.md] [--top <n>]
//! ```
//!
//! `--baseline` accepts either a history *file* or a git *ref*: when no
//! file exists at the given path, the baseline is read from
//! `git show <ref>:<history-path>` — so CI can gate a PR against the
//! history committed on `origin/main` without any checkout gymnastics.
//!
//! Exit codes: 0 pass, 1 gate regression (or a flight journal that
//! fails reconciliation), 2 usage or I/O error.

use std::path::Path;
use std::process::{Command, ExitCode};

use atac_report::{compare, lines_from_sweep, parse_sweep, read_history, GateConfig, History};

fn fail(msg: &str) -> ExitCode {
    eprintln!("atac-report: {msg}");
    ExitCode::from(2)
}

/// One `--flag value` option parser over the raw argument list.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The current tree's commit SHA via `git rev-parse`, or `"unknown"`
/// outside a repository.
fn head_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

/// Resolve `--baseline`: a file path when one exists there, else a git
/// ref whose committed `history_path` blob is the baseline.
fn resolve_baseline(arg: &str, history_path: &str) -> Result<String, String> {
    if Path::new(arg).is_file() {
        return std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"));
    }
    let spec = format!("{arg}:{history_path}");
    let out = Command::new("git")
        .args(["show", &spec])
        .output()
        .map_err(|e| format!("cannot run git show {spec}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "`{arg}` is neither a readable file nor a git ref with {history_path}: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    String::from_utf8(out.stdout).map_err(|e| format!("git show {spec} is not utf-8: {e}"))
}

fn load_sweep(path: &str) -> Result<atac_report::SweepDoc, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read sweep {path}: {e}"))?;
    let doc = parse_sweep(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.summaries.is_empty() {
        return Err(format!(
            "{path} carries no run summaries (emitted by a pre-v2 harness?) — \
             re-run the sweep with the current `reproduce`"
        ));
    }
    Ok(doc)
}

fn gate_config(args: &[String]) -> GateConfig {
    GateConfig {
        strict_host: has_flag(args, "--strict-host"),
        require_all: has_flag(args, "--require-all"),
        ..GateConfig::default()
    }
}

fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let sweep_path = opt(args, "--sweep").unwrap_or_else(|| "BENCH_sweep.json".into());
    let history_path = opt(args, "--history").unwrap_or_else(|| "BENCH_history.jsonl".into());
    let sha = opt(args, "--sha").unwrap_or_else(head_sha);
    let doc = load_sweep(&sweep_path)?;
    let lines = lines_from_sweep(&doc, &sha);
    atac_report::append_lines(Path::new(&history_path), &lines)
        .map_err(|e| format!("cannot append to {history_path}: {e}"))?;
    let runs = lines
        .iter()
        .filter(|l| matches!(l, atac_report::HistoryLine::Run(_)))
        .count();
    println!(
        "recorded sweep @ {sha}: {} line(s) ({runs} run record(s)) appended to {history_path}",
        lines.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_gate(args: &[String]) -> Result<ExitCode, String> {
    let baseline_arg = opt(args, "--baseline").ok_or("gate requires --baseline <ref|file>")?;
    let sweep_path = opt(args, "--sweep").unwrap_or_else(|| "BENCH_sweep.json".into());
    let history_path = opt(args, "--history-path").unwrap_or_else(|| "BENCH_history.jsonl".into());
    let baseline_text = resolve_baseline(&baseline_arg, &history_path)?;
    let baseline = read_history(&baseline_text).map_err(|e| format!("baseline: {e}"))?;
    if baseline.runs().next().is_none() {
        return Err(format!("baseline `{baseline_arg}` holds no run records"));
    }
    let doc = load_sweep(&sweep_path)?;
    let cfg = gate_config(args);
    let report = compare(&baseline, &doc, &cfg);
    print!("{}", report.table());
    let failures = report.failures(&cfg);
    if failures.is_empty() {
        println!(
            "\ngate PASS vs `{baseline_arg}`: {} key(s) compared, {} improved, {} new",
            report.keys.len(),
            report.count(atac_report::Verdict::Improved),
            report.count(atac_report::Verdict::New),
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "\ngate FAIL vs `{baseline_arg}`: {} offending key(s): {}",
            failures.len(),
            failures
                .iter()
                .map(|k| k.key.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_render(args: &[String]) -> Result<ExitCode, String> {
    let history_path = opt(args, "--history").unwrap_or_else(|| "BENCH_history.jsonl".into());
    let out_path = opt(args, "--out").unwrap_or_else(|| "BENCH_report.md".into());
    let top_n = match opt(args, "--top") {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("--top wants a count, got `{n}`"))?,
        None => 10,
    };
    let history = match std::fs::read_to_string(&history_path) {
        Ok(text) => read_history(&text).map_err(|e| format!("{history_path}: {e}"))?,
        Err(_) => History::default(), // render still shows the sweep's profile
    };
    let sweep = match opt(args, "--sweep") {
        Some(path) => Some(load_sweep(&path)?),
        None if Path::new("BENCH_sweep.json").is_file() => Some(load_sweep("BENCH_sweep.json")?),
        None => None,
    };
    let cfg = gate_config(args);
    let gate = match (opt(args, "--baseline"), &sweep) {
        (Some(arg), Some(doc)) => {
            let history_path = opt(args, "--history-path").unwrap_or_else(|| history_path.clone());
            let text = resolve_baseline(&arg, &history_path)?;
            let baseline = read_history(&text).map_err(|e| format!("baseline: {e}"))?;
            Some(compare(&baseline, doc, &cfg))
        }
        _ => None,
    };
    let md = atac_report::render(
        &history,
        sweep.as_ref(),
        gate.as_ref().map(|g| (g, &cfg)),
        top_n,
    );
    atac_report::write_text(Path::new(&out_path), &md)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_netmap(args: &[String]) -> Result<ExitCode, String> {
    let sweep_path = opt(args, "--sweep").unwrap_or_else(|| "BENCH_sweep.json".into());
    let out_path = opt(args, "--out").unwrap_or_else(|| "BENCH_netmap.md".into());
    let top_n = match opt(args, "--top") {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("--top wants a count, got `{n}`"))?,
        None => 10,
    };
    let min_coverage = match opt(args, "--min-coverage") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--min-coverage wants a fraction, got `{v}`"))?,
        ),
        None => None,
    };
    let doc = load_sweep(&sweep_path)?;
    let md = atac_report::render_netmap(&doc, top_n).ok_or_else(|| {
        format!(
            "{sweep_path} carries no netprof blocks — \
             re-run the sweep with ATAC_NETPROF=1"
        )
    })?;
    atac_report::write_text(Path::new(&out_path), &md)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    if let Some(min) = min_coverage {
        let cov = doc.self_profile.as_ref().and_then(|p| p.net_coverage);
        match cov {
            Some(c) if c >= min => {
                println!(
                    "sub-phase coverage {:.1}% >= {:.1}% floor",
                    c * 100.0,
                    min * 100.0
                );
            }
            Some(c) => {
                println!(
                    "netmap FAIL: sub-phase coverage {:.1}% below the {:.1}% floor",
                    c * 100.0,
                    min * 100.0
                );
                return Ok(ExitCode::FAILURE);
            }
            None => {
                println!(
                    "netmap FAIL: --min-coverage given but the sweep's self-profile \
                     carries no net_coverage (ATAC_PROFILE=0 or ATAC_NETPROF=0?)"
                );
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_flight(args: &[String]) -> Result<ExitCode, String> {
    let journal_path = opt(args, "--journal").unwrap_or_else(|| "BENCH_flight.jsonl".into());
    let out_path = opt(args, "--out").unwrap_or_else(|| "BENCH_flight.md".into());
    let top_n = match opt(args, "--top") {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("--top wants a count, got `{n}`"))?,
        None => 10,
    };
    let text = std::fs::read_to_string(&journal_path)
        .map_err(|e| format!("cannot read flight journal {journal_path}: {e}"))?;
    let log = atac_trace::parse_flight(&text).map_err(|e| format!("{journal_path}: {e}"))?;
    let md = atac_report::render_flight(&log, top_n);
    atac_report::write_text(Path::new(&out_path), &md)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    // The journal parsed and rendered; reconciliation failure is a
    // verdict (exit 1, like a gate regression), not a usage error.
    if let Err(broken) = atac_trace::reconcile(&log) {
        println!("flight FAIL: {broken}");
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "flight ok: {} event(s) reconcile over {} run(s), {} worker(s)",
        log.events.len(),
        log.runs,
        log.jobs
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("gate") => cmd_gate(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("netmap") => cmd_netmap(&args[1..]),
        Some("flight") => cmd_flight(&args[1..]),
        _ => {
            eprintln!(
                "usage: atac-report <record|gate|render|netmap|flight> [options]\n\
                 \x20 record  --sweep <f> --history <f> [--sha <sha>]\n\
                 \x20 gate    --baseline <ref|file> [--sweep <f>] [--history-path <p>] \
                 [--strict-host] [--require-all]\n\
                 \x20 render  [--history <f>] [--sweep <f>] [--baseline <ref|file>] \
                 [--out <f>] [--top <n>]\n\
                 \x20 netmap  [--sweep <f>] [--out <f>] [--top <n>] [--min-coverage <frac>]\n\
                 \x20 flight  [--journal <f>] [--out <f>] [--top <n>]"
            );
            return ExitCode::from(2);
        }
    };
    result.unwrap_or_else(|msg| fail(&msg))
}
