//! Render `BENCH_report.md`: the human-readable face of the registry.
//!
//! The report answers, in order: *did anything regress* (gate verdicts
//! and delta table vs the baseline), *where is each metric heading*
//! (unicode sparkline per key over the recorded history), *what moved
//! most* (top movers by |Δ%|), and *where do the host seconds go* (the
//! merged self-profile breakdown). Markdown so it reads in a terminal,
//! a PR comment, or a CI artifact viewer alike.

use std::fmt::Write as _;

use atac_trace::{NetProfile, LINKS_PER_ROUTER, OCC_BUCKET_LABELS};

use crate::gate::{GateConfig, GateReport, Verdict};
use crate::history::History;
use crate::sweep::{PhaseProfile, SweepDoc};

/// Sparkline glyphs, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a value series as a unicode sparkline. A flat (or singleton)
/// series renders at mid-height; an empty series is empty.
pub fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi <= lo {
                SPARK[3]
            } else {
                let t = (v - lo) / (hi - lo);
                // index 0..=7; t is in 0..=1 so the cast is in range.
                SPARK[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Compact engineering formatting for mixed-magnitude metric values.
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if v == v.trunc() && a < 1e9 {
        format!("{v}")
    } else if !(1e-3..1e7).contains(&a) && v != 0.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn verdict_row(report: &GateReport, out: &mut String) {
    let _ = writeln!(out, "| key | verdict | detail |");
    let _ = writeln!(out, "|---|---|---|");
    for k in &report.keys {
        let mut detail = String::new();
        for d in &k.deltas {
            let _ = write!(
                detail,
                "{}`{}` {} → {} ({:+.2}%)",
                if detail.is_empty() { "" } else { "; " },
                d.metric,
                fmt_value(d.base),
                fmt_value(d.cur),
                d.pct()
            );
        }
        if let Some(h) = &k.host {
            let _ = write!(
                detail,
                "{}host {:.2}s vs {:.2}s median (bound {:.2}s)",
                if detail.is_empty() { "" } else { "; " },
                h.cur,
                h.median,
                h.bound
            );
        }
        let flag = match k.verdict {
            Verdict::Regressed => "**REGRESSED**",
            Verdict::HostSlow => "host-slow",
            Verdict::Improved => "improved",
            Verdict::Ok => "ok",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        };
        let _ = writeln!(out, "| `{}` | {flag} | {detail} |", k.key);
    }
}

/// Top-N keys by absolute percent change of one metric, from the gate's
/// deltas (which only exist where something changed).
fn top_movers(report: &GateReport, out: &mut String, top_n: usize) {
    let mut movers: Vec<(&str, &'static str, f64)> = report
        .keys
        .iter()
        .flat_map(|k| {
            k.deltas
                .iter()
                .map(move |d| (k.key.as_str(), d.metric, d.pct()))
        })
        .filter(|(_, _, pct)| pct.is_finite())
        .collect();
    movers.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
    movers.truncate(top_n);
    if movers.is_empty() {
        let _ = writeln!(out, "No simulated-metric changes vs the baseline.");
        return;
    }
    let _ = writeln!(out, "| key | metric | Δ% |");
    let _ = writeln!(out, "|---|---|---|");
    for (key, metric, pct) in movers {
        let _ = writeln!(out, "| `{key}` | {metric} | {pct:+.2}% |");
    }
}

fn history_sparklines(history: &History, out: &mut String) {
    let latest = history.latest_runs();
    if latest.is_empty() {
        let _ = writeln!(out, "History is empty — record a sweep first.");
        return;
    }
    let _ = writeln!(out, "| key | n | cycles | edp | host s |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for entry in latest {
        let series = history.series(&entry.metrics.key);
        let cycles: Vec<f64> = series.iter().map(|r| r.metrics.cycles as f64).collect();
        let edp: Vec<f64> = series.iter().map(|r| r.metrics.edp_js).collect();
        let host: Vec<f64> = series.iter().filter_map(|r| r.host_secs).collect();
        let _ = writeln!(
            out,
            "| `{}` | {} | {} {} | {} {} | {} |",
            entry.metrics.key,
            series.len(),
            sparkline(&cycles),
            fmt_value(entry.metrics.cycles as f64),
            sparkline(&edp),
            fmt_value(entry.metrics.edp_js),
            if host.is_empty() {
                "—".to_string()
            } else {
                format!("{} {:.2}", sparkline(&host), host[host.len() - 1])
            }
        );
    }
}

fn self_profile(history: &History, sweep: Option<&SweepDoc>, out: &mut String) {
    // Prefer the freshly-gated sweep's merged profile; fall back to the
    // most recent recorded sweep that carried one.
    let profile = sweep.and_then(|d| d.self_profile.as_ref()).or_else(|| {
        history
            .sweeps()
            .filter_map(|s| s.self_profile.as_ref())
            .last()
    });
    let Some(p) = profile else {
        let _ = writeln!(out, "No self-profile recorded (`ATAC_PROFILE=0`?).");
        return;
    };
    let tracked: f64 = p.phases.iter().map(|(_, s)| s).sum();
    let _ = writeln!(out, "| phase | seconds | share |");
    let _ = writeln!(out, "|---|---|---|");
    let mut phases: Vec<&(String, f64)> = p.phases.iter().collect();
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, secs) in phases {
        let _ = writeln!(
            out,
            "| {name} | {secs:.3} | {:.1}% |",
            secs / p.total_secs.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nPhase laps cover **{:.1}%** of {:.2}s total simulated-run wall time \
         (tracked {tracked:.2}s).",
        p.coverage * 100.0,
        p.total_secs
    );
}

/// Direction labels for the four mesh link ports, in `Port::idx` order.
const LINK_DIRS: [&str; 4] = ["N", "S", "E", "W"];

fn netmap_skip_table(np: &NetProfile, out: &mut String) {
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| cycles simulated | {} |", np.cycles);
    let _ = writeln!(
        out,
        "| router-cycles simulated | {} ({} routers) |",
        np.router_cycles(),
        np.routers.len()
    );
    let _ = writeln!(out, "| router ticks executed | {} |", np.router_ticks());
    let _ = writeln!(
        out,
        "| cycles skipped (per-router horizon) | {} ({:.1}% of router time) |",
        np.router_cycles_skipped(),
        np.router_skip_fraction() * 100.0
    );
    let _ = writeln!(out, "| network ticks executed | {} |", np.ticks_executed);
    let _ = writeln!(
        out,
        "| cycles skipped (whole-network gaps) | {} ({:.1}% of advanced time) |",
        np.cycles_skipped,
        np.skip_fraction() * 100.0
    );
    let _ = writeln!(out, "| skip-ahead jumps | {} |", np.skip_jumps);
    let _ = writeln!(
        out,
        "| wakeups (core / mem / net) | {} / {} / {} |",
        np.wake_core, np.wake_mem, np.wake_net
    );
    let _ = writeln!(
        out,
        "| epochs closed | {} ({} coalesced past their nominal span) |",
        np.epochs_closed, np.coalesced_epochs
    );
    let _ = writeln!(out, "| max epoch span | {} cycles |", np.max_epoch_span);
}

fn netmap_subphases(profile: Option<&PhaseProfile>, out: &mut String) {
    let Some(p) = profile.filter(|p| !p.net_phases.is_empty()) else {
        let _ = writeln!(out, "No sub-phase laps recorded (`ATAC_NETPROF=0`?).");
        return;
    };
    let tracked: f64 = p.net_phases.iter().map(|(_, s)| s).sum();
    let _ = writeln!(out, "| sub-phase | seconds | share of tracked |");
    let _ = writeln!(out, "|---|---|---|");
    let mut subs: Vec<&(String, f64)> = p.net_phases.iter().collect();
    subs.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, secs) in subs {
        let _ = writeln!(
            out,
            "| {name} | {secs:.3} | {:.1}% |",
            secs / tracked.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    if let Some(cov) = p.net_coverage {
        let _ = writeln!(
            out,
            "\nSub-phase laps cover **{:.1}%** of the measured `network` phase.",
            cov * 100.0
        );
    }
}

fn netmap_routers(np: &NetProfile, out: &mut String, top_n: usize) {
    if np.routers.is_empty() {
        let _ = writeln!(out, "No router activity observed.");
        return;
    }
    let flits: Vec<f64> = np.routers.iter().map(|r| r.flits_routed as f64).collect();
    let _ = writeln!(
        out,
        "Heat strip (flits routed, router 0 → {}):\n\n```\n{}\n```\n",
        np.routers.len() - 1,
        sparkline(&flits)
    );
    let mut order: Vec<usize> = (0..np.routers.len()).collect();
    order.sort_by(|&a, &b| {
        np.routers[b]
            .flits_routed
            .cmp(&np.routers[a].flits_routed)
            .then(a.cmp(&b))
    });
    order.truncate(top_n);
    let _ = writeln!(
        out,
        "Top {} hotspot router(s); occupancy histogram buckets are {}:\n",
        order.len(),
        OCC_BUCKET_LABELS.join("/")
    );
    let _ = writeln!(
        out,
        "| router | flits | credit-stall cyc | active cyc | idle % | mean occ | occ hist |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for r in order {
        let ro = &np.routers[r];
        let hist: Vec<f64> = ro.occupancy_hist.iter().map(|&v| v as f64).collect();
        let _ = writeln!(
            out,
            "| r{r} | {} | {} | {} | {:.1}% | {:.2} | {} |",
            ro.flits_routed,
            ro.credit_stall_cycles,
            ro.active_cycles,
            ro.idle_fraction(np.cycles) * 100.0,
            ro.mean_occupancy(),
            sparkline(&hist)
        );
    }
}

fn netmap_links(np: &NetProfile, out: &mut String, top_n: usize) {
    let mut links: Vec<(usize, u64)> = np
        .link_flits
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, f)| f > 0)
        .collect();
    if links.is_empty() {
        let _ = writeln!(out, "No mesh-link traffic observed.");
        return;
    }
    links.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    links.truncate(top_n);
    let _ = writeln!(out, "| link | flits |");
    let _ = writeln!(out, "|---|---|");
    for (idx, f) in links {
        let _ = writeln!(
            out,
            "| r{}→{} | {f} |",
            idx / LINKS_PER_ROUTER,
            LINK_DIRS[idx % LINKS_PER_ROUTER]
        );
    }
}

fn netmap_hubs(np: &NetProfile, out: &mut String) {
    let clusters = np.hub_unicast_flits.len().max(np.hub_broadcast_flits.len());
    if clusters == 0 {
        let _ = writeln!(out, "No hub (optical) traffic observed.");
        return;
    }
    let _ = writeln!(out, "| cluster | unicast flits | broadcast flits |");
    let _ = writeln!(out, "|---|---|---|");
    for c in 0..clusters {
        let _ = writeln!(
            out,
            "| c{c} | {} | {} |",
            np.hub_unicast_flits.get(c).copied().unwrap_or(0),
            np.hub_broadcast_flits.get(c).copied().unwrap_or(0)
        );
    }
}

/// Render the standalone network-microscope page from a sweep's merged
/// cycle-domain counters: skip-ahead efficacy, sub-phase attribution,
/// the per-router heat table, hottest links, and hub traffic. Returns
/// `None` when no run in the sweep carried a `netprof` block
/// (instrument with `ATAC_NETPROF=1`).
pub fn render_netmap(doc: &SweepDoc, top_n: usize) -> Option<String> {
    let np = doc.merged_netprof()?;
    let observed = doc.runs.iter().filter(|r| r.netprof.is_some()).count();
    let mut out = String::new();
    let _ = writeln!(out, "# ATAC network microscope");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Cycle-domain counters aggregated over {observed} observed run(s) \
         of {} in the sweep: {} flit(s) routed, {} credit-stall cycle(s).",
        doc.runs.len(),
        np.total_flits_routed(),
        np.total_credit_stalls()
    );
    let _ = writeln!(out, "\n## Skip-ahead efficacy\n");
    netmap_skip_table(&np, &mut out);
    let _ = writeln!(out, "\n## Network sub-phase attribution\n");
    netmap_subphases(doc.self_profile.as_ref(), &mut out);
    let _ = writeln!(out, "\n## Router heat\n");
    netmap_routers(&np, &mut out, top_n);
    let _ = writeln!(out, "\n## Hottest links\n");
    netmap_links(&np, &mut out, top_n);
    let _ = writeln!(out, "\n## Hub (optical) traffic\n");
    netmap_hubs(&np, &mut out);
    Some(out)
}

/// Render the full report. `gate` is present when a baseline was given;
/// `sweep` is the current sweep being reported on, when available.
pub fn render(
    history: &History,
    sweep: Option<&SweepDoc>,
    gate: Option<(&GateReport, &GateConfig)>,
    top_n: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ATAC bench report");
    let _ = writeln!(out);
    let last_sha = history
        .runs()
        .last()
        .map_or("(none)", |r| r.sha.as_str())
        .to_string();
    let _ = writeln!(
        out,
        "{} recorded sweep(s), {} run record(s) over {} key(s); latest sha `{last_sha}`.",
        history.sweeps().count(),
        history.runs().count(),
        history.latest_runs().len(),
    );
    if history.skipped > 0 {
        let _ = writeln!(
            out,
            "({} newer-schema line(s) skipped by this reader.)",
            history.skipped
        );
    }

    if let Some((report, cfg)) = gate {
        let _ = writeln!(out, "\n## Regression gate vs baseline\n");
        let failures = report.failures(cfg);
        if failures.is_empty() {
            let _ = writeln!(
                out,
                "**PASS** — {} ok, {} improved, {} new, {} missing, {} host-slow.\n",
                report.count(Verdict::Ok),
                report.count(Verdict::Improved),
                report.count(Verdict::New),
                report.count(Verdict::Missing),
                report.count(Verdict::HostSlow),
            );
        } else {
            let _ = writeln!(
                out,
                "**FAIL** — {} offending key(s): {}\n",
                failures.len(),
                failures
                    .iter()
                    .map(|k| format!("`{}`", k.key))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        verdict_row(report, &mut out);
        let _ = writeln!(out, "\n## Top movers\n");
        top_movers(report, &mut out, top_n);
    }

    let _ = writeln!(out, "\n## Metric history\n");
    history_sparklines(history, &mut out);

    let _ = writeln!(out, "\n## Host self-profile\n");
    self_profile(history, sweep, &mut out);

    if let Some(np) = sweep.and_then(SweepDoc::merged_netprof) {
        let _ = writeln!(out, "\n## Network microscope\n");
        let _ = writeln!(
            out,
            "{} flit(s) routed, {} credit-stall cycle(s), {:.1}% of advanced \
             time skipped ahead. Full detail: `atac-report netmap`.\n",
            np.total_flits_routed(),
            np.total_credit_stalls(),
            np.skip_fraction() * 100.0
        );
        netmap_routers(&np, &mut out, top_n);
        let _ = writeln!(out, "\n### Network sub-phase attribution\n");
        netmap_subphases(sweep.and_then(|d| d.self_profile.as_ref()), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::compare;
    use crate::history::{lines_from_sweep, read_history};
    use crate::sweep::parse_sweep;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0]), "▄", "singleton sits mid-height");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▄▄▄", "flat series too");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[1.0, 0.0]), "█▁");
    }

    #[test]
    fn report_covers_every_section() {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let mut text = String::new();
        for sha in ["s1", "s2", "s3"] {
            for line in lines_from_sweep(&doc, sha) {
                text.push_str(&crate::history::encode_line(&line));
                text.push('\n');
            }
        }
        let history = read_history(&text).expect("parses");
        let cfg = GateConfig::default();
        let mut cur = doc.clone();
        cur.summaries[0].cycles += 1; // one regression to render
        let gate = compare(&history, &cur, &cfg);
        let md = render(&history, Some(&cur), Some((&gate, &cfg)), 5);
        for section in [
            "# ATAC bench report",
            "## Regression gate vs baseline",
            "**FAIL**",
            "## Top movers",
            "## Metric history",
            "## Host self-profile",
            "replay",
            "## Network microscope",
            "| r0 |",
            "Sub-phase laps cover",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        assert!(md.contains(&cur.summaries[0].key));
        // Sparklines appear for the 3-sweep history.
        assert!(md.chars().any(|c| SPARK.contains(&c)));

        // A passing render without a gate still has history + profile.
        let md = render(&history, None, None, 5);
        assert!(!md.contains("Regression gate"));
        assert!(md.contains("## Metric history"));
        assert!(
            !md.contains("Network microscope"),
            "no sweep → no netmap section"
        );
    }

    #[test]
    fn netmap_page_renders_every_section() {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let md = render_netmap(&doc, 5).expect("fixture carries a netprof block");
        for section in [
            "# ATAC network microscope",
            "## Skip-ahead efficacy",
            "| skip-ahead jumps | 150 |",
            // 2 routers × 500000 cycles, 90000 + 45000 active.
            "| router-cycles simulated | 1000000 (2 routers) |",
            "| cycles skipped (per-router horizon) | 865000 (86.5% of router time) |",
            "## Network sub-phase attribution",
            "route_compute",
            "## Router heat",
            "| r0 | 200 |",
            "## Hottest links",
            "| r0→N | 120 |",
            "## Hub (optical) traffic",
            "| c0 | 400 | 80 |",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        // Hotspot ordering: r0 (200 flits) before r1 (120 flits).
        let r0 = md.find("| r0 | 200").expect("r0 row");
        let r1 = md.find("| r1 | 120").expect("r1 row");
        assert!(r0 < r1, "routers ordered by flits routed, descending");

        // A sweep without netprof blocks renders no page at all.
        let mut bare = doc.clone();
        for run in &mut bare.runs {
            run.netprof = None;
        }
        assert!(render_netmap(&bare, 5).is_none());
    }
}
