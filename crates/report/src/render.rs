//! Render `BENCH_report.md`: the human-readable face of the registry.
//!
//! The report answers, in order: *did anything regress* (gate verdicts
//! and delta table vs the baseline), *where is each metric heading*
//! (unicode sparkline per key over the recorded history), *what moved
//! most* (top movers by |Δ%|), and *where do the host seconds go* (the
//! merged self-profile breakdown). Markdown so it reads in a terminal,
//! a PR comment, or a CI artifact viewer alike.

use std::fmt::Write as _;

use crate::gate::{GateConfig, GateReport, Verdict};
use crate::history::History;
use crate::sweep::SweepDoc;

/// Sparkline glyphs, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a value series as a unicode sparkline. A flat (or singleton)
/// series renders at mid-height; an empty series is empty.
pub fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi <= lo {
                SPARK[3]
            } else {
                let t = (v - lo) / (hi - lo);
                // index 0..=7; t is in 0..=1 so the cast is in range.
                SPARK[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Compact engineering formatting for mixed-magnitude metric values.
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if v == v.trunc() && a < 1e9 {
        format!("{v}")
    } else if !(1e-3..1e7).contains(&a) && v != 0.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn verdict_row(report: &GateReport, out: &mut String) {
    let _ = writeln!(out, "| key | verdict | detail |");
    let _ = writeln!(out, "|---|---|---|");
    for k in &report.keys {
        let mut detail = String::new();
        for d in &k.deltas {
            let _ = write!(
                detail,
                "{}`{}` {} → {} ({:+.2}%)",
                if detail.is_empty() { "" } else { "; " },
                d.metric,
                fmt_value(d.base),
                fmt_value(d.cur),
                d.pct()
            );
        }
        if let Some(h) = &k.host {
            let _ = write!(
                detail,
                "{}host {:.2}s vs {:.2}s median (bound {:.2}s)",
                if detail.is_empty() { "" } else { "; " },
                h.cur,
                h.median,
                h.bound
            );
        }
        let flag = match k.verdict {
            Verdict::Regressed => "**REGRESSED**",
            Verdict::HostSlow => "host-slow",
            Verdict::Improved => "improved",
            Verdict::Ok => "ok",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        };
        let _ = writeln!(out, "| `{}` | {flag} | {detail} |", k.key);
    }
}

/// Top-N keys by absolute percent change of one metric, from the gate's
/// deltas (which only exist where something changed).
fn top_movers(report: &GateReport, out: &mut String, top_n: usize) {
    let mut movers: Vec<(&str, &'static str, f64)> = report
        .keys
        .iter()
        .flat_map(|k| {
            k.deltas
                .iter()
                .map(move |d| (k.key.as_str(), d.metric, d.pct()))
        })
        .filter(|(_, _, pct)| pct.is_finite())
        .collect();
    movers.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
    movers.truncate(top_n);
    if movers.is_empty() {
        let _ = writeln!(out, "No simulated-metric changes vs the baseline.");
        return;
    }
    let _ = writeln!(out, "| key | metric | Δ% |");
    let _ = writeln!(out, "|---|---|---|");
    for (key, metric, pct) in movers {
        let _ = writeln!(out, "| `{key}` | {metric} | {pct:+.2}% |");
    }
}

fn history_sparklines(history: &History, out: &mut String) {
    let latest = history.latest_runs();
    if latest.is_empty() {
        let _ = writeln!(out, "History is empty — record a sweep first.");
        return;
    }
    let _ = writeln!(out, "| key | n | cycles | edp | host s |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for entry in latest {
        let series = history.series(&entry.metrics.key);
        let cycles: Vec<f64> = series.iter().map(|r| r.metrics.cycles as f64).collect();
        let edp: Vec<f64> = series.iter().map(|r| r.metrics.edp_js).collect();
        let host: Vec<f64> = series.iter().filter_map(|r| r.host_secs).collect();
        let _ = writeln!(
            out,
            "| `{}` | {} | {} {} | {} {} | {} |",
            entry.metrics.key,
            series.len(),
            sparkline(&cycles),
            fmt_value(entry.metrics.cycles as f64),
            sparkline(&edp),
            fmt_value(entry.metrics.edp_js),
            if host.is_empty() {
                "—".to_string()
            } else {
                format!("{} {:.2}", sparkline(&host), host[host.len() - 1])
            }
        );
    }
}

fn self_profile(history: &History, sweep: Option<&SweepDoc>, out: &mut String) {
    // Prefer the freshly-gated sweep's merged profile; fall back to the
    // most recent recorded sweep that carried one.
    let profile = sweep.and_then(|d| d.self_profile.as_ref()).or_else(|| {
        history
            .sweeps()
            .filter_map(|s| s.self_profile.as_ref())
            .last()
    });
    let Some(p) = profile else {
        let _ = writeln!(out, "No self-profile recorded (`ATAC_PROFILE=0`?).");
        return;
    };
    let tracked: f64 = p.phases.iter().map(|(_, s)| s).sum();
    let _ = writeln!(out, "| phase | seconds | share |");
    let _ = writeln!(out, "|---|---|---|");
    let mut phases: Vec<&(String, f64)> = p.phases.iter().collect();
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, secs) in phases {
        let _ = writeln!(
            out,
            "| {name} | {secs:.3} | {:.1}% |",
            secs / p.total_secs.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nPhase laps cover **{:.1}%** of {:.2}s total simulated-run wall time \
         (tracked {tracked:.2}s).",
        p.coverage * 100.0,
        p.total_secs
    );
}

/// Render the full report. `gate` is present when a baseline was given;
/// `sweep` is the current sweep being reported on, when available.
pub fn render(
    history: &History,
    sweep: Option<&SweepDoc>,
    gate: Option<(&GateReport, &GateConfig)>,
    top_n: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ATAC bench report");
    let _ = writeln!(out);
    let last_sha = history
        .runs()
        .last()
        .map_or("(none)", |r| r.sha.as_str())
        .to_string();
    let _ = writeln!(
        out,
        "{} recorded sweep(s), {} run record(s) over {} key(s); latest sha `{last_sha}`.",
        history.sweeps().count(),
        history.runs().count(),
        history.latest_runs().len(),
    );
    if history.skipped > 0 {
        let _ = writeln!(
            out,
            "({} newer-schema line(s) skipped by this reader.)",
            history.skipped
        );
    }

    if let Some((report, cfg)) = gate {
        let _ = writeln!(out, "\n## Regression gate vs baseline\n");
        let failures = report.failures(cfg);
        if failures.is_empty() {
            let _ = writeln!(
                out,
                "**PASS** — {} ok, {} improved, {} new, {} missing, {} host-slow.\n",
                report.count(Verdict::Ok),
                report.count(Verdict::Improved),
                report.count(Verdict::New),
                report.count(Verdict::Missing),
                report.count(Verdict::HostSlow),
            );
        } else {
            let _ = writeln!(
                out,
                "**FAIL** — {} offending key(s): {}\n",
                failures.len(),
                failures
                    .iter()
                    .map(|k| format!("`{}`", k.key))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        verdict_row(report, &mut out);
        let _ = writeln!(out, "\n## Top movers\n");
        top_movers(report, &mut out, top_n);
    }

    let _ = writeln!(out, "\n## Metric history\n");
    history_sparklines(history, &mut out);

    let _ = writeln!(out, "\n## Host self-profile\n");
    self_profile(history, sweep, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::compare;
    use crate::history::{lines_from_sweep, read_history};
    use crate::sweep::parse_sweep;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0]), "▄", "singleton sits mid-height");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▄▄▄", "flat series too");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[1.0, 0.0]), "█▁");
    }

    #[test]
    fn report_covers_every_section() {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let mut text = String::new();
        for sha in ["s1", "s2", "s3"] {
            for line in lines_from_sweep(&doc, sha) {
                text.push_str(&crate::history::encode_line(&line));
                text.push('\n');
            }
        }
        let history = read_history(&text).expect("parses");
        let cfg = GateConfig::default();
        let mut cur = doc.clone();
        cur.summaries[0].cycles += 1; // one regression to render
        let gate = compare(&history, &cur, &cfg);
        let md = render(&history, Some(&cur), Some((&gate, &cfg)), 5);
        for section in [
            "# ATAC bench report",
            "## Regression gate vs baseline",
            "**FAIL**",
            "## Top movers",
            "## Metric history",
            "## Host self-profile",
            "replay",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        assert!(md.contains(&cur.summaries[0].key));
        // Sparklines appear for the 3-sweep history.
        assert!(md.chars().any(|c| SPARK.contains(&c)));

        // A passing render without a gate still has history + profile.
        let md = render(&history, None, None, 5);
        assert!(!md.contains("Regression gate"));
        assert!(md.contains("## Metric history"));
    }
}
