//! Render `BENCH_report.md`: the human-readable face of the registry.
//!
//! The report answers, in order: *did anything regress* (gate verdicts
//! and delta table vs the baseline), *where is each metric heading*
//! (unicode sparkline per key over the recorded history), *what moved
//! most* (top movers by |Δ%|), and *where do the host seconds go* (the
//! merged self-profile breakdown). Markdown so it reads in a terminal,
//! a PR comment, or a CI artifact viewer alike.

use std::fmt::Write as _;

use atac_trace::{
    CacheOutcome, FlightEvent, FlightLog, NetProfile, SpanKind, LINKS_PER_ROUTER,
    OCC_BUCKET_LABELS, RUN_BUCKET_LABELS,
};

use crate::gate::{GateConfig, GateReport, Verdict};
use crate::history::History;
use crate::sweep::{PhaseProfile, SweepDoc};

/// Sparkline glyphs, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a value series as a unicode sparkline. A flat (or singleton)
/// series renders at mid-height; an empty series is empty.
pub fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi <= lo {
                SPARK[3]
            } else {
                let t = (v - lo) / (hi - lo);
                // index 0..=7; t is in 0..=1 so the cast is in range.
                SPARK[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Compact engineering formatting for mixed-magnitude metric values.
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if v == v.trunc() && a < 1e9 {
        format!("{v}")
    } else if !(1e-3..1e7).contains(&a) && v != 0.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn verdict_row(report: &GateReport, out: &mut String) {
    let _ = writeln!(out, "| key | verdict | detail |");
    let _ = writeln!(out, "|---|---|---|");
    for k in &report.keys {
        let mut detail = String::new();
        for d in &k.deltas {
            let _ = write!(
                detail,
                "{}`{}` {} → {} ({:+.2}%)",
                if detail.is_empty() { "" } else { "; " },
                d.metric,
                fmt_value(d.base),
                fmt_value(d.cur),
                d.pct()
            );
        }
        if let Some(h) = &k.host {
            let _ = write!(
                detail,
                "{}host {:.2}s vs {:.2}s median (bound {:.2}s)",
                if detail.is_empty() { "" } else { "; " },
                h.cur,
                h.median,
                h.bound
            );
        }
        let flag = match k.verdict {
            Verdict::Regressed => "**REGRESSED**",
            Verdict::HostSlow => "host-slow",
            Verdict::Improved => "improved",
            Verdict::Ok => "ok",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        };
        let _ = writeln!(out, "| `{}` | {flag} | {detail} |", k.key);
    }
}

/// Top-N keys by absolute percent change of one metric, from the gate's
/// deltas (which only exist where something changed).
fn top_movers(report: &GateReport, out: &mut String, top_n: usize) {
    let mut movers: Vec<(&str, &'static str, f64)> = report
        .keys
        .iter()
        .flat_map(|k| {
            k.deltas
                .iter()
                .map(move |d| (k.key.as_str(), d.metric, d.pct()))
        })
        .filter(|(_, _, pct)| pct.is_finite())
        .collect();
    movers.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
    movers.truncate(top_n);
    if movers.is_empty() {
        let _ = writeln!(out, "No simulated-metric changes vs the baseline.");
        return;
    }
    let _ = writeln!(out, "| key | metric | Δ% |");
    let _ = writeln!(out, "|---|---|---|");
    for (key, metric, pct) in movers {
        let _ = writeln!(out, "| `{key}` | {metric} | {pct:+.2}% |");
    }
}

fn history_sparklines(history: &History, out: &mut String) {
    let latest = history.latest_runs();
    if latest.is_empty() {
        let _ = writeln!(out, "History is empty — record a sweep first.");
        return;
    }
    let _ = writeln!(out, "| key | n | cycles | edp | host s |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for entry in latest {
        let series = history.series(&entry.metrics.key);
        let cycles: Vec<f64> = series.iter().map(|r| r.metrics.cycles as f64).collect();
        let edp: Vec<f64> = series.iter().map(|r| r.metrics.edp_js).collect();
        let host: Vec<f64> = series.iter().filter_map(|r| r.host_secs).collect();
        let _ = writeln!(
            out,
            "| `{}` | {} | {} {} | {} {} | {} |",
            entry.metrics.key,
            series.len(),
            sparkline(&cycles),
            fmt_value(entry.metrics.cycles as f64),
            sparkline(&edp),
            fmt_value(entry.metrics.edp_js),
            if host.is_empty() {
                "—".to_string()
            } else {
                format!("{} {:.2}", sparkline(&host), host[host.len() - 1])
            }
        );
    }
}

fn self_profile(history: &History, sweep: Option<&SweepDoc>, out: &mut String) {
    // Prefer the freshly-gated sweep's merged profile; fall back to the
    // most recent recorded sweep that carried one.
    let profile = sweep.and_then(|d| d.self_profile.as_ref()).or_else(|| {
        history
            .sweeps()
            .filter_map(|s| s.self_profile.as_ref())
            .last()
    });
    let Some(p) = profile else {
        let _ = writeln!(out, "No self-profile recorded (`ATAC_PROFILE=0`?).");
        return;
    };
    let tracked: f64 = p.phases.iter().map(|(_, s)| s).sum();
    let _ = writeln!(out, "| phase | seconds | share |");
    let _ = writeln!(out, "|---|---|---|");
    let mut phases: Vec<&(String, f64)> = p.phases.iter().collect();
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, secs) in phases {
        let _ = writeln!(
            out,
            "| {name} | {secs:.3} | {:.1}% |",
            secs / p.total_secs.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nPhase laps cover **{:.1}%** of {:.2}s total simulated-run wall time \
         (tracked {tracked:.2}s).",
        p.coverage * 100.0,
        p.total_secs
    );
}

/// Direction labels for the four mesh link ports, in `Port::idx` order.
const LINK_DIRS: [&str; 4] = ["N", "S", "E", "W"];

fn netmap_skip_table(np: &NetProfile, out: &mut String) {
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| cycles simulated | {} |", np.cycles);
    let _ = writeln!(
        out,
        "| router-cycles simulated | {} ({} routers) |",
        np.router_cycles(),
        np.routers.len()
    );
    let _ = writeln!(out, "| router ticks executed | {} |", np.router_ticks());
    let _ = writeln!(
        out,
        "| cycles skipped (per-router horizon) | {} ({:.1}% of router time) |",
        np.router_cycles_skipped(),
        np.router_skip_fraction() * 100.0
    );
    let _ = writeln!(out, "| network ticks executed | {} |", np.ticks_executed);
    let _ = writeln!(
        out,
        "| cycles skipped (whole-network gaps) | {} ({:.1}% of advanced time) |",
        np.cycles_skipped,
        np.skip_fraction() * 100.0
    );
    let _ = writeln!(out, "| skip-ahead jumps | {} |", np.skip_jumps);
    let _ = writeln!(
        out,
        "| wakeups (core / mem / net) | {} / {} / {} |",
        np.wake_core, np.wake_mem, np.wake_net
    );
    let _ = writeln!(
        out,
        "| epochs closed | {} ({} coalesced past their nominal span) |",
        np.epochs_closed, np.coalesced_epochs
    );
    let _ = writeln!(out, "| max epoch span | {} cycles |", np.max_epoch_span);
}

fn netmap_fastpath(np: &NetProfile, out: &mut String) {
    let grants = np.total_grants();
    if grants == 0 {
        let _ = writeln!(
            out,
            "No switch grants recorded (sweep predates the packet-granular \
             fast-path counters?)."
        );
        return;
    }
    let _ = writeln!(out, "| run length (flits/grant) | grants | share |");
    let _ = writeln!(out, "|---|---|---|");
    for (label, &v) in RUN_BUCKET_LABELS.iter().zip(&np.run_len_hist) {
        let _ = writeln!(
            out,
            "| {label} | {v} | {:.1}% |",
            v as f64 / grants as f64 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nMean flits per switch grant: **{:.2}** ({} flits over {grants} \
         grants); bucket 1 is the per-flit path (heads, tails, ejections), \
         higher buckets are bulk body-run transfers.",
        np.total_flits_routed() as f64 / grants as f64,
        np.total_flits_routed()
    );
    let arb = np.bitset_grants + np.scalar_grants;
    if arb > 0 {
        let _ = writeln!(
            out,
            "\nArbitration: {} grant(s) via the bitset arbiter, {} via the \
             scalar fallback ({:.1}% bitset).",
            np.bitset_grants,
            np.scalar_grants,
            np.bitset_grants as f64 / arb as f64 * 100.0
        );
    }
}

fn netmap_subphases(profile: Option<&PhaseProfile>, out: &mut String) {
    let Some(p) = profile.filter(|p| !p.net_phases.is_empty()) else {
        let _ = writeln!(out, "No sub-phase laps recorded (`ATAC_NETPROF=0`?).");
        return;
    };
    let tracked: f64 = p.net_phases.iter().map(|(_, s)| s).sum();
    let _ = writeln!(out, "| sub-phase | seconds | share of tracked |");
    let _ = writeln!(out, "|---|---|---|");
    let mut subs: Vec<&(String, f64)> = p.net_phases.iter().collect();
    subs.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, secs) in subs {
        let _ = writeln!(
            out,
            "| {name} | {secs:.3} | {:.1}% |",
            secs / tracked.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    if let Some(cov) = p.net_coverage {
        let _ = writeln!(
            out,
            "\nSub-phase laps cover **{:.1}%** of the measured `network` phase.",
            cov * 100.0
        );
    }
}

fn netmap_routers(np: &NetProfile, out: &mut String, top_n: usize) {
    if np.routers.is_empty() {
        let _ = writeln!(out, "No router activity observed.");
        return;
    }
    let flits: Vec<f64> = np.routers.iter().map(|r| r.flits_routed as f64).collect();
    let _ = writeln!(
        out,
        "Heat strip (flits routed, router 0 → {}):\n\n```\n{}\n```\n",
        np.routers.len() - 1,
        sparkline(&flits)
    );
    let mut order: Vec<usize> = (0..np.routers.len()).collect();
    order.sort_by(|&a, &b| {
        np.routers[b]
            .flits_routed
            .cmp(&np.routers[a].flits_routed)
            .then(a.cmp(&b))
    });
    order.truncate(top_n);
    let _ = writeln!(
        out,
        "Top {} hotspot router(s); occupancy histogram buckets are {}:\n",
        order.len(),
        OCC_BUCKET_LABELS.join("/")
    );
    let _ = writeln!(
        out,
        "| router | flits | credit-stall cyc | active cyc | idle % | mean occ | occ hist |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for r in order {
        let ro = &np.routers[r];
        let hist: Vec<f64> = ro.occupancy_hist.iter().map(|&v| v as f64).collect();
        let _ = writeln!(
            out,
            "| r{r} | {} | {} | {} | {:.1}% | {:.2} | {} |",
            ro.flits_routed,
            ro.credit_stall_cycles,
            ro.active_cycles,
            ro.idle_fraction(np.cycles) * 100.0,
            ro.mean_occupancy(),
            sparkline(&hist)
        );
    }
}

fn netmap_links(np: &NetProfile, out: &mut String, top_n: usize) {
    let mut links: Vec<(usize, u64)> = np
        .link_flits
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, f)| f > 0)
        .collect();
    if links.is_empty() {
        let _ = writeln!(out, "No mesh-link traffic observed.");
        return;
    }
    links.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    links.truncate(top_n);
    let _ = writeln!(out, "| link | flits |");
    let _ = writeln!(out, "|---|---|");
    for (idx, f) in links {
        let _ = writeln!(
            out,
            "| r{}→{} | {f} |",
            idx / LINKS_PER_ROUTER,
            LINK_DIRS[idx % LINKS_PER_ROUTER]
        );
    }
}

fn netmap_hubs(np: &NetProfile, out: &mut String) {
    let clusters = np.hub_unicast_flits.len().max(np.hub_broadcast_flits.len());
    if clusters == 0 {
        let _ = writeln!(out, "No hub (optical) traffic observed.");
        return;
    }
    let _ = writeln!(out, "| cluster | unicast flits | broadcast flits |");
    let _ = writeln!(out, "|---|---|---|");
    for c in 0..clusters {
        let _ = writeln!(
            out,
            "| c{c} | {} | {} |",
            np.hub_unicast_flits.get(c).copied().unwrap_or(0),
            np.hub_broadcast_flits.get(c).copied().unwrap_or(0)
        );
    }
}

/// Render the standalone network-microscope page from a sweep's merged
/// cycle-domain counters: skip-ahead efficacy, sub-phase attribution,
/// the per-router heat table, hottest links, and hub traffic. Returns
/// `None` when no run in the sweep carried a `netprof` block
/// (instrument with `ATAC_NETPROF=1`).
pub fn render_netmap(doc: &SweepDoc, top_n: usize) -> Option<String> {
    let np = doc.merged_netprof()?;
    let observed = doc.runs.iter().filter(|r| r.netprof.is_some()).count();
    let mut out = String::new();
    let _ = writeln!(out, "# ATAC network microscope");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Cycle-domain counters aggregated over {observed} observed run(s) \
         of {} in the sweep: {} flit(s) routed, {} credit-stall cycle(s).",
        doc.runs.len(),
        np.total_flits_routed(),
        np.total_credit_stalls()
    );
    let _ = writeln!(out, "\n## Skip-ahead efficacy\n");
    netmap_skip_table(&np, &mut out);
    let _ = writeln!(out, "\n## Wormhole fast path\n");
    netmap_fastpath(&np, &mut out);
    let _ = writeln!(out, "\n## Network sub-phase attribution\n");
    netmap_subphases(doc.self_profile.as_ref(), &mut out);
    let _ = writeln!(out, "\n## Router heat\n");
    netmap_routers(&np, &mut out, top_n);
    let _ = writeln!(out, "\n## Hottest links\n");
    netmap_links(&np, &mut out, top_n);
    let _ = writeln!(out, "\n## Hub (optical) traffic\n");
    netmap_hubs(&np, &mut out);
    Some(out)
}

/// Timeline resolution for the per-worker utilization strips.
const FLIGHT_BUCKETS: usize = 48;

fn flight_workers(log: &FlightLog, out: &mut String) {
    // audit: order-stable — single-threaded walk of the journal's fixed
    // event order; the bucket/busy sums see the same operand sequence on
    // every render of the same journal.
    let wall = log.wall_s.max(f64::MIN_POSITIVE);
    let _ = writeln!(
        out,
        "Each strip tiles the sweep's {wall:.2}s wall clock into {FLIGHT_BUCKETS} \
         buckets; bar height is the fraction of that bucket the worker spent \
         inside a run (claim/simulate/publish).\n"
    );
    let _ = writeln!(out, "| worker | busy % | runs | timeline |");
    let _ = writeln!(out, "|---|---|---|---|");
    let mut pool_busy = 0.0;
    for w in 0..log.jobs {
        let mut busy_secs = 0.0;
        let mut runs = 0u64;
        let mut buckets = vec![0.0f64; FLIGHT_BUCKETS];
        for (worker, kind, _, start, end) in log.spans() {
            if worker != w || kind == SpanKind::Idle {
                continue;
            }
            busy_secs += end - start;
            if kind == SpanKind::Simulate {
                runs += 1;
            }
            // Spread the span's seconds over the buckets it overlaps.
            let step = wall / FLIGHT_BUCKETS as f64;
            for (b, slot) in buckets.iter_mut().enumerate() {
                let (b_lo, b_hi) = (b as f64 * step, (b as f64 + 1.0) * step);
                let overlap = (end.min(b_hi) - start.max(b_lo)).max(0.0);
                *slot += overlap / step;
            }
        }
        pool_busy += busy_secs;
        let _ = writeln!(
            out,
            "| w{w} | {:.1}% | {runs} | `{}` |",
            busy_secs / wall * 100.0,
            sparkline(&buckets)
        );
    }
    let _ = writeln!(
        out,
        "\nPool utilization: **{:.1}%** of {} worker(s) × {wall:.2}s.",
        pool_busy / (wall * log.jobs.max(1) as f64) * 100.0,
        log.jobs
    );
}

fn flight_stragglers(log: &FlightLog, out: &mut String, top_n: usize) {
    let mut sims: Vec<(&str, u64, f64, f64)> = log
        .spans()
        .filter(|&(_, kind, key, ..)| kind == SpanKind::Simulate && key.is_some())
        .map(|(worker, _, key, start, end)| (key.unwrap_or(""), worker, start, end - start))
        .collect();
    if sims.is_empty() {
        let _ = writeln!(out, "No keys were simulated (a fully warm cache).");
        return;
    }
    sims.sort_by(|a, b| b.3.total_cmp(&a.3).then(a.0.cmp(b.0)));
    sims.truncate(top_n);
    let wall = log.wall_s.max(f64::MIN_POSITIVE);
    let _ = writeln!(out, "| key | worker | start s | secs | share of wall |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (key, worker, start, secs) in sims {
        let _ = writeln!(
            out,
            "| `{key}` | w{worker} | {start:.2} | {secs:.2} | {:.1}% |",
            secs / wall * 100.0
        );
    }
}

fn flight_cache(log: &FlightLog, out: &mut String) {
    let (hits, misses, waits) = (
        log.outcome_count(CacheOutcome::Hit),
        log.outcome_count(CacheOutcome::Miss),
        log.outcome_count(CacheOutcome::Wait),
    );
    let torn = log.cache_events().filter(|&(_, _, torn)| torn).count();
    let total = hits + misses + waits;
    let _ = writeln!(out, "| outcome | count | share |");
    let _ = writeln!(out, "|---|---|---|");
    for (name, n) in [
        ("hit", hits),
        ("miss", misses),
        ("single-flight wait", waits),
    ] {
        let _ = writeln!(
            out,
            "| {name} | {n} | {:.1}% |",
            n as f64 / (total.max(1)) as f64 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\n{total} planned key(s); {torn} torn-record recover(ies) among the misses."
    );
}

/// Greedy list-scheduling replay: walk `durations` in order, assigning
/// each to the earliest-free of `jobs` workers; return the makespan.
fn list_makespan(durations: &[f64], jobs: usize) -> f64 {
    let mut free = vec![0.0f64; jobs.max(1)];
    for &d in durations {
        let next = free
            .iter_mut()
            .reduce(|a, b| if b.total_cmp(a).is_lt() { b } else { a })
            .expect("at least one worker");
        *next += d;
    }
    free.into_iter().fold(0.0, f64::max)
}

fn flight_scheduling(log: &FlightLog, out: &mut String) {
    // Actual simulate seconds per key, from the span stream.
    let durations: std::collections::BTreeMap<&str, f64> = log
        .spans()
        .filter(|&(_, kind, key, ..)| kind == SpanKind::Simulate && key.is_some())
        .map(|(_, _, key, start, end)| (key.unwrap_or(""), end - start))
        .collect();
    let mut sched: Vec<(&str, u64, u64, Option<f64>)> = log
        .events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::Sched {
                key,
                declared,
                scheduled,
                expected_s,
            } => Some((key.as_str(), *declared, *scheduled, *expected_s)),
            _ => None,
        })
        .collect();
    if sched.is_empty() || durations.is_empty() {
        let _ = writeln!(
            out,
            "No scheduling decisions to replay (nothing simulated, or the \
             journal predates the cost-aware scheduler)."
        );
        return;
    }
    let priced = sched.iter().filter(|s| s.3.is_some()).count();
    let moved = sched.iter().filter(|s| s.1 != s.2).count();
    // Replay greedy list scheduling of the *actual* durations in both
    // orders: what the declared plan would have cost vs what the
    // cost-aware order did cost.
    sched.sort_by_key(|s| s.1);
    let declared: Vec<f64> = sched
        .iter()
        .filter_map(|s| durations.get(s.0).copied())
        .collect();
    sched.sort_by_key(|s| s.2);
    let scheduled: Vec<f64> = sched
        .iter()
        .filter_map(|s| durations.get(s.0).copied())
        .collect();
    let jobs = log.jobs.max(1) as usize;
    let (m_decl, m_sched) = (
        list_makespan(&declared, jobs),
        list_makespan(&scheduled, jobs),
    );
    let _ = writeln!(
        out,
        "{} missing key(s) scheduled, {priced} priced from history, {moved} \
         moved off declared order.\n",
        sched.len()
    );
    let _ = writeln!(out, "| order | replayed makespan |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| declared | {m_decl:.2}s |");
    let _ = writeln!(out, "| cost-aware (executed) | {m_sched:.2}s |");
    let pct = (m_decl - m_sched) / m_decl.max(f64::MIN_POSITIVE) * 100.0;
    let _ = writeln!(
        out,
        "\nGreedy replay of the measured per-key seconds puts the cost-aware \
         order at **{pct:+.1}%** makespan vs the declared order ({jobs} workers)."
    );
}

fn flight_memory(log: &FlightLog, out: &mut String) {
    let samples: Vec<f64> = log
        .events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::Rss { bytes, .. } => Some(*bytes as f64),
            _ => None,
        })
        .collect();
    let _ = writeln!(
        out,
        "Peak RSS **{:.1} MiB** over {} sample(s).",
        log.peak_rss_bytes as f64 / (1u64 << 20) as f64,
        samples.len()
    );
    if samples.len() > 1 {
        let _ = writeln!(out, "\n```\n{}\n```", sparkline(&samples));
    }
}

/// Render the standalone flight-recorder page from a parsed journal:
/// per-worker utilization timeline, straggler table, cache-outcome
/// breakdown, scheduling replay, and the RSS high-water mark.
pub fn render_flight(log: &FlightLog, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ATAC sweep flight recorder");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} worker(s) over {} planned key(s): {} simulated in {:.2}s wall; \
         {} journal event(s).",
        log.jobs,
        log.planned,
        log.runs,
        log.wall_s,
        log.events.len()
    );
    if log.skipped > 0 {
        let _ = writeln!(
            out,
            "({} newer-schema event(s) skipped by this reader.)",
            log.skipped
        );
    }
    let _ = writeln!(out, "\n## Worker utilization\n");
    flight_workers(log, &mut out);
    let _ = writeln!(out, "\n## Stragglers\n");
    flight_stragglers(log, &mut out, top_n);
    let _ = writeln!(out, "\n## Cache outcomes\n");
    flight_cache(log, &mut out);
    let _ = writeln!(out, "\n## Cost-aware scheduling\n");
    flight_scheduling(log, &mut out);
    let _ = writeln!(out, "\n## Memory\n");
    flight_memory(log, &mut out);
    out
}

/// Render the full report. `gate` is present when a baseline was given;
/// `sweep` is the current sweep being reported on, when available.
pub fn render(
    history: &History,
    sweep: Option<&SweepDoc>,
    gate: Option<(&GateReport, &GateConfig)>,
    top_n: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ATAC bench report");
    let _ = writeln!(out);
    let last_sha = history
        .runs()
        .last()
        .map_or("(none)", |r| r.sha.as_str())
        .to_string();
    let _ = writeln!(
        out,
        "{} recorded sweep(s), {} run record(s) over {} key(s); latest sha `{last_sha}`.",
        history.sweeps().count(),
        history.runs().count(),
        history.latest_runs().len(),
    );
    if history.skipped > 0 {
        let _ = writeln!(
            out,
            "({} newer-schema line(s) skipped by this reader.)",
            history.skipped
        );
    }

    if let Some((report, cfg)) = gate {
        let _ = writeln!(out, "\n## Regression gate vs baseline\n");
        let failures = report.failures(cfg);
        if failures.is_empty() {
            let _ = writeln!(
                out,
                "**PASS** — {} ok, {} improved, {} new, {} missing, {} host-slow.\n",
                report.count(Verdict::Ok),
                report.count(Verdict::Improved),
                report.count(Verdict::New),
                report.count(Verdict::Missing),
                report.count(Verdict::HostSlow),
            );
        } else {
            let _ = writeln!(
                out,
                "**FAIL** — {} offending key(s): {}\n",
                failures.len(),
                failures
                    .iter()
                    .map(|k| format!("`{}`", k.key))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        verdict_row(report, &mut out);
        let _ = writeln!(out, "\n## Top movers\n");
        top_movers(report, &mut out, top_n);
    }

    let _ = writeln!(out, "\n## Metric history\n");
    history_sparklines(history, &mut out);

    let _ = writeln!(out, "\n## Host self-profile\n");
    self_profile(history, sweep, &mut out);

    if let Some(np) = sweep.and_then(SweepDoc::merged_netprof) {
        let _ = writeln!(out, "\n## Network microscope\n");
        let _ = writeln!(
            out,
            "{} flit(s) routed, {} credit-stall cycle(s), {:.1}% of advanced \
             time skipped ahead. Full detail: `atac-report netmap`.\n",
            np.total_flits_routed(),
            np.total_credit_stalls(),
            np.skip_fraction() * 100.0
        );
        netmap_routers(&np, &mut out, top_n);
        let _ = writeln!(out, "\n### Network sub-phase attribution\n");
        netmap_subphases(sweep.and_then(|d| d.self_profile.as_ref()), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::compare;
    use crate::history::{lines_from_sweep, read_history};
    use crate::sweep::parse_sweep;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0]), "▄", "singleton sits mid-height");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▄▄▄", "flat series too");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[1.0, 0.0]), "█▁");
    }

    #[test]
    fn report_covers_every_section() {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let mut text = String::new();
        for sha in ["s1", "s2", "s3"] {
            for line in lines_from_sweep(&doc, sha) {
                text.push_str(&crate::history::encode_line(&line));
                text.push('\n');
            }
        }
        let history = read_history(&text).expect("parses");
        let cfg = GateConfig::default();
        let mut cur = doc.clone();
        cur.summaries[0].cycles += 1; // one regression to render
        let gate = compare(&history, &cur, &cfg);
        let md = render(&history, Some(&cur), Some((&gate, &cfg)), 5);
        for section in [
            "# ATAC bench report",
            "## Regression gate vs baseline",
            "**FAIL**",
            "## Top movers",
            "## Metric history",
            "## Host self-profile",
            "replay",
            "## Network microscope",
            "| r0 |",
            "Sub-phase laps cover",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        assert!(md.contains(&cur.summaries[0].key));
        // Sparklines appear for the 3-sweep history.
        assert!(md.chars().any(|c| SPARK.contains(&c)));

        // A passing render without a gate still has history + profile.
        let md = render(&history, None, None, 5);
        assert!(!md.contains("Regression gate"));
        assert!(md.contains("## Metric history"));
        assert!(
            !md.contains("Network microscope"),
            "no sweep → no netmap section"
        );
    }

    #[test]
    fn flight_page_renders_every_section() {
        let span = |worker, kind, key: Option<&str>, start_s, end_s| FlightEvent::Span {
            worker,
            kind,
            key: key.map(str::to_string),
            start_s,
            end_s,
        };
        let log = FlightLog {
            jobs: 2,
            planned: 3,
            events: vec![
                FlightEvent::Cache {
                    key: "c".into(),
                    outcome: CacheOutcome::Hit,
                    torn: false,
                },
                FlightEvent::Sched {
                    key: "a".into(),
                    declared: 0,
                    scheduled: 1,
                    expected_s: Some(1.0),
                },
                FlightEvent::Sched {
                    key: "b".into(),
                    declared: 1,
                    scheduled: 0,
                    expected_s: Some(3.0),
                },
                span(0, SpanKind::Idle, None, 0.0, 0.1),
                span(0, SpanKind::Claim, Some("b"), 0.1, 0.2),
                span(0, SpanKind::Simulate, Some("b"), 0.2, 3.2),
                span(0, SpanKind::Publish, Some("b"), 3.2, 3.3),
                FlightEvent::Cache {
                    key: "b".into(),
                    outcome: CacheOutcome::Miss,
                    torn: true,
                },
                span(1, SpanKind::Simulate, Some("a"), 0.1, 1.1),
                FlightEvent::Cache {
                    key: "a".into(),
                    outcome: CacheOutcome::Miss,
                    torn: false,
                },
                FlightEvent::Queue {
                    t_s: 0.1,
                    pending: 1,
                    busy: 1,
                },
                FlightEvent::Rss {
                    t_s: 0.5,
                    bytes: 50 << 20,
                },
                FlightEvent::Rss {
                    t_s: 1.5,
                    bytes: 80 << 20,
                },
            ],
            wall_s: 3.5,
            runs: 2,
            peak_rss_bytes: 80 << 20,
            skipped: 0,
        };
        let md = render_flight(&log, 5);
        for section in [
            "# ATAC sweep flight recorder",
            "2 worker(s) over 3 planned key(s): 2 simulated in 3.50s wall",
            "## Worker utilization",
            "| w0 |",
            "| w1 |",
            "Pool utilization:",
            "## Stragglers",
            "| `b` | w0 | 0.20 | 3.00 |",
            "## Cache outcomes",
            "| hit | 1 |",
            "| miss | 2 |",
            "| single-flight wait | 0 |",
            "1 torn-record recover(ies)",
            "## Cost-aware scheduling",
            "2 missing key(s) scheduled, 2 priced from history, 2 moved",
            "| declared | 3.00s |",
            "| cost-aware (executed) | 3.00s |",
            "## Memory",
            "Peak RSS **80.0 MiB** over 2 sample(s).",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        // Straggler ordering: the 3s simulate outranks the 1s one.
        let b = md.find("| `b` | w0 |").expect("b row");
        let a = md.find("| `a` | w1 |").expect("a row");
        assert!(b < a, "stragglers ordered by duration, descending");
        assert!(md.chars().any(|c| SPARK.contains(&c)), "strips render");
    }

    #[test]
    fn list_scheduling_replay_is_greedy() {
        // One worker: makespan is the plain sum regardless of order.
        assert_eq!(list_makespan(&[3.0, 1.0, 2.0], 1), 6.0);
        // Two workers, LPT order packs [4] vs [3,2]: makespan 5.
        assert_eq!(list_makespan(&[4.0, 3.0, 2.0], 2), 5.0);
        // Same durations, worst declared order [2,3] vs [4] → 4+... :
        // greedy assigns 2→w0, 3→w1, 4→w0 ⇒ w0=6.
        assert_eq!(list_makespan(&[2.0, 3.0, 4.0], 2), 6.0);
        assert_eq!(list_makespan(&[], 4), 0.0);
    }

    #[test]
    fn netmap_page_renders_every_section() {
        let doc = parse_sweep(crate::sweep::SAMPLE).expect("fixture parses");
        let md = render_netmap(&doc, 5).expect("fixture carries a netprof block");
        for section in [
            "# ATAC network microscope",
            "## Skip-ahead efficacy",
            "| skip-ahead jumps | 150 |",
            // 2 routers × 500000 cycles, 90000 + 45000 active.
            "| router-cycles simulated | 1000000 (2 routers) |",
            "| cycles skipped (per-router horizon) | 865000 (86.5% of router time) |",
            "## Wormhole fast path",
            // run_hist [150, 60, 20, 0, 0, 0] → 230 grants, 320 flits.
            "| 1 | 150 | 65.2% |",
            "| 3-4 | 20 | 8.7% |",
            "Mean flits per switch grant: **1.39** (320 flits over 230 grants)",
            "Arbitration: 220 grant(s) via the bitset arbiter, 10 via the \
             scalar fallback (95.7% bitset).",
            "## Network sub-phase attribution",
            "route_compute",
            "## Router heat",
            "| r0 | 200 |",
            "## Hottest links",
            "| r0→N | 120 |",
            "## Hub (optical) traffic",
            "| c0 | 400 | 80 |",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        // Hotspot ordering: r0 (200 flits) before r1 (120 flits).
        let r0 = md.find("| r0 | 200").expect("r0 row");
        let r1 = md.find("| r1 | 120").expect("r1 row");
        assert!(r0 < r1, "routers ordered by flits routed, descending");

        // A sweep without netprof blocks renders no page at all.
        let mut bare = doc.clone();
        for run in &mut bare.runs {
            run.netprof = None;
        }
        assert!(render_netmap(&bare, 5).is_none());
    }
}
