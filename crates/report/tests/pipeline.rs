//! End-to-end coupling test: the *actual* `atac-bench` `SweepLog`
//! emitter feeds the report pipeline — sweep parse → history record →
//! regression gate → markdown render. If either side drifts its schema,
//! this test (not a CI artifact mismatch three PRs later) breaks.

use std::path::Path;

use atac::phys::units::{JouleSeconds, Joules, Seconds};
use atac::trace::{HostPhase, HostProfile};
use atac_bench::{RunSource, RunSummary, RunTiming, SweepLog, SweepReport};
use atac_report::{compare, lines_from_sweep, parse_sweep, read_history, GateConfig, Verdict};

fn summary(key: &str, bench: &str, cycles: u64) -> RunSummary {
    RunSummary {
        key: key.to_string(),
        bench: bench.to_string(),
        cycles,
        instructions: 4 * cycles,
        ipc: 4.0,
        runtime: Seconds(cycles as f64 * 1e-9),
        energy: Joules(0.125),
        edp: JouleSeconds(0.125 * cycles as f64 * 1e-9),
        latency_p50: 15,
        latency_p95: 63,
        latency_p99: 127,
        latency_max: 90,
        latency_count: 10_000,
    }
}

fn profile(replay: f64, network: f64) -> HostProfile {
    let mut p = HostProfile::zero();
    p.secs[HostPhase::Replay.index()] = replay;
    p.secs[HostPhase::Network.index()] = network;
    p.total_secs = (replay + network) * 1.02;
    p
}

/// A two-key sweep through the real emitter.
fn emit_sweep(cycles_a: u64, host_secs: f64) -> String {
    let report = SweepReport {
        jobs: 4,
        planned: 2,
        cached_hits: 0,
        wall_secs: host_secs + 0.5,
        runs: vec![
            RunTiming {
                key: "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix".into(),
                secs: host_secs,
                source: RunSource::Simulated,
                profile: Some(profile(host_secs * 0.6, host_secs * 0.4)),
                netprof: None,
            },
            RunTiming {
                key: "8x4|emesh-pure|flit64|buf4|ackwise4|radix".into(),
                secs: 0.002,
                source: RunSource::CacheHit,
                profile: None,
                netprof: None,
            },
        ],
        summaries: vec![
            summary(
                "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix",
                "radix",
                cycles_a,
            ),
            summary(
                "8x4|emesh-pure|flit64|buf4|ackwise4|radix",
                "radix",
                800_000,
            ),
        ],
        peak_rss_bytes: 96 << 20,
        flight: None,
    };
    let mut log = SweepLog::new(4);
    log.phase("warm", host_secs + 0.5);
    log.phase("total", host_secs + 0.6);
    log.absorb(&report);
    log.to_json()
}

#[test]
fn sweeplog_output_flows_through_record_gate_and_render() {
    let dir = std::env::temp_dir().join(format!("atac-report-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let history_path = dir.join("history.jsonl");
    let _ = std::fs::remove_file(&history_path);

    // Record two identical sweeps (different SHAs) into the registry —
    // that gives the gate a real median for host seconds.
    let baseline_json = emit_sweep(500_000, 5.0);
    let doc = parse_sweep(&baseline_json).expect("SweepLog output parses");
    assert_eq!(doc.schema, "atac-bench-sweep-v4");
    assert_eq!(doc.summaries.len(), 2);
    let stats = doc.executor.expect("v4 sweeps carry executor self-metrics");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.peak_rss_bytes, 96 << 20);
    let prof = doc.runs[0].profile.as_ref().expect("profiled run");
    assert!(prof.coverage > 0.9);
    atac_report::append_lines(&history_path, &lines_from_sweep(&doc, "sha-a")).expect("append");
    let doc_b = parse_sweep(&emit_sweep(500_000, 5.4)).expect("parses");
    atac_report::append_lines(&history_path, &lines_from_sweep(&doc_b, "sha-b")).expect("append");

    let baseline_text = std::fs::read_to_string(&history_path).expect("readable");
    let baseline = read_history(&baseline_text).expect("parses");
    assert_eq!(baseline.sweeps().count(), 2);
    assert_eq!(
        baseline.host_samples("8x4|atac[distance-15]|flit64|buf4|ackwise4|radix"),
        vec![5.0, 5.4]
    );

    // Path 1: an identical sweep passes the gate.
    let cfg = GateConfig {
        strict_host: true,
        require_all: true,
        ..GateConfig::default()
    };
    let same = parse_sweep(&emit_sweep(500_000, 5.1)).expect("parses");
    let report = compare(&baseline, &same, &cfg);
    assert!(report.passed(&cfg), "{}", report.table());
    assert_eq!(report.count(Verdict::Ok), 2);

    // Path 2: a 10% simulated-cycle regression fails, naming the key.
    let slow = parse_sweep(&emit_sweep(550_000, 5.1)).expect("parses");
    let report = compare(&baseline, &slow, &cfg);
    assert!(!report.passed(&cfg));
    let failures = report.failures(&cfg);
    assert_eq!(failures.len(), 1);
    assert_eq!(
        failures[0].key,
        "8x4|atac[distance-15]|flit64|buf4|ackwise4|radix"
    );
    // cycles, runtime and edp all moved together (they derive from
    // cycles), and all in the regression direction.
    let worse: Vec<&str> = failures[0].deltas.iter().map(|d| d.metric).collect();
    assert!(worse.contains(&"cycles"));
    assert!(worse.contains(&"edp_js"));
    assert!(worse.contains(&"instructions"), "4×cycles drifted too");

    // Render the failing report end to end.
    let md = atac_report::render(&baseline, Some(&slow), Some((&report, &cfg)), 10);
    let out = dir.join("report.md");
    atac_report::write_text(&out, &md).expect("write");
    let md = std::fs::read_to_string(&out).expect("readable");
    assert!(md.contains("**FAIL**"));
    assert!(md.contains("8x4|atac[distance-15]|flit64|buf4|ackwise4|radix"));
    assert!(md.contains("## Host self-profile"));
    assert!(md.contains("replay"), "profile phases render");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The executor's profile JSON and the report's profile reader agree on
/// phase vocabulary: every `HostPhase::name` the emitter can produce
/// parses back out of the sweep.
#[test]
fn host_phase_vocabulary_roundtrips() {
    let mut p = HostProfile::zero();
    for (i, phase) in HostPhase::ALL.into_iter().enumerate() {
        p.secs[phase.index()] = (i + 1) as f64;
    }
    p.total_secs = p.tracked_secs();
    let report = SweepReport {
        jobs: 1,
        planned: 1,
        cached_hits: 0,
        wall_secs: p.total_secs,
        runs: vec![RunTiming {
            key: "k".into(),
            secs: p.total_secs,
            source: RunSource::Simulated,
            profile: Some(p),
            netprof: None,
        }],
        summaries: vec![summary("k", "radix", 1000)],
        peak_rss_bytes: 0,
        flight: None,
    };
    let mut log = SweepLog::new(1);
    log.absorb(&report);
    let doc = parse_sweep(&log.to_json()).expect("parses");
    let parsed = doc.self_profile.as_ref().expect("merged profile present");
    for phase in HostPhase::ALL {
        assert!(
            parsed.phases.iter().any(|(n, _)| n == phase.name()),
            "phase `{}` lost in the sweep roundtrip",
            phase.name()
        );
    }
    assert!(Path::new("Cargo.toml").exists(), "runs at crate root");
}
