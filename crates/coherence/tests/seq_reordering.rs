//! Directed §IV-C-1 tests: force out-of-order unicast/broadcast
//! delivery and check the sequence-number machinery's observable
//! behaviour.
//!
//! The integration stress tests rely on timing-dependent reordering; the
//! scripted network here makes the reorder *deterministic* by giving
//! unicasts and broadcasts asymmetric fixed latencies:
//!
//! * broadcasts slower than unicasts → a home→core unicast stamped with
//!   a newer sequence number overtakes the broadcast and must be **held**
//!   (`seq_buffered_unicasts`);
//! * unicasts slower than broadcasts → a broadcast invalidate lands
//!   while the receiving core's own `ShReq` for the line is outstanding
//!   and must be **buffered at the MSHR** (`seq_buffered_broadcasts`).
//!
//! Horizon monotonicity is enforced throughout by the debug-assert
//! sanitizer in `core_msg` (an out-of-order release would panic these
//! runs, which execute with `debug_assertions` on).

use atac_coherence::{AccessResult, Addr, LineState, MemorySystem, ProtocolKind};
use atac_net::{CoreId, Cycle, Delivery, Dest, Message, NetStats, Network, Topology};

fn topo() -> Topology {
    Topology::small(8, 4) // 64 cores
}

/// A scripted network with fixed per-class latencies and infinite
/// bandwidth: unicasts arrive `unicast_lat` cycles after injection,
/// broadcast copies `bcast_lat` cycles after. Per-class FIFO order is
/// preserved (constant latency); cross-class reordering is the point.
struct LatencyNet {
    topo: Topology,
    unicast_lat: Cycle,
    bcast_lat: Cycle,
    inflight: Vec<(Cycle, Delivery)>,
    ready: Vec<Delivery>,
}

impl LatencyNet {
    fn new(topo: Topology, unicast_lat: Cycle, bcast_lat: Cycle) -> Self {
        LatencyNet {
            topo,
            unicast_lat,
            bcast_lat,
            inflight: Vec::new(),
            ready: Vec::new(),
        }
    }
}

impl Network for LatencyNet {
    fn try_send(&mut self, msg: Message, now: Cycle) -> bool {
        match msg.dest {
            Dest::Unicast(to) => self.inflight.push((
                now + self.unicast_lat,
                Delivery {
                    msg,
                    receiver: to,
                    at: now + self.unicast_lat,
                },
            )),
            Dest::Broadcast => {
                for c in 0..self.topo.cores() {
                    let receiver = CoreId(u16::try_from(c).expect("≤ 1024 cores"));
                    if receiver == msg.src {
                        continue;
                    }
                    self.inflight.push((
                        now + self.bcast_lat,
                        Delivery {
                            msg,
                            receiver,
                            at: now + self.bcast_lat,
                        },
                    ));
                }
            }
        }
        true
    }

    fn tick(&mut self, now: Cycle) {
        // Stable partition keeps insertion (per-class FIFO) order.
        let mut still = Vec::new();
        for (due, d) in self.inflight.drain(..) {
            if due <= now {
                self.ready.push(d);
            } else {
                still.push((due, d));
            }
        }
        self.inflight = still;
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.ready);
    }

    fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.ready.is_empty()
    }

    fn flit_width(&self) -> u32 {
        64
    }

    fn cores(&self) -> usize {
        self.topo.cores()
    }

    fn stats(&self) -> NetStats {
        NetStats::default()
    }

    fn name(&self) -> &'static str {
        "Scripted-Latency"
    }
}

/// Run a schedule of (issue_cycle, core, addr, is_write) operations to
/// quiescence and return the memory system for inspection.
fn run_schedule(
    net: &mut LatencyNet,
    ms: &mut MemorySystem,
    schedule: &[(Cycle, u16, Addr, bool)],
) {
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut completed: Vec<CoreId> = Vec::new();
    let mut issued = vec![false; schedule.len()];
    let mut now: Cycle = 0;
    loop {
        for (i, &(t, core, addr, w)) in schedule.iter().enumerate() {
            if !issued[i] && t <= now {
                issued[i] = true;
                // Directed schedules never double-issue on one core.
                let r = ms.access(CoreId(core), addr, w);
                assert!(matches!(r, AccessResult::Miss), "schedule op must miss");
            }
        }
        ms.flush_outbox(net, now);
        net.tick(now);
        net.drain_deliveries(&mut deliveries);
        for d in deliveries.drain(..) {
            ms.handle_delivery(&d, now);
        }
        ms.memctrl_tick(now);
        ms.drain_completions(&mut completed);
        completed.clear();
        ms.check_invariants(false); // single-writer must hold every cycle
        now += 1;
        if issued.iter().all(|&b| b) && ms.is_quiescent() && net.is_idle() {
            break;
        }
        assert!(now < 100_000, "directed schedule did not quiesce");
    }
    ms.check_invariants(true);
}

/// Install `sharers` as S-state holders of `addr` over an instant
/// network, leaving the ACKwise directory in the overflowed (global-bit)
/// regime when `sharers.len() > k`.
fn seed_sharers(ms: &mut MemorySystem, net: &mut LatencyNet, addr: Addr, sharers: &[u16]) {
    let schedule: Vec<(Cycle, u16, Addr, bool)> = sharers
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                Cycle::try_from(i).expect("small schedule") * 40,
                c,
                addr,
                false,
            )
        })
        .collect();
    run_schedule(net, ms, &schedule);
    for &c in sharers {
        assert_eq!(ms.l2_state(CoreId(c), addr), LineState::S);
    }
}

/// A second line with the same home core as `a`, far enough away to
/// avoid any cache-set interaction.
fn same_home_line(a: Addr, t: &Topology) -> Addr {
    let home = a.home(t);
    (1..10_000u64)
        .map(|i| Addr(a.0 + i * 64))
        .find(|b| b.home(t) == home)
        .expect("another line maps to the same home")
}

/// Broadcasts slower than unicasts: a ShRep stamped with the new
/// sequence number overtakes the invalidation broadcast, so the
/// receiving core must hold it until the broadcast arrives
/// (`seq_buffered_unicasts`, paper §IV-C-1 case 1).
#[test]
fn overtaking_unicast_is_held_until_broadcast_lands() {
    let t = topo();
    let a = Addr(0x8000);
    let b = same_home_line(a, &t);
    let home = a.home(&t);
    // Sharers/actors away from the home core and from each other.
    let cast: Vec<u16> = (0..64u16).filter(|&c| CoreId(c) != home).collect();
    let sharers = &cast[0..6]; // 6 > k=4 → overflow → broadcast on write
    let writer = cast[7];
    let reader = cast[8];

    let mut net = LatencyNet::new(t, 1, 400);
    let mut ms = MemorySystem::new(t, ProtocolKind::AckWise { k: 4 });
    seed_sharers(&mut ms, &mut net, a, sharers);
    assert_eq!(ms.stats.sharer_overflows, 1);

    let before = ms.stats.seq_buffered_unicasts;
    // Writer triggers the broadcast (seq 1) at ~cycle 2; the reader's
    // ShReq for the same-home line b is answered with a ShRep stamped
    // seq 1 which, at 1-cycle unicast latency, reaches the reader ~390
    // cycles before the broadcast does.
    run_schedule(
        &mut net,
        &mut ms,
        &[(0, writer, a, true), (20, reader, b, false)],
    );

    assert_eq!(ms.stats.inv_broadcasts, 1);
    assert!(
        ms.stats.seq_buffered_unicasts > before,
        "overtaking unicast was not held ({} buffered)",
        ms.stats.seq_buffered_unicasts
    );
    // Both transactions completed correctly despite the reorder.
    assert_eq!(ms.l2_state(CoreId(writer), a), LineState::M);
    assert_eq!(ms.l2_state(CoreId(reader), b), LineState::S);
    for &s in sharers {
        assert_eq!(ms.l2_state(CoreId(s), a), LineState::I);
    }
}

/// Unicasts slower than broadcasts: the invalidation broadcast lands at
/// a core whose own ShReq for that line is still outstanding; the core
/// must buffer the broadcast at its MSHR and apply it after the fill
/// (`seq_buffered_broadcasts`, paper §IV-C-1 case 2).
#[test]
fn broadcast_during_outstanding_shreq_is_buffered() {
    let t = topo();
    let a = Addr(0x8000);
    let home = a.home(&t);
    let cast: Vec<u16> = (0..64u16).filter(|&c| CoreId(c) != home).collect();
    let sharers = &cast[0..6];
    let writer = cast[7];
    let reader = cast[8];

    let mut seed_net = LatencyNet::new(t, 1, 1); // fast seeding
    let mut ms = MemorySystem::new(t, ProtocolKind::AckWise { k: 4 });
    seed_sharers(&mut ms, &mut seed_net, a, sharers);

    let before = ms.stats.seq_buffered_broadcasts;
    // Reader's ShReq (issued first) reaches the home at ~60 and leaves
    // the directory waiting on memory; the writer's ExReq queues behind
    // it. When memory data returns, the ShRep (60-cycle unicast) and the
    // invalidation broadcast (2-cycle) depart back-to-back — the
    // broadcast wins the race to the reader, whose ShReq is still
    // outstanding.
    let mut net = LatencyNet::new(t, 60, 2);
    run_schedule(
        &mut net,
        &mut ms,
        &[(0, reader, a, false), (80, writer, a, true)],
    );

    assert_eq!(ms.stats.inv_broadcasts, 1);
    assert!(
        ms.stats.seq_buffered_broadcasts > before,
        "broadcast was not buffered behind the outstanding ShReq \
         ({} buffered)",
        ms.stats.seq_buffered_broadcasts
    );
    // The buffered invalidate was applied after the fill: the reader
    // ends Invalid, the writer owns the line.
    assert_eq!(ms.l2_state(CoreId(reader), a), LineState::I);
    assert_eq!(ms.l2_state(CoreId(writer), a), LineState::M);
}

/// Wrap-around sequence comparison stays correct near u16::MAX — the
/// horizon advances monotonically through the wrap (the `core_msg`
/// sanitizer would panic otherwise).
#[test]
fn seq_compare_wraps() {
    use atac_coherence::system::seq_newer;
    assert!(seq_newer(0, u16::MAX));
    assert!(!seq_newer(u16::MAX, 0));
    assert!(seq_newer(5, u16::MAX - 5));
}
