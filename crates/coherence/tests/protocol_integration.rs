//! Integration tests: the coherence engine over real simulated networks.
//!
//! Every test drives `MemorySystem` + an `atac_net` network to
//! quiescence and checks the coherence invariants (single writer,
//! directory accuracy). The stress tests run randomized multi-core
//! workloads over the ATAC+ network with distance-based routing — the
//! configuration whose broadcast/unicast route split makes the §IV-C-1
//! sequence-number machinery load-bearing.

use atac_coherence::{AccessResult, Addr, LineState, MemorySystem, ProtocolKind};
use atac_net::{
    AtacNet, CoreId, Cycle, Delivery, Mesh, MeshKind, Network, ReceiveNet, RoutingPolicy, Topology,
};

const TOPO_SIDE: u16 = 8; // 64 cores, 4 clusters — fast but real

fn topo() -> Topology {
    Topology::small(TOPO_SIDE, 4)
}

/// A tiny driver: per-core scripts of (addr, is_write), issued in order,
/// blocking on misses — the in-order-core contract.
struct Driver {
    ms: MemorySystem,
    net: Box<dyn Network>,
    scripts: Vec<Vec<(Addr, bool)>>,
    pc: Vec<usize>,
    blocked: Vec<bool>,
    now: Cycle,
}

impl Driver {
    fn new(net: Box<dyn Network>, protocol: ProtocolKind, scripts: Vec<Vec<(Addr, bool)>>) -> Self {
        let n = net.cores();
        let mut scripts = scripts;
        scripts.resize(n, Vec::new());
        Driver {
            ms: MemorySystem::new(topo(), protocol),
            net,
            scripts,
            pc: vec![0; n],
            blocked: vec![false; n],
            now: 0,
        }
    }

    /// Run until every script is finished and the system is quiescent.
    fn run(&mut self) {
        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut completed: Vec<CoreId> = Vec::new();
        let max = 2_000_000;
        loop {
            // Issue new operations for unblocked cores.
            for c in 0..self.scripts.len() {
                if self.blocked[c] {
                    continue;
                }
                // issue at most one op per cycle per core
                if let Some(&(addr, w)) = self.scripts[c].get(self.pc[c]) {
                    match self.ms.access(CoreId(c as u16), addr, w) {
                        AccessResult::Hit(_) => {
                            self.pc[c] += 1;
                        }
                        AccessResult::Miss => {
                            self.pc[c] += 1;
                            self.blocked[c] = true;
                        }
                    }
                }
            }
            self.ms.flush_outbox(self.net.as_mut(), self.now);
            self.net.tick(self.now);
            self.net.drain_deliveries(&mut deliveries);
            for d in deliveries.drain(..) {
                self.ms.handle_delivery(&d, self.now);
            }
            self.ms.memctrl_tick(self.now);
            self.ms.drain_completions(&mut completed);
            for c in completed.drain(..) {
                self.blocked[c.idx()] = false;
            }
            // Single-writer invariant must hold at *every* cycle.
            if self.now.is_multiple_of(64) {
                self.ms.check_invariants(false);
            }
            self.now += 1;
            let done = self
                .pc
                .iter()
                .zip(&self.scripts)
                .all(|(p, s)| *p >= s.len())
                && !self.blocked.iter().any(|&b| b);
            if done && self.ms.is_quiescent() && self.net.is_idle() {
                break;
            }
            assert!(self.now < max, "protocol did not quiesce in {max} cycles");
        }
        self.ms.check_invariants(true);
    }
}

fn atac_net() -> Box<dyn Network> {
    Box::new(AtacNet::new(
        topo(),
        64,
        4,
        RoutingPolicy::Distance(5),
        ReceiveNet::StarNet,
    ))
}

fn ackwise4() -> ProtocolKind {
    ProtocolKind::AckWise { k: 4 }
}

#[test]
fn single_read_fetches_from_memory() {
    let scripts = vec![vec![(Addr(0x4000), false)]];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    assert_eq!(d.ms.l2_state(CoreId(0), Addr(0x4000)), LineState::S);
    assert_eq!(d.ms.stats.mem_reads, 1);
    assert_eq!(d.ms.stats.l2_misses, 1);
}

#[test]
fn read_then_write_upgrades() {
    let scripts = vec![vec![(Addr(0x4000), false), (Addr(0x4000), true)]];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    assert_eq!(d.ms.l2_state(CoreId(0), Addr(0x4000)), LineState::M);
    assert_eq!(d.ms.stats.upgrades, 1);
    // sole sharer: no invalidations at all
    assert_eq!(d.ms.stats.inv_unicasts, 0);
    assert_eq!(d.ms.stats.inv_broadcasts, 0);
}

#[test]
fn writer_invalidates_readers_with_unicasts() {
    let a = Addr(0x8000);
    let mut scripts = vec![Vec::new(); 4];
    scripts[1] = vec![(a, false)];
    scripts[2] = vec![(a, false)];
    scripts[3] = vec![(a, false)];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    // Now core 0 writes.
    let mut d2 = Driver {
        scripts: {
            let mut s = vec![Vec::new(); 64];
            s[0] = vec![(a, true)];
            s
        },
        pc: vec![0; 64],
        blocked: vec![false; 64],
        ..d
    };
    d2.run();
    assert_eq!(d2.ms.l2_state(CoreId(0), a), LineState::M);
    for c in 1..4u16 {
        assert_eq!(d2.ms.l2_state(CoreId(c), a), LineState::I);
    }
    assert_eq!(d2.ms.stats.inv_unicasts, 3, "3 sharers fit in k=4 pointers");
    assert_eq!(d2.ms.stats.inv_broadcasts, 0);
    assert_eq!(d2.ms.stats.inv_acks, 3);
}

#[test]
fn sharer_overflow_triggers_broadcast() {
    let a = Addr(0x8000);
    // 6 readers overflow k=4, then a writer.
    let mut scripts = vec![Vec::new(); 8];
    for s in &mut scripts[1..7] {
        *s = vec![(a, false)];
    }
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    assert_eq!(d.ms.stats.sharer_overflows, 1);

    let mut s = vec![Vec::new(); 64];
    s[0] = vec![(a, true)];
    let mut d2 = Driver {
        scripts: s,
        pc: vec![0; 64],
        blocked: vec![false; 64],
        ..d
    };
    d2.run();
    assert_eq!(d2.ms.stats.inv_broadcasts, 1);
    // ACKwise: only the 6 actual sharers acked (modulo the home's own
    // inline copy, which doesn't travel the network).
    assert!(d2.ms.stats.inv_acks <= 6);
    assert!(d2.ms.stats.inv_acks >= 5);
    assert_eq!(d2.ms.l2_state(CoreId(0), a), LineState::M);
}

#[test]
fn dirkb_broadcast_collects_acks_from_everyone() {
    let a = Addr(0x8000);
    let mut scripts = vec![Vec::new(); 8];
    for s in &mut scripts[1..7] {
        *s = vec![(a, false)];
    }
    let proto = ProtocolKind::DirB { k: 4 };
    let mut d = Driver::new(atac_net(), proto, scripts);
    d.run();
    let mut s = vec![Vec::new(); 64];
    s[0] = vec![(a, true)];
    let mut d2 = Driver {
        scripts: s,
        pc: vec![0; 64],
        blocked: vec![false; 64],
        ..d
    };
    d2.run();
    assert_eq!(d2.ms.stats.inv_broadcasts, 1);
    // Dir_kB: every core acknowledges (the home's own ack via loopback).
    assert_eq!(d2.ms.stats.inv_acks, 64);
}

#[test]
fn write_then_remote_read_writes_back() {
    let a = Addr(0xC0DE00);
    let mut scripts = vec![Vec::new(); 2];
    scripts[0] = vec![(a, true)];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    let mut s = vec![Vec::new(); 64];
    s[1] = vec![(a, false)];
    let mut d2 = Driver {
        scripts: s,
        pc: vec![0; 64],
        blocked: vec![false; 64],
        ..d
    };
    d2.run();
    // Owner demoted to S, reader has S, memory got the writeback.
    assert_eq!(d2.ms.l2_state(CoreId(0), a), LineState::S);
    assert_eq!(d2.ms.l2_state(CoreId(1), a), LineState::S);
    assert!(d2.ms.stats.mem_writes >= 1);
}

#[test]
fn write_then_remote_write_flushes() {
    let a = Addr(0xC0DE00);
    let mut scripts = vec![Vec::new(); 2];
    scripts[0] = vec![(a, true)];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    let mut s = vec![Vec::new(); 64];
    s[1] = vec![(a, true)];
    let mut d2 = Driver {
        scripts: s,
        pc: vec![0; 64],
        blocked: vec![false; 64],
        ..d
    };
    d2.run();
    assert_eq!(d2.ms.l2_state(CoreId(0), a), LineState::I);
    assert_eq!(d2.ms.l2_state(CoreId(1), a), LineState::M);
}

#[test]
fn capacity_evictions_keep_directory_exact() {
    // Walk far more lines than one L2 way-set can hold so clean
    // evictions stream to the directory (ACKwise has no silent drops).
    let mut script = Vec::new();
    for i in 0..3000u64 {
        script.push((Addr(i * 64), false));
    }
    let scripts = vec![script];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    assert!(d.ms.stats.evictions_clean > 0 || d.ms.stats.l2_misses == 3000);
    // run() checked ACKwise sharer-count accuracy at quiescence.
}

#[test]
fn dirty_evictions_reach_memory() {
    let mut script = Vec::new();
    // Write many lines mapping across the cache, forcing dirty victims.
    for i in 0..8000u64 {
        script.push((Addr(i * 64), true));
    }
    let scripts = vec![script];
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    assert!(d.ms.stats.evictions_dirty > 0);
    assert!(d.ms.stats.mem_writes >= d.ms.stats.evictions_dirty);
}

#[test]
fn false_sharing_ping_pong() {
    // Two cores alternately writing the same line: each write flushes
    // the other's copy.
    let a = Addr(0x5000);
    let mut scripts = vec![Vec::new(); 2];
    scripts[0] = (0..10).map(|_| (a, true)).collect();
    scripts[1] = (0..10).map(|_| (a, true)).collect();
    let mut d = Driver::new(atac_net(), ackwise4(), scripts);
    d.run();
    // exactly one final owner
    let owners = (0..64u16)
        .filter(|&c| d.ms.l2_state(CoreId(c), a) == LineState::M)
        .count();
    assert_eq!(owners, 1);
}

fn stress(net: Box<dyn Network>, protocol: ProtocolKind, seed: u64, ops: usize) -> MemorySystem {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 64;
    // Shared region of 64 lines (hot, conflict-heavy) + private regions.
    let scripts: Vec<Vec<(Addr, bool)>> = (0..n)
        .map(|c| {
            (0..ops)
                .map(|_| {
                    let shared = rng.gen_bool(0.6);
                    let addr = if shared {
                        Addr(rng.gen_range(0..64u64) * 64)
                    } else {
                        Addr(0x10_0000 + (c as u64) * 0x1_0000 + rng.gen_range(0..128u64) * 64)
                    };
                    (addr, rng.gen_bool(0.3))
                })
                .collect()
        })
        .collect();
    let mut d = Driver::new(net, protocol, scripts);
    d.run();
    d.ms
}

#[test]
fn stress_ackwise_on_atac_plus() {
    let ms = stress(atac_net(), ackwise4(), 1234, 60);
    // broadcasts should have happened (60 % of traffic on 64 hot lines
    // with 64 cores overflows k=4 constantly)
    assert!(
        ms.stats.inv_broadcasts > 0,
        "stress must exercise broadcasts"
    );
    assert!(ms.stats.inv_unicasts > 0);
}

#[test]
fn stress_ackwise_on_emesh_bcast() {
    let net: Box<dyn Network> = Box::new(Mesh::new(topo(), MeshKind::BcastTree, 64, 4));
    let ms = stress(net, ackwise4(), 99, 60);
    assert!(ms.stats.inv_broadcasts > 0);
}

#[test]
fn stress_ackwise_on_emesh_pure() {
    let net: Box<dyn Network> = Box::new(Mesh::new(topo(), MeshKind::Pure, 64, 4));
    let ms = stress(net, ackwise4(), 7, 40);
    assert!(ms.stats.inv_broadcasts > 0);
}

#[test]
fn stress_dirkb_on_atac_plus() {
    let ms = stress(atac_net(), ProtocolKind::DirB { k: 4 }, 31, 60);
    assert!(ms.stats.inv_broadcasts > 0);
    // Dir_kB never sends clean-eviction notifications.
    assert_eq!(ms.stats.evictions_clean, 0);
}

#[test]
fn dirkb_capacity_evictions_are_silent() {
    // Stream far more clean lines than the L2 holds: Dir_kB drops them
    // silently (no Evict messages), unlike ACKwise.
    let mut script = Vec::new();
    for i in 0..6000u64 {
        script.push((Addr(i * 64), false));
    }
    let mut d = Driver::new(atac_net(), ProtocolKind::DirB { k: 4 }, vec![script]);
    d.run();
    assert!(d.ms.stats.evictions_silent > 0);
    assert_eq!(d.ms.stats.evictions_clean, 0);
}

#[test]
fn stress_full_map_never_broadcasts() {
    // k = cores: ACKwise behaves as full-map (paper §V-F endpoint).
    let ms = stress(atac_net(), ProtocolKind::AckWise { k: 64 }, 5, 50);
    assert_eq!(ms.stats.inv_broadcasts, 0);
    assert!(ms.stats.inv_unicasts > 0);
}

#[test]
fn stress_exercises_sequence_machinery() {
    // Cluster routing (all inter-cluster unicasts optical, broadcasts
    // optical too, but intra-cluster electrical) plus heavy sharing:
    // run several seeds and require that the seq logic fired at least
    // once overall — out-of-order arrivals are timing-dependent.
    let mut buffered = 0;
    for seed in 0..4 {
        let net: Box<dyn Network> = Box::new(AtacNet::new(
            topo(),
            64,
            4,
            RoutingPolicy::Distance(5),
            ReceiveNet::StarNet,
        ));
        let ms = stress(net, ackwise4(), 4000 + seed, 50);
        buffered += ms.stats.seq_buffered_unicasts
            + ms.stats.seq_buffered_broadcasts
            + ms.stats.seq_dropped_broadcasts;
    }
    assert!(
        buffered > 0,
        "the §IV-C-1 reordering machinery never fired across 4 seeds"
    );
}

#[test]
fn determinism_across_runs() {
    let run = || {
        let ms = stress(atac_net(), ackwise4(), 42, 40);
        (
            ms.stats.inv_broadcasts,
            ms.stats.inv_unicasts,
            ms.stats.mem_reads,
            ms.stats.l2_misses,
        )
    };
    assert_eq!(run(), run());
}
