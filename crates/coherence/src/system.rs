//! The chip-wide memory subsystem: private L1-I/L1-D/L2 hierarchies, the
//! distributed dataless directory (ACKwise_k or Dir_kB), the §IV-C-1
//! sequence-number reordering logic, and the 64 memory controllers — all
//! driving, and driven by, an `atac-net` network.
//!
//! ## Protocol summary (paper §IV-C)
//!
//! MSI, directory-based, serialized per address at the home core:
//!
//! * `ShReq`/`ExReq` from cores are processed one at a time per entry;
//!   later requests queue.
//! * An exclusive request for a *shared* line triggers invalidations —
//!   unicasts while sharer identities fit in the `k` pointers, a single
//!   **broadcast** after overflow. ACKwise collects acks only from actual
//!   sharers (it tracks their count); Dir_kB collects acks from *every*
//!   core.
//! * An exclusive request for a *modified* line sends `FlushReq` to the
//!   owner; a shared request sends `WbReq`.
//! * The line itself comes from the previous owner's flush/write-back or
//!   from a memory controller; the directory holds no data.
//! * ACKwise forbids silent evictions (`Evict`/`EvictDirty` notify the
//!   home); Dir_kB evicts clean lines silently.
//!
//! ## Sequence numbers (§IV-C-1)
//!
//! Because ATAC+ routes broadcasts (ONet) and unicasts (ENet or ONet by
//! distance) differently, home→core messages can reorder across classes.
//! Each home keeps a 16-bit counter incremented per invalidation
//! broadcast; every home→core unicast carries the current value.
//! A receiving core holds a unicast whose `seq` exceeds the newest
//! broadcast it has seen from that home (a broadcast sent earlier is still
//! in flight), and buffers a broadcast invalidate that lands while its own
//! `ShReq` for the same line is outstanding, resolving staleness by
//! comparing sequence numbers when the `ShRep` arrives — exactly the
//! paper's mechanism, including the wrap-around comparison.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use atac_net::{CoreId, Cycle, Delivery, Dest, Message, Network, Topology};
use atac_trace::{HostPhase, HostProfiler, ProbeHandle, TxnEvent, TxnPhase};

use crate::addr::Addr;
use crate::cache::{LineState, SetAssocCache, Victim};
use crate::directory::{DirEntry, DirState, SharerSet, WaitingReq};
use crate::memctrl::MemCtrl;
use crate::protocol::{CohKind, CohPayload, PayloadTable, ProtocolKind};
use crate::stats::CoherenceStats;

/// L2 hit latency in cycles (tag + data array at 1 GHz, 11 nm).
pub const L2_HIT_LATENCY: u32 = 8;
/// L1 hit latency in cycles.
pub const L1_HIT_LATENCY: u32 = 1;

/// Result of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Completed locally; the core stalls this many cycles.
    Hit(u32),
    /// A coherence transaction started; the core blocks until its MSHR
    /// completion is reported by [`MemorySystem::drain_completions`].
    Miss,
}

/// One outstanding miss (in-order cores block, so one per core).
#[derive(Debug, Clone, Copy)]
struct Mshr {
    addr: Addr,
    ex: bool,
    /// A broadcast invalidate for `addr` that arrived while this `ShReq`
    /// was outstanding, deferred per §IV-C-1.
    buffered_bcast: Option<CohPayload>,
}

/// Per-core memory-side state.
#[derive(Debug)]
struct CoreMem {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    mshr: Option<Mshr>,
    /// Newest broadcast sequence number seen, per home core.
    last_bcast: Vec<u16>,
    /// Home→core unicasts held until earlier broadcasts arrive
    /// (insertion order preserves the per-home FIFO).
    held: VecDeque<CohPayload>,
}

impl CoreMem {
    fn new(cores: usize) -> Self {
        CoreMem {
            l1i: SetAssocCache::l1(),
            l1d: SetAssocCache::l1(),
            l2: SetAssocCache::l2(),
            mshr: None,
            last_bcast: vec![0; cores],
            held: VecDeque::new(),
        }
    }
}

/// TCP-style wrap-around comparison: is `a` strictly newer than `b`?
#[inline]
pub fn seq_newer(a: u16, b: u16) -> bool {
    (a.wrapping_sub(b) as i16) > 0 // audit: allow(cast) two's-complement reinterpret IS the wrap-around compare
}

/// The complete memory subsystem.
#[derive(Debug)]
pub struct MemorySystem {
    topo: Topology,
    protocol: ProtocolKind,
    cores: Vec<CoreMem>,
    /// Directory entries, keyed by line address; the owning slice is
    /// implied by `Addr::home`. Ordered map so iteration (invariant
    /// checks, debug dumps) is deterministic across processes.
    dir: BTreeMap<Addr, DirEntry>,
    /// Per-home broadcast sequence counters.
    seq: Vec<u16>,
    /// Memory controllers, one per cluster, tagged with the pending
    /// payload to send back.
    memctrls: Vec<MemCtrl<CohPayload>>,
    payloads: PayloadTable,
    /// Per-core FIFO outboxes (per-source ordering is a protocol
    /// correctness requirement — see §IV-C-1 discussion in DESIGN.md).
    outbox: Vec<VecDeque<Message>>,
    /// Cores whose MSHR completed since the last drain.
    completions: Vec<CoreId>,
    /// Total messages currently queued across all outboxes.
    outbox_msgs: usize,
    /// Cores with nonempty outboxes (so the per-cycle flush touches only
    /// active queues, not all 1024).
    outbox_active: Vec<u16>,
    outbox_is_active: Vec<bool>,
    /// Event counters.
    pub stats: CoherenceStats,
    /// Observability probe (disabled by default; reports transaction
    /// lifecycle phases, never alters protocol behavior).
    probe: ProbeHandle,
    /// Host self-profiler (disabled by default). Shares the engine's lap
    /// timeline so outbox-flush and memory-controller host time is
    /// attributed from inside this crate; never reads simulator state.
    profiler: HostProfiler,
}

impl MemorySystem {
    /// Build the memory system for a topology and protocol.
    pub fn new(topo: Topology, protocol: ProtocolKind) -> Self {
        let n = topo.cores();
        MemorySystem {
            topo,
            protocol,
            cores: (0..n).map(|_| CoreMem::new(n)).collect(),
            dir: BTreeMap::new(),
            seq: vec![0; n],
            memctrls: (0..topo.clusters()).map(|_| MemCtrl::default()).collect(),
            payloads: PayloadTable::default(),
            outbox: (0..n).map(|_| VecDeque::new()).collect(),
            completions: Vec::new(),
            outbox_msgs: 0,
            outbox_active: Vec::new(),
            outbox_is_active: vec![false; n],
            stats: CoherenceStats::default(),
            probe: ProbeHandle::default(),
            profiler: HostProfiler::default(),
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Attach an observability probe.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// Attach a host self-profiler (a clone of the engine's handle, so
    /// the lap timeline stays contiguous across the crate boundary).
    pub fn set_profiler(&mut self, profiler: HostProfiler) {
        self.profiler = profiler;
    }

    /// Messages currently queued across every per-core outbox (the
    /// epoch sampler's coherence-layer queue-depth observable).
    pub fn outbox_depth(&self) -> usize {
        self.outbox_msgs
    }

    // ------------------------------------------------------------------
    // Core-facing API
    // ------------------------------------------------------------------

    /// Instruction fetch. Instructions live in private, read-only memory:
    /// an L1-I miss is served by the local L2 port without coherence
    /// (documented simplification in DESIGN.md).
    pub fn ifetch(&mut self, core: CoreId, addr: Addr) -> u32 {
        self.stats.l1i_accesses += 1;
        let cm = &mut self.cores[core.idx()];
        if cm.l1i.access(addr) != LineState::I {
            return L1_HIT_LATENCY;
        }
        self.stats.l1i_misses += 1;
        self.stats.l2_accesses += 1;
        cm.l1i.fill(addr, LineState::S);
        L1_HIT_LATENCY + L2_HIT_LATENCY
    }

    /// Instruction fetch for a block of `n` sequential instructions that
    /// share one I-cache line: one tag lookup, `n` array accesses counted
    /// for energy. Returns the stall latency.
    pub fn ifetch_block(&mut self, core: CoreId, addr: Addr, n: u32) -> u32 {
        self.stats.l1i_accesses += u64::from(n.saturating_sub(1));
        self.ifetch(core, addr)
    }

    /// Data access. The core must have no outstanding miss.
    pub fn access(&mut self, core: CoreId, addr: Addr, write: bool) -> AccessResult {
        let addr = addr.line_base();
        if write {
            self.stats.l1d_writes += 1;
        } else {
            self.stats.l1d_reads += 1;
        }
        let cm = &mut self.cores[core.idx()];
        assert!(cm.mshr.is_none(), "in-order core issued under a miss");

        // L1 lookup.
        let l1 = cm.l1d.access(addr);
        if l1 == LineState::M || (l1 == LineState::S && !write) {
            return AccessResult::Hit(L1_HIT_LATENCY);
        }
        self.stats.l1d_misses += 1;

        // L2 lookup.
        self.stats.l2_accesses += 1;
        let l2 = cm.l2.access(addr);
        match (l2, write) {
            (LineState::M, _) => {
                cm.l1d
                    .fill(addr, if write { LineState::M } else { LineState::S });
                AccessResult::Hit(L1_HIT_LATENCY + L2_HIT_LATENCY)
            }
            (LineState::S, false) => {
                cm.l1d.fill(addr, LineState::S);
                AccessResult::Hit(L1_HIT_LATENCY + L2_HIT_LATENCY)
            }
            (LineState::S, true) => {
                // Upgrade.
                self.stats.upgrades += 1;
                self.start_miss(core, addr, true);
                AccessResult::Miss
            }
            (LineState::I, _) => {
                self.stats.l2_misses += 1;
                self.start_miss(core, addr, write);
                AccessResult::Miss
            }
        }
    }

    fn start_miss(&mut self, core: CoreId, addr: Addr, ex: bool) {
        self.cores[core.idx()].mshr = Some(Mshr {
            addr,
            ex,
            buffered_bcast: None,
        });
        let home = addr.home(&self.topo);
        let kind = if ex { CohKind::ExReq } else { CohKind::ShReq };
        self.send(core, Dest::Unicast(home), kind, addr, core, 0);
    }

    /// Cores whose outstanding miss completed since the last call.
    pub fn drain_completions(&mut self, out: &mut Vec<CoreId>) {
        out.append(&mut self.completions);
    }

    // ------------------------------------------------------------------
    // Network-facing API
    // ------------------------------------------------------------------

    /// Push queued protocol messages into the network until it pushes
    /// back. Per-core FIFO order is preserved.
    pub fn flush_outbox<N: Network + ?Sized>(&mut self, net: &mut N, now: Cycle) {
        let mut i = 0;
        while i < self.outbox_active.len() {
            let c = self.outbox_active[i] as usize;
            let q = &mut self.outbox[c];
            while let Some(&m) = q.front() {
                if net.try_send(m, now) {
                    q.pop_front();
                    self.outbox_msgs -= 1;
                } else {
                    break;
                }
            }
            if q.is_empty() {
                self.outbox_is_active[c] = false;
                self.outbox_active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.profiler.lap(HostPhase::Coherence);
    }

    /// Are any protocol messages still waiting to enter the network?
    pub fn outbox_pending(&self) -> bool {
        self.outbox_msgs > 0
    }

    /// Advance memory controllers: emit `MemData` replies whose access
    /// latency elapsed by `now`.
    pub fn memctrl_tick(&mut self, now: Cycle) {
        let mut done = Vec::new(); // audit: allow(alloc) capacity-free; reused across controllers in the loop
        for cl in 0..self.memctrls.len() {
            if self.memctrls[cl].next_event().is_none_or(|t| t > now) {
                continue;
            }
            done.clear();
            self.memctrls[cl].drain_completed(now, &mut done);
            let hub = self.topo.hub_core(atac_net::ClusterId(cl as u8)); // audit: allow(cast) cluster count ≤ 64 fits u8
            for op in done.drain(..) {
                if op.is_write {
                    continue; // writes complete silently
                }
                let p = op.tag;
                let home = p.addr.home(&self.topo);
                self.send(
                    hub,
                    Dest::Unicast(home),
                    CohKind::MemData,
                    p.addr,
                    p.requester,
                    0,
                );
            }
        }
        // propagate queue-delay counters
        self.stats.mem_queue_cycles = self.memctrls.iter().map(|m| m.queue_cycles).sum();
        self.stats.mem_reads = self.memctrls.iter().map(|m| m.reads).sum();
        self.stats.mem_writes = self.memctrls.iter().map(|m| m.writes).sum();
        self.profiler.lap(HostPhase::Memctrl);
    }

    /// Earliest pending memory-controller completion (for skip-ahead).
    pub fn next_mem_event(&self) -> Option<Cycle> {
        self.memctrls.iter().filter_map(|m| m.next_event()).min()
    }

    /// Handle one network delivery.
    pub fn handle_delivery(&mut self, d: &Delivery, now: Cycle) {
        let p = self.payloads.take(d.msg.token);
        let receiver = d.receiver;
        match p.kind {
            // ---- directory-bound ----
            CohKind::ShReq | CohKind::ExReq => {
                debug_assert_eq!(receiver, p.addr.home(&self.topo));
                self.probe.txn(&TxnEvent {
                    core: u32::from(d.msg.src.0),
                    phase: TxnPhase::DirSeen,
                    at: now,
                });
                self.dir_request(
                    p.addr,
                    WaitingReq {
                        requester: d.msg.src,
                        ex: p.kind == CohKind::ExReq,
                    },
                );
            }
            CohKind::InvAck => self.dir_inv_ack(p.addr),
            CohKind::Evict => self.dir_evict(p.addr, d.msg.src),
            CohKind::EvictDirty => self.dir_evict_dirty(p.addr, d.msg.src, now),
            CohKind::WbData => self.dir_wb_data(p.addr, now),
            CohKind::FlushData => self.dir_flush_data(p.addr),
            CohKind::MemData => self.dir_mem_data(p.addr),
            // ---- memory-controller-bound ----
            CohKind::MemRead => {
                let cl = p.addr.mem_cluster(&self.topo);
                self.memctrls[cl.idx()].submit(
                    crate::memctrl::MemOp {
                        tag: p,
                        is_write: false,
                    },
                    now,
                );
            }
            CohKind::MemWrite => {
                let cl = p.addr.mem_cluster(&self.topo);
                self.memctrls[cl.idx()].submit(
                    crate::memctrl::MemOp {
                        tag: p,
                        is_write: true,
                    },
                    now,
                );
            }
            // ---- core-bound (seq-number ordering applies) ----
            CohKind::ShRep
            | CohKind::ExRep
            | CohKind::UpgradeRep
            | CohKind::WbReq
            | CohKind::FlushReq => {
                // Data-return phase: the reply reached the requester's
                // tile (recorded even if §IV-C-1 ordering holds it
                // briefly before the fill).
                if matches!(
                    p.kind,
                    CohKind::ShRep | CohKind::ExRep | CohKind::UpgradeRep
                ) {
                    self.probe.txn(&TxnEvent {
                        core: u32::from(receiver.0),
                        phase: TxnPhase::DataReturn,
                        at: now,
                    });
                }
                let home = d.msg.src;
                if seq_newer(p.seq, self.cores[receiver.idx()].last_bcast[home.idx()]) {
                    // A broadcast sent before this unicast is still in
                    // flight: hold (paper §IV-C-1).
                    self.stats.seq_buffered_unicasts += 1;
                    // audit: allow(alloc) hold queue bounded by in-flight unicasts; amortized
                    self.cores[receiver.idx()].held.push_back(p);
                } else {
                    self.core_msg(receiver, p);
                }
            }
            CohKind::Inv => match d.msg.dest {
                Dest::Unicast(_) => {
                    let home = d.msg.src;
                    if seq_newer(p.seq, self.cores[receiver.idx()].last_bcast[home.idx()]) {
                        self.stats.seq_buffered_unicasts += 1;
                        // audit: allow(alloc) hold queue bounded by in-flight unicasts; amortized
                        self.cores[receiver.idx()].held.push_back(p);
                    } else {
                        self.core_msg(receiver, p);
                    }
                }
                Dest::Broadcast => self.core_bcast_inv(receiver, p),
            },
        }
    }

    // ------------------------------------------------------------------
    // Core-side protocol
    // ------------------------------------------------------------------

    /// Process a home→core message that is (now) in order.
    fn core_msg(&mut self, core: CoreId, p: CohPayload) {
        // Sanitizer: the §IV-C-1 ordering discipline guarantees that a
        // unicast reaching this point is never newer than the receiving
        // core's per-home broadcast horizon — delivery and release paths
        // must both have checked it.
        debug_assert!(
            !seq_newer(
                p.seq,
                self.cores[core.idx()].last_bcast[p.addr.home(&self.topo).idx()]
            ),
            "out-of-order unicast reached core_msg: seq {} ahead of horizon",
            p.seq
        );
        match p.kind {
            CohKind::ShRep => self.core_fill(core, p, LineState::S),
            CohKind::ExRep => self.core_fill(core, p, LineState::M),
            CohKind::UpgradeRep => {
                let cm = &mut self.cores[core.idx()];
                let m = cm.mshr.take().expect("upgrade without MSHR"); // audit: allow(expect) upgrade replies only answer an outstanding MSHR
                assert_eq!(m.addr, p.addr);
                assert!(m.ex);
                self.stats.l2_accesses += 1;
                cm.l2.set_state(p.addr, LineState::M);
                cm.l1d.fill(p.addr, LineState::M);
                self.completions.push(core); // audit: allow(alloc) ≤ one entry per core; drained every cycle
            }
            CohKind::Inv => self.core_inv(core, p, false),
            CohKind::WbReq => {
                let cm = &mut self.cores[core.idx()];
                self.stats.l2_accesses += 1;
                if cm.l2.state(p.addr) == LineState::M {
                    cm.l2.set_state(p.addr, LineState::S);
                    if cm.l1d.state(p.addr) == LineState::M {
                        cm.l1d.set_state(p.addr, LineState::S);
                    }
                    let home = p.addr.home(&self.topo);
                    self.send(
                        core,
                        Dest::Unicast(home),
                        CohKind::WbData,
                        p.addr,
                        p.requester,
                        0,
                    );
                }
                // else: our EvictDirty is already in flight and will
                // satisfy the directory.
            }
            CohKind::FlushReq => {
                let cm = &mut self.cores[core.idx()];
                self.stats.l2_accesses += 1;
                if cm.l2.state(p.addr) == LineState::M {
                    cm.l2.invalidate(p.addr);
                    cm.l1d.invalidate(p.addr);
                    let home = p.addr.home(&self.topo);
                    self.send(
                        core,
                        Dest::Unicast(home),
                        CohKind::FlushData,
                        p.addr,
                        p.requester,
                        0,
                    );
                }
            }
            CohKind::ShReq
            | CohKind::ExReq
            | CohKind::InvAck
            | CohKind::Evict
            | CohKind::EvictDirty
            | CohKind::WbData
            | CohKind::FlushData
            | CohKind::MemRead
            | CohKind::MemWrite
            | CohKind::MemData => unreachable!("not a core-bound message: {:?}", p.kind),
        }
    }

    /// Fill the MSHR's line and complete the miss, applying any buffered
    /// broadcast invalidate per the §IV-C-1 rules.
    fn core_fill(&mut self, core: CoreId, p: CohPayload, state: LineState) {
        let cm = &mut self.cores[core.idx()];
        let m = cm.mshr.take().expect("fill without MSHR"); // audit: allow(expect) fills only answer an outstanding MSHR
        assert_eq!(m.addr, p.addr, "fill for wrong line");
        self.stats.l2_accesses += 1;
        let victim = cm.l2.fill(p.addr, state);
        cm.l1d.fill(p.addr, state);
        self.completions.push(core); // audit: allow(alloc) ≤ one entry per core; drained every cycle
        self.handle_victim(core, victim);

        if let Some(b) = m.buffered_bcast {
            if seq_newer(b.seq, p.seq) {
                // The invalidate was sent after our ShRep: process it
                // (one cycle later in the paper — functionally immediate
                // here). Under ACKwise we were counted as a sharer, so
                // ack now; under Dir_kB the ack was already sent eagerly
                // at buffering time (see `core_bcast_inv`) — only the
                // invalidation itself was deferred.
                match self.protocol {
                    ProtocolKind::AckWise { .. } => self.core_inv(core, b, true),
                    ProtocolKind::DirB { .. } => {
                        let cm = &mut self.cores[core.idx()];
                        cm.l2.invalidate(b.addr);
                        cm.l1d.invalidate(b.addr);
                        self.stats.l2_accesses += 1;
                    }
                }
            } else {
                // Stale: sent before we became a sharer. Drop.
                self.stats.seq_dropped_broadcasts += 1;
            }
        }
    }

    /// Process an invalidate at a core (unicast or in-order broadcast).
    /// `counted` forces an ack for a deferred broadcast we know we were
    /// counted for.
    fn core_inv(&mut self, core: CoreId, p: CohPayload, counted: bool) {
        let cm = &mut self.cores[core.idx()];
        self.stats.l2_accesses += 1;
        let had = cm.l2.invalidate(p.addr);
        cm.l1d.invalidate(p.addr);
        let home = p.addr.home(&self.topo);
        let acks = match self.protocol {
            // ACKwise: only actual sharers acknowledge.
            ProtocolKind::AckWise { .. } => had != LineState::I || counted,
            // Dir_kB: every core acknowledges a broadcast; unicast invs
            // are acked unconditionally too (the directory counted us).
            ProtocolKind::DirB { .. } => true,
        };
        if acks {
            self.send(
                core,
                Dest::Unicast(home),
                CohKind::InvAck,
                p.addr,
                p.requester,
                0,
            );
        }
    }

    /// A broadcast invalidate arriving at a core: update the per-home
    /// sequence horizon, release held unicasts, then process or buffer.
    fn core_bcast_inv(&mut self, core: CoreId, p: CohPayload) {
        let home = p.addr.home(&self.topo);
        {
            let cm = &mut self.cores[core.idx()];
            if seq_newer(p.seq, cm.last_bcast[home.idx()]) {
                cm.last_bcast[home.idx()] = p.seq;
            }
        }
        // Buffer behind an outstanding ShReq for the same line (§IV-C-1).
        let buffer = {
            let cm = &self.cores[core.idx()];
            matches!(cm.mshr, Some(m) if m.addr == p.addr && !m.ex)
        };
        if buffer {
            self.stats.seq_buffered_broadcasts += 1;
            let cm = &mut self.cores[core.idx()];
            // Several broadcasts can land behind one outstanding ShReq,
            // but at most the newest can have counted us as a sharer (the
            // directory cannot start a second counted invalidation before
            // collecting our ack for the first), so older buffered ones
            // are necessarily stale: keep only the newest.
            let mshr = cm.mshr.as_mut().expect("checked"); // audit: allow(expect) presence checked just above
            if let Some(old) = mshr.buffered_bcast.replace(p) {
                debug_assert!(seq_newer(p.seq, old.seq), "broadcasts arrive in order");
                self.stats.seq_dropped_broadcasts += 1;
            }
            // Dir_kB demands an ack from every core; withholding it until
            // our ShRep arrives would deadlock (our ShRep is serialized
            // behind the very transaction waiting for this ack). Ack
            // eagerly; the deferred invalidation is made safe by the
            // sequence comparison at fill time. ACKwise does not need
            // this: an un-replied core was not yet a counted sharer
            // (the paper's §IV-C-1 deadlock-freedom argument).
            if matches!(self.protocol, ProtocolKind::DirB { .. }) {
                let home = p.addr.home(&self.topo);
                self.send(
                    core,
                    Dest::Unicast(home),
                    CohKind::InvAck,
                    p.addr,
                    p.requester,
                    0,
                );
            }
        } else {
            self.core_inv(core, p, false);
        }
        self.release_held(core);
    }

    /// Deliver held unicasts whose sequence horizon has been reached.
    fn release_held(&mut self, core: CoreId) {
        loop {
            let next = {
                let cm = &mut self.cores[core.idx()];
                match cm.held.front() {
                    Some(p) => {
                        let home = p.addr.home(&self.topo);
                        if !seq_newer(p.seq, cm.last_bcast[home.idx()]) {
                            Some(cm.held.pop_front().expect("front")) // audit: allow(expect) loop guard guarantees a queued message
                        } else {
                            None
                        }
                    }
                    None => None,
                }
            };
            match next {
                Some(p) => self.core_msg(core, p),
                None => break,
            }
        }
    }

    /// Handle an L2 victim: notify the home per protocol rules.
    fn handle_victim(&mut self, core: CoreId, victim: Victim) {
        match victim {
            Victim::None => {}
            Victim::CleanShared(addr) => {
                self.cores[core.idx()].l1d.invalidate(addr); // inclusion
                match self.protocol {
                    ProtocolKind::AckWise { .. } => {
                        self.stats.evictions_clean += 1;
                        let home = addr.home(&self.topo);
                        self.send(core, Dest::Unicast(home), CohKind::Evict, addr, core, 0);
                    }
                    ProtocolKind::DirB { .. } => {
                        self.stats.evictions_silent += 1;
                    }
                }
            }
            Victim::Dirty(addr) => {
                self.cores[core.idx()].l1d.invalidate(addr);
                self.stats.evictions_dirty += 1;
                let home = addr.home(&self.topo);
                self.send(
                    core,
                    Dest::Unicast(home),
                    CohKind::EvictDirty,
                    addr,
                    core,
                    0,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Directory protocol
    // ------------------------------------------------------------------

    fn dir_request(&mut self, addr: Addr, req: WaitingReq) {
        self.stats.dir_lookups += 1;
        let entry = self.dir.entry(addr).or_default();
        if entry.state.is_transient() {
            // audit: allow(alloc) waiter queue bounded by outstanding MSHRs; amortized
            entry.waiting.push_back(req);
            return;
        }
        self.dir_process(addr, req);
    }

    /// Process one request against a stable entry.
    fn dir_process(&mut self, addr: Addr, req: WaitingReq) {
        let home = addr.home(&self.topo);
        let state = self.dir.get(&addr).expect("entry exists").state.clone(); // audit: allow(expect) caller verified the directory entry exists; audit: allow(alloc) k-pointer state copy
        self.stats.dir_updates += 1;
        match (state, req.ex) {
            (DirState::Uncached, ex) => {
                self.set_dir(
                    addr,
                    DirState::WaitMem {
                        requester: req.requester,
                        ex,
                    },
                );
                self.mem_read(home, addr, req.requester);
            }
            (DirState::Shared(sharers), false) => {
                // Data comes from memory (dataless directory).
                self.set_dir(
                    addr,
                    DirState::WaitMemShared {
                        requester: req.requester,
                        sharers,
                    },
                );
                self.mem_read(home, addr, req.requester);
            }
            (DirState::Shared(sharers), true) => {
                // Dir_kB evicts silently, so its sharer list only
                // upper-bounds reality: a listed "sharer" (including the
                // requester) may hold nothing, making a dataless upgrade
                // unsafe. Only ACKwise — whose lists are exact — may take
                // the UpgradeRep shortcut; Dir_kB always ships data.
                let exact = matches!(self.protocol, ProtocolKind::AckWise { .. });
                let req_was_sharer = sharers.contains(req.requester);
                if req_was_sharer == Some(true) && sharers.count() == 1 {
                    if exact {
                        // Sole sharer: grant the upgrade without data.
                        self.set_dir(addr, DirState::Modified(req.requester));
                        self.send_home(
                            home,
                            req.requester,
                            CohKind::UpgradeRep,
                            addr,
                            req.requester,
                        );
                    } else {
                        // Dir_kB sole-"sharer" write: fetch the line and
                        // reply with a full exclusive response.
                        self.set_dir(
                            addr,
                            DirState::WaitMem {
                                requester: req.requester,
                                ex: true,
                            },
                        );
                        self.mem_read(home, addr, req.requester);
                    }
                    self.dir_retire(addr);
                    return;
                }
                match sharers {
                    SharerSet::Ptrs(ref ptrs) => {
                        let targets: Vec<CoreId> = ptrs
                            .iter()
                            .copied()
                            .filter(|&c| c != req.requester)
                            .collect(); // audit: allow(alloc) invalidation target list ≤ k pointers
                        debug_assert!(!targets.is_empty());
                        let needed = targets.len() as u32; // audit: allow(cast) sharer count ≤ cores ≤ 1024
                        for t in &targets {
                            self.stats.inv_unicasts += 1;
                            self.send_home(home, *t, CohKind::Inv, addr, req.requester);
                        }
                        let need_data = req_was_sharer != Some(true) || !exact;
                        self.set_dir(
                            addr,
                            DirState::WaitAcks {
                                requester: req.requester,
                                needed,
                                need_data,
                                have_data: false,
                            },
                        );
                        if need_data {
                            self.mem_read(home, addr, req.requester);
                        }
                    }
                    SharerSet::Overflow { count } => {
                        // Broadcast invalidation.
                        self.stats.inv_broadcasts += 1;
                        self.seq[home.idx()] = self.seq[home.idx()].wrapping_add(1);
                        let seq = self.seq[home.idx()];
                        self.send(
                            home,
                            Dest::Broadcast,
                            CohKind::Inv,
                            addr,
                            req.requester,
                            seq,
                        );
                        // ACKwise needs acks from the actual sharers only
                        // (it tracked their count); Dir_kB collects one
                        // from every core. The home core itself never
                        // sees its own broadcast on the wire, so it is
                        // delivered locally below; its ack — if one is
                        // owed — arrives via the NIC loopback like any
                        // other.
                        let needed = match self.protocol {
                            ProtocolKind::AckWise { .. } => count,
                            ProtocolKind::DirB { .. } => self.topo.cores() as u32, // audit: allow(cast) core count ≤ 1024
                        };
                        // With identities lost, data is fetched
                        // conservatively (the requester's copy, if any,
                        // is invalidated by the broadcast too).
                        self.set_dir(
                            addr,
                            DirState::WaitAcks {
                                requester: req.requester,
                                needed,
                                need_data: true,
                                have_data: false,
                            },
                        );
                        self.mem_read(home, addr, req.requester);
                        // Local (same-tile) delivery of the broadcast to
                        // the home core: updates its sequence horizon,
                        // releases held unicasts, invalidates/acks.
                        self.core_bcast_inv(
                            home,
                            CohPayload {
                                kind: CohKind::Inv,
                                addr,
                                requester: req.requester,
                                seq,
                            },
                        );
                    }
                }
            }
            (DirState::Modified(owner), false) => {
                assert_ne!(owner, req.requester, "owner re-reading its own line");
                self.set_dir(
                    addr,
                    DirState::WaitWb {
                        requester: req.requester,
                        owner,
                    },
                );
                self.send_home(home, owner, CohKind::WbReq, addr, req.requester);
            }
            (DirState::Modified(owner), true) => {
                assert_ne!(owner, req.requester, "owner re-writing its own line");
                self.set_dir(
                    addr,
                    DirState::WaitFlush {
                        requester: req.requester,
                        owner,
                    },
                );
                self.send_home(home, owner, CohKind::FlushReq, addr, req.requester);
            }
            (s, _) => unreachable!("dir_process on transient state {s:?}"),
        }
    }

    fn dir_inv_ack(&mut self, addr: Addr) {
        self.stats.dir_lookups += 1;
        self.stats.inv_acks += 1;
        let entry = self.dir.get_mut(&addr).expect("ack for live entry"); // audit: allow(expect) entry stays live while acks are outstanding
        match &mut entry.state {
            DirState::WaitAcks { needed, .. } => {
                *needed -= 1;
            }
            s => panic!("InvAck in state {s:?}"),
        }
        self.dir_check_acks_done(addr);
    }

    fn dir_mem_data(&mut self, addr: Addr) {
        self.stats.dir_lookups += 1;
        let home = addr.home(&self.topo);
        let entry = self.dir.get_mut(&addr).expect("mem data for live entry"); // audit: allow(expect) entry stays live while memory data is in flight
                                                                               // audit: allow(alloc) k-pointer state copy; entry is mutated below
        match entry.state.clone() {
            DirState::WaitMem { requester, ex } => {
                let (kind, st) = if ex {
                    (CohKind::ExRep, DirState::Modified(requester))
                } else {
                    (CohKind::ShRep, DirState::Shared(SharerSet::one(requester)))
                };
                self.set_dir(addr, st);
                self.send_home(home, requester, kind, addr, requester);
                self.dir_retire(addr);
            }
            DirState::WaitMemShared {
                requester,
                mut sharers,
            } => {
                let overflowed = sharers.add(requester, self.protocol.k());
                if overflowed {
                    self.stats.sharer_overflows += 1;
                }
                self.set_dir(addr, DirState::Shared(sharers));
                self.send_home(home, requester, CohKind::ShRep, addr, requester);
                self.dir_retire(addr);
            }
            DirState::WaitAcks { .. } => {
                if let DirState::WaitAcks { have_data, .. } = &mut entry.state {
                    *have_data = true;
                }
                self.dir_check_acks_done(addr);
            }
            s => panic!("MemData in state {s:?}"),
        }
    }

    fn dir_check_acks_done(&mut self, addr: Addr) {
        let home = addr.home(&self.topo);
        let entry = self.dir.get(&addr).expect("entry"); // audit: allow(expect) transition targets a live directory entry
        if let DirState::WaitAcks {
            requester,
            needed,
            need_data,
            have_data,
        } = entry.state
        {
            if needed == 0 && (!need_data || have_data) {
                let kind = if need_data {
                    CohKind::ExRep
                } else {
                    CohKind::UpgradeRep
                };
                self.set_dir(addr, DirState::Modified(requester));
                self.send_home(home, requester, kind, addr, requester);
                self.dir_retire(addr);
            }
        }
    }

    fn dir_evict(&mut self, addr: Addr, from: CoreId) {
        self.stats.dir_lookups += 1;
        self.stats.dir_updates += 1;
        let entry = self.dir.get_mut(&addr).expect("evict for live entry"); // audit: allow(expect) evictions come from caches the directory tracks
        let mut recheck_acks = false;
        match &mut entry.state {
            DirState::Shared(sharers) => {
                sharers.remove(from);
                if sharers.count() == 0 {
                    entry.state = DirState::Uncached;
                }
            }
            DirState::WaitMemShared { sharers, .. } => {
                sharers.remove(from);
            }
            // An eviction crossing an in-flight invalidation substitutes
            // for that sharer's ack (ACKwise accounting).
            DirState::WaitAcks { needed, .. } => {
                *needed = needed.saturating_sub(1);
                recheck_acks = true;
            }
            s => panic!("Evict from {from:?} in state {s:?}"),
        }
        if recheck_acks {
            self.dir_check_acks_done(addr);
        } else {
            self.dir_retire(addr);
        }
    }

    fn dir_evict_dirty(&mut self, addr: Addr, from: CoreId, now: Cycle) {
        self.stats.dir_lookups += 1;
        let home = addr.home(&self.topo);
        let entry = self.dir.get_mut(&addr).expect("dirty evict for live entry"); // audit: allow(expect) dirty evictions come from a tracked M holder
                                                                                  // audit: allow(alloc) k-pointer state copy; entry is mutated below
        match entry.state.clone() {
            DirState::Modified(owner) => {
                assert_eq!(owner, from);
                self.set_dir(addr, DirState::Uncached);
                self.mem_write(home, addr, now);
                self.dir_retire(addr);
            }
            // The owner's eviction crossed our WbReq/FlushReq: it carries
            // the data we were waiting for.
            DirState::WaitWb { requester, owner } => {
                assert_eq!(owner, from);
                self.mem_write(home, addr, now);
                self.set_dir(addr, DirState::Shared(SharerSet::one(requester)));
                self.send_home(home, requester, CohKind::ShRep, addr, requester);
                self.dir_retire(addr);
            }
            DirState::WaitFlush { requester, owner } => {
                assert_eq!(owner, from);
                self.set_dir(addr, DirState::Modified(requester));
                self.send_home(home, requester, CohKind::ExRep, addr, requester);
                self.dir_retire(addr);
            }
            s => panic!("EvictDirty from {from:?} in state {s:?}"),
        }
    }

    fn dir_wb_data(&mut self, addr: Addr, now: Cycle) {
        self.stats.dir_lookups += 1;
        let home = addr.home(&self.topo);
        let entry = self.dir.get(&addr).expect("wb data for live entry"); // audit: allow(expect) writeback data answers a live WbReq
                                                                          // audit: allow(alloc) k-pointer state copy; entry is mutated below
        match entry.state.clone() {
            DirState::WaitWb { requester, owner } => {
                self.mem_write(home, addr, now);
                let mut sharers = SharerSet::one(owner);
                sharers.add(requester, self.protocol.k());
                self.set_dir(addr, DirState::Shared(sharers));
                self.send_home(home, requester, CohKind::ShRep, addr, requester);
                self.dir_retire(addr);
            }
            s => panic!("WbData in state {s:?}"),
        }
    }

    fn dir_flush_data(&mut self, addr: Addr) {
        self.stats.dir_lookups += 1;
        let home = addr.home(&self.topo);
        let entry = self.dir.get(&addr).expect("flush data for live entry"); // audit: allow(expect) flush data answers a live FlushReq
                                                                             // audit: allow(alloc) k-pointer state copy; entry is mutated below
        match entry.state.clone() {
            DirState::WaitFlush { requester, .. } => {
                self.set_dir(addr, DirState::Modified(requester));
                self.send_home(home, requester, CohKind::ExRep, addr, requester);
                self.dir_retire(addr);
            }
            s => panic!("FlushData in state {s:?}"),
        }
    }

    /// After returning to a stable state, serve queued requests.
    fn dir_retire(&mut self, addr: Addr) {
        loop {
            let entry = self.dir.get_mut(&addr).expect("entry"); // audit: allow(expect) transition targets a live directory entry
            if entry.state.is_transient() {
                break;
            }
            let Some(req) = entry.waiting.pop_front() else {
                // Garbage-collect fully idle entries.
                if entry.state == DirState::Uncached && entry.waiting.is_empty() {
                    self.dir.remove(&addr);
                }
                break;
            };
            self.dir_process(addr, req);
        }
    }

    fn set_dir(&mut self, addr: Addr, state: DirState) {
        if let DirState::Modified(owner) = state {
            self.debug_check_exclusive_grant(addr, owner);
        }
        self.dir.get_mut(&addr).expect("entry").state = state; // audit: allow(expect) transition targets a live directory entry
    }

    /// Sanitizer: when the directory commits a line to `Modified(owner)`,
    /// every *other* L2 must hold it Invalid — all sharers were
    /// invalidated (or evicted) and the previous owner flushed. The new
    /// owner itself may still be S (upgrade grant) or I (response in
    /// flight). Debug builds only; the scan is O(cores).
    fn debug_check_exclusive_grant(&self, addr: Addr, owner: CoreId) {
        if cfg!(debug_assertions) {
            for (ci, cm) in self.cores.iter().enumerate() {
                debug_assert!(
                    ci == owner.idx() || cm.l2.state(addr) == LineState::I,
                    "exclusive grant of {addr:?} to {owner:?} while core {ci} \
                     still holds the line {:?}",
                    cm.l2.state(addr)
                );
            }
        }
    }

    fn mem_read(&mut self, home: CoreId, addr: Addr, requester: CoreId) {
        let cl = addr.mem_cluster(&self.topo);
        let hub = self.topo.hub_core(cl);
        self.send(
            home,
            Dest::Unicast(hub),
            CohKind::MemRead,
            addr,
            requester,
            0,
        );
    }

    fn mem_write(&mut self, home: CoreId, addr: Addr, _now: Cycle) {
        let cl = addr.mem_cluster(&self.topo);
        let hub = self.topo.hub_core(cl);
        self.send(home, Dest::Unicast(hub), CohKind::MemWrite, addr, home, 0);
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    /// Queue a home→core message stamped with the home's current sequence
    /// number.
    fn send_home(
        &mut self,
        home: CoreId,
        to: CoreId,
        kind: CohKind,
        addr: Addr,
        requester: CoreId,
    ) {
        let seq = self.seq[home.idx()];
        self.send(home, Dest::Unicast(to), kind, addr, requester, seq);
    }

    fn send(
        &mut self,
        src: CoreId,
        dest: Dest,
        kind: CohKind,
        addr: Addr,
        requester: CoreId,
        seq: u16,
    ) {
        let deliveries = match dest {
            Dest::Unicast(_) => 1,
            Dest::Broadcast => self.topo.cores() as u32 - 1, // audit: allow(cast) core count ≤ 1024
        };
        let token = self.payloads.insert(
            CohPayload {
                kind,
                addr,
                requester,
                seq,
            },
            deliveries,
        );
        // audit: allow(alloc) outbox bounded by outstanding transactions; amortized
        self.outbox[src.idx()].push_back(Message {
            src,
            dest,
            class: kind.class(),
            token,
        });
        self.outbox_msgs += 1;
        if !self.outbox_is_active[src.idx()] {
            self.outbox_is_active[src.idx()] = true;
            self.outbox_active.push(src.0); // audit: allow(alloc) active list ≤ one entry per core
        }
    }

    // ------------------------------------------------------------------
    // Introspection for tests and invariants
    // ------------------------------------------------------------------

    /// Nothing outstanding anywhere in the memory system.
    pub fn is_quiescent(&self) -> bool {
        self.cores
            .iter()
            .all(|c| c.mshr.is_none() && c.held.is_empty())
            && self.payloads.live() == 0
            && self.memctrls.iter().all(|m| m.is_idle())
            && self.outbox.iter().all(|q| q.is_empty())
            && self.completions.is_empty()
    }

    /// Coherence invariants that must hold at quiescence (and, for the
    /// single-writer property, at any instant):
    ///
    /// 1. **Single writer**: a line in M in one L2 is in no other L2.
    /// 2. **Directory accuracy** (quiescent): a stable `Modified(o)` entry
    ///    matches exactly one M copy at `o`; a stable `Shared` entry's
    ///    count equals the number of S copies (ACKwise; Dir_kB only upper-
    ///    bounds because of silent evictions).
    ///
    /// Panics on violation.
    pub fn check_invariants(&self, quiescent: bool) {
        use std::collections::BTreeMap as Map;
        let mut m_holder: Map<Addr, CoreId> = Map::new();
        let mut s_count: Map<Addr, u32> = Map::new();
        for (ci, cm) in self.cores.iter().enumerate() {
            for (addr, st) in cm.l2.resident() {
                match st {
                    LineState::M => {
                        // audit: allow(cast) core index ≤ 1024 fits u16
                        if let Some(prev) = m_holder.insert(addr, CoreId(ci as u16)) {
                            panic!("two M holders for {addr:?}: {prev:?} and core {ci}");
                        }
                    }
                    LineState::S => *s_count.entry(addr).or_insert(0) += 1,
                    LineState::I => unreachable!(),
                }
            }
        }
        for addr in m_holder.keys() {
            assert_eq!(
                s_count.get(addr),
                None,
                "M and S copies coexist for {addr:?}"
            );
        }
        if !quiescent {
            return;
        }
        for (addr, entry) in &self.dir {
            match &entry.state {
                DirState::Modified(owner) => {
                    assert_eq!(
                        m_holder.get(addr),
                        Some(owner),
                        "directory M owner mismatch for {addr:?}"
                    );
                }
                DirState::Shared(sharers) => {
                    let actual = s_count.get(addr).copied().unwrap_or(0);
                    match self.protocol {
                        ProtocolKind::AckWise { .. } => assert_eq!(
                            sharers.count(),
                            actual,
                            "ACKwise sharer count mismatch for {addr:?}"
                        ),
                        ProtocolKind::DirB { .. } => assert!(
                            sharers.count() >= actual,
                            "Dir_kB sharer undercount for {addr:?}"
                        ),
                    }
                }
                DirState::Uncached => {}
                s => panic!("transient state {s:?} at quiescence for {addr:?}"),
            }
        }
    }

    /// L2 state of a line at a core (test helper).
    pub fn l2_state(&self, core: CoreId, addr: Addr) -> LineState {
        self.cores[core.idx()].l2.state(addr.line_base())
    }
}
