//! Event counters for the memory subsystem.
//!
//! These feed the energy integration: cache access counts × per-access
//! energies (mini-McPAT), directory operations × directory access energy,
//! and memory controller transfer counts.
//!
//! Counter-coverage contract (enforced by `atac-audit`): every field
//! below must either be folded into `crates/sim/src/energy.rs` or carry
//! an `// audit: non-energy` waiver explaining why it is performance-only.

use atac_net::counters_struct;

counters_struct! {
    /// All memory-subsystem event counters for one run.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct CoherenceStats {
        /// Instruction fetch accesses to L1-I.
        pub l1i_accesses: u64,
        /// L1-I misses (served by the local L2 port; private, non-coherent).
        // audit: non-energy — miss-rate diagnostic; the refill itself is
        // charged as an L2 access.
        pub l1i_misses: u64,
        /// L1-D read accesses.
        pub l1d_reads: u64,
        /// L1-D write accesses.
        pub l1d_writes: u64,
        /// L1-D misses (either data absent or insufficient permissions).
        // audit: non-energy — miss-rate diagnostic; the refill is charged
        // as an L2 access and (on L2 miss) directory/network events.
        pub l1d_misses: u64,
        /// L2 accesses (demand from L1 miss paths + fills + external probes).
        pub l2_accesses: u64,
        /// L2 misses requiring a directory transaction.
        // audit: non-energy — miss-rate diagnostic; the transaction's energy
        // is charged through dir_lookups/dir_updates and network counters.
        pub l2_misses: u64,
        /// Write permission upgrades (S→M) requested.
        // audit: non-energy — protocol-mix diagnostic; the upgrade's
        // directory work is charged through dir_lookups/dir_updates.
        pub upgrades: u64,
        /// Clean shared evictions from L2.
        // audit: non-energy — the eviction's L2 read and directory update
        // are charged through l2_accesses/dir_updates.
        pub evictions_clean: u64,
        /// Dirty evictions from L2 (write-back traffic).
        // audit: non-energy — write-back energy is charged through
        // l2_accesses and network flit counters.
        pub evictions_dirty: u64,
        /// Silent evictions (Dir_kB only).
        // audit: non-energy — silent by definition: no message, no
        // directory update, hence no extra energy event.
        pub evictions_silent: u64,

        /// Directory lookups (any request or ack touching an entry).
        pub dir_lookups: u64,
        /// Directory entry updates (state/sharer-list writes).
        pub dir_updates: u64,
        /// Invalidations sent as unicasts.
        // audit: non-energy — protocol-mix diagnostic (Fig. 15); the
        // message's energy is charged by the network counters.
        pub inv_unicasts: u64,
        /// Invalidation broadcasts sent.
        // audit: non-energy — protocol-mix diagnostic (Figs. 14–16); the
        // message's energy is charged by the network counters.
        pub inv_broadcasts: u64,
        /// Invalidation acknowledgements received at directories.
        // audit: non-energy — each ack's directory touch is charged through
        // dir_lookups; transport through network counters.
        pub inv_acks: u64,
        /// Sharer-list overflows (transition to the global/limited regime).
        // audit: non-energy — protocol-mix diagnostic (ACKwise_k sizing).
        pub sharer_overflows: u64,

        /// Memory controller line reads.
        // audit: non-energy — off-chip DRAM is outside the paper's Fig. 7
        // network+cache energy scope (§V-C).
        pub mem_reads: u64,
        /// Memory controller line writes.
        // audit: non-energy — off-chip DRAM is outside the paper's Fig. 7
        // network+cache energy scope (§V-C).
        pub mem_writes: u64,
        /// Total cycles memory requests waited in controller queues
        /// (bandwidth contention, 5 GB/s per controller).
        // audit: non-energy — queueing-delay diagnostic; waiting burns no
        // modeled dynamic energy.
        pub mem_queue_cycles: u64,

        /// Coherence messages buffered by the §IV-C-1 sequence-number logic
        /// because they arrived out of order (unicast ahead of broadcast).
        // audit: non-energy — ordering diagnostic (§IV-C-1); the buffered
        // message's transport energy was already charged in flight.
        pub seq_buffered_unicasts: u64,
        /// Broadcast invalidations buffered behind an outstanding ShReq.
        // audit: non-energy — ordering diagnostic (§IV-C-1).
        pub seq_buffered_broadcasts: u64,
        /// Buffered broadcasts that turned out to be stale and were dropped.
        // audit: non-energy — ordering diagnostic (§IV-C-1).
        pub seq_dropped_broadcasts: u64,
    }
}

impl CoherenceStats {
    /// Total L1-D accesses.
    pub fn l1d_accesses(&self) -> u64 {
        self.l1d_reads + self.l1d_writes
    }

    /// Fraction of L1-D accesses that miss.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses() == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses() as f64
        }
    }

    /// Fraction of L2 demand accesses that miss to the directory.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = CoherenceStats::default();
        assert_eq!(s.l1d_miss_rate(), 0.0);
        assert_eq!(s.l2_miss_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CoherenceStats {
            l1d_reads: 60,
            l1d_writes: 40,
            l1d_misses: 10,
            l2_accesses: 50,
            l2_misses: 5,
            ..Default::default()
        };
        assert!((s.l1d_miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.l2_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CoherenceStats {
            inv_broadcasts: 2,
            ..Default::default()
        };
        let b = CoherenceStats {
            inv_broadcasts: 3,
            mem_reads: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.inv_broadcasts, 5);
        assert_eq!(a.mem_reads, 7);
    }

    #[test]
    fn field_roundtrip_by_name() {
        let mut a = CoherenceStats::default();
        let b = CoherenceStats {
            dir_lookups: 11,
            seq_buffered_unicasts: 3,
            ..Default::default()
        };
        for (name, value) in b.fields() {
            assert!(a.set_field(name, value), "unknown field {name}");
        }
        assert_eq!(a, b);
        assert!(!a.set_field("no_such_counter", 1));
    }
}
