//! Event counters for the memory subsystem.
//!
//! These feed the energy integration: cache access counts × per-access
//! energies (mini-McPAT), directory operations × directory access energy,
//! and memory controller transfer counts.

use serde::{Deserialize, Serialize};

/// All memory-subsystem event counters for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceStats {
    /// Instruction fetch accesses to L1-I.
    pub l1i_accesses: u64,
    /// L1-I misses (served by the local L2 port; private, non-coherent).
    pub l1i_misses: u64,
    /// L1-D read accesses.
    pub l1d_reads: u64,
    /// L1-D write accesses.
    pub l1d_writes: u64,
    /// L1-D misses (either data absent or insufficient permissions).
    pub l1d_misses: u64,
    /// L2 accesses (demand from L1 miss paths + fills + external probes).
    pub l2_accesses: u64,
    /// L2 misses requiring a directory transaction.
    pub l2_misses: u64,
    /// Write permission upgrades (S→M) requested.
    pub upgrades: u64,
    /// Clean shared evictions from L2.
    pub evictions_clean: u64,
    /// Dirty evictions from L2 (write-back traffic).
    pub evictions_dirty: u64,
    /// Silent evictions (Dir_kB only).
    pub evictions_silent: u64,

    /// Directory lookups (any request or ack touching an entry).
    pub dir_lookups: u64,
    /// Directory entry updates (state/sharer-list writes).
    pub dir_updates: u64,
    /// Invalidations sent as unicasts.
    pub inv_unicasts: u64,
    /// Invalidation broadcasts sent.
    pub inv_broadcasts: u64,
    /// Invalidation acknowledgements received at directories.
    pub inv_acks: u64,
    /// Sharer-list overflows (transition to the global/limited regime).
    pub sharer_overflows: u64,

    /// Memory controller line reads.
    pub mem_reads: u64,
    /// Memory controller line writes.
    pub mem_writes: u64,
    /// Total cycles memory requests waited in controller queues
    /// (bandwidth contention, 5 GB/s per controller).
    pub mem_queue_cycles: u64,

    /// Coherence messages buffered by the §IV-C-1 sequence-number logic
    /// because they arrived out of order (unicast ahead of broadcast).
    pub seq_buffered_unicasts: u64,
    /// Broadcast invalidations buffered behind an outstanding ShReq.
    pub seq_buffered_broadcasts: u64,
    /// Buffered broadcasts that turned out to be stale and were dropped.
    pub seq_dropped_broadcasts: u64,
}

impl CoherenceStats {
    /// Total L1-D accesses.
    pub fn l1d_accesses(&self) -> u64 {
        self.l1d_reads + self.l1d_writes
    }

    /// Fraction of L1-D accesses that miss.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses() == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses() as f64
        }
    }

    /// Fraction of L2 demand accesses that miss to the directory.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// Accumulate another run's counters.
    pub fn merge(&mut self, o: &CoherenceStats) {
        macro_rules! acc {
            ($($f:ident),*) => { $( self.$f += o.$f; )* };
        }
        acc!(
            l1i_accesses,
            l1i_misses,
            l1d_reads,
            l1d_writes,
            l1d_misses,
            l2_accesses,
            l2_misses,
            upgrades,
            evictions_clean,
            evictions_dirty,
            evictions_silent,
            dir_lookups,
            dir_updates,
            inv_unicasts,
            inv_broadcasts,
            inv_acks,
            sharer_overflows,
            mem_reads,
            mem_writes,
            mem_queue_cycles,
            seq_buffered_unicasts,
            seq_buffered_broadcasts,
            seq_dropped_broadcasts
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = CoherenceStats::default();
        assert_eq!(s.l1d_miss_rate(), 0.0);
        assert_eq!(s.l2_miss_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CoherenceStats {
            l1d_reads: 60,
            l1d_writes: 40,
            l1d_misses: 10,
            l2_accesses: 50,
            l2_misses: 5,
            ..Default::default()
        };
        assert!((s.l1d_miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.l2_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CoherenceStats {
            inv_broadcasts: 2,
            ..Default::default()
        };
        let b = CoherenceStats {
            inv_broadcasts: 3,
            mem_reads: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.inv_broadcasts, 5);
        assert_eq!(a.mem_reads, 7);
    }
}
