//! Set-associative cache arrays with MSI line states and LRU replacement.
//!
//! These are the *functional* cache models (tags + states); timing is
//! applied by the core-side controller and energy by `atac-phys`'s
//! per-access energies multiplied with the access counters in
//! [`crate::stats::CoherenceStats`].

use crate::addr::Addr;

/// MSI coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Invalid / not present.
    I,
    /// Shared, clean, read-only.
    S,
    /// Modified, exclusive, writable (dirty).
    M,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        state: LineState::I,
        lru: 0,
    };
}

/// What a fill displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// An invalid way was used; nothing displaced.
    None,
    /// A clean shared line was displaced.
    CleanShared(Addr),
    /// A modified line was displaced (needs a dirty write-back).
    Dirty(Addr),
}

/// A set-associative cache over line-aligned addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    lines: Vec<Line>, // sets × ways
    tick: u64,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines. All three must be powers of two.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(capacity_bytes.is_power_of_two());
        assert!(line_bytes.is_power_of_two());
        assert!(ways.is_power_of_two());
        let lines_total = (capacity_bytes / line_bytes) as usize;
        assert!(lines_total >= ways, "capacity too small for associativity");
        let sets = lines_total / ways;
        SetAssocCache {
            sets,
            ways,
            line_bytes,
            lines: vec![Line::EMPTY; lines_total],
            tick: 0,
        }
    }

    /// The paper's L1 (32 KB, 4-way, 64 B lines).
    pub fn l1() -> Self {
        Self::new(32 * 1024, 4, 64)
    }

    /// The paper's L2 (256 KB, 8-way, 64 B lines).
    pub fn l2() -> Self {
        Self::new(256 * 1024, 8, 64)
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> usize {
        ((addr.line(self.line_bytes) as usize) & (self.sets - 1)) * self.ways
    }

    #[inline]
    fn tag_of(&self, addr: Addr) -> u64 {
        addr.line(self.line_bytes) / self.sets as u64
    }

    /// Current state of `addr` (I if absent). Does not touch LRU.
    pub fn state(&self, addr: Addr) -> LineState {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in 0..self.ways {
            let l = &self.lines[base + w];
            if l.state != LineState::I && l.tag == tag {
                return l.state;
            }
        }
        LineState::I
    }

    /// Look up `addr`, updating LRU on hit. Returns its state.
    pub fn access(&mut self, addr: Addr) -> LineState {
        self.tick += 1;
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in 0..self.ways {
            let l = &mut self.lines[base + w];
            if l.state != LineState::I && l.tag == tag {
                l.lru = self.tick;
                return l.state;
            }
        }
        LineState::I
    }

    /// Change the state of a present line; panics if absent (use
    /// [`SetAssocCache::fill`] to insert).
    pub fn set_state(&mut self, addr: Addr, state: LineState) {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in 0..self.ways {
            let l = &mut self.lines[base + w];
            if l.state != LineState::I && l.tag == tag {
                if state == LineState::I {
                    l.state = LineState::I;
                } else {
                    l.state = state;
                }
                return;
            }
        }
        panic!("set_state on absent line {addr:?}");
    }

    /// Invalidate `addr` if present; returns the state it had.
    pub fn invalidate(&mut self, addr: Addr) -> LineState {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for w in 0..self.ways {
            let l = &mut self.lines[base + w];
            if l.state != LineState::I && l.tag == tag {
                let was = l.state;
                l.state = LineState::I;
                return was;
            }
        }
        LineState::I
    }

    /// Insert `addr` in `state`, evicting the LRU way if the set is full.
    /// Returns what was displaced.
    pub fn fill(&mut self, addr: Addr, state: LineState) -> Victim {
        assert_ne!(state, LineState::I, "cannot fill an invalid line");
        self.tick += 1;
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        // Already present: just update.
        for w in 0..self.ways {
            let l = &mut self.lines[base + w];
            if l.state != LineState::I && l.tag == tag {
                l.state = state;
                l.lru = self.tick;
                return Victim::None;
            }
        }
        // Free way?
        for w in 0..self.ways {
            if self.lines[base + w].state == LineState::I {
                self.lines[base + w] = Line {
                    tag,
                    state,
                    lru: self.tick,
                };
                return Victim::None;
            }
        }
        // Evict LRU.
        let w = (0..self.ways)
            .min_by_key(|&w| self.lines[base + w].lru)
            .expect("nonzero ways"); // audit: allow(expect) associativity validated at construction
        let victim = &self.lines[base + w];
        let victim_line = victim.tag * self.sets as u64 + (base / self.ways) as u64;
        let victim_addr = Addr(victim_line * self.line_bytes);
        let out = match victim.state {
            LineState::M => Victim::Dirty(victim_addr),
            LineState::S => Victim::CleanShared(victim_addr),
            LineState::I => unreachable!(),
        };
        self.lines[base + w] = Line {
            tag,
            state,
            lru: self.tick,
        };
        out
    }

    /// Iterate over all resident lines as (line address, state).
    pub fn resident(&self) -> impl Iterator<Item = (Addr, LineState)> + '_ {
        self.lines.iter().enumerate().filter_map(move |(i, l)| {
            if l.state == LineState::I {
                None
            } else {
                let set = (i / self.ways) as u64;
                let line = l.tag * self.sets as u64 + set;
                Some((Addr(line * self.line_bytes), l.state))
            }
        })
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = SetAssocCache::l1();
        let a = Addr(0x1000);
        assert_eq!(c.access(a), LineState::I);
        assert_eq!(c.fill(a, LineState::S), Victim::None);
        assert_eq!(c.access(a), LineState::S);
        // Same line, different byte.
        assert_eq!(c.access(Addr(0x1030)), LineState::S);
        // Different line.
        assert_eq!(c.access(Addr(0x1040)), LineState::I);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 4-way: fill 5 lines mapping to the same set.
        let mut c = SetAssocCache::new(1024, 4, 64); // 4 sets
        let stride = 4 * 64; // same set every 256 bytes
        for i in 0..4u64 {
            assert_eq!(c.fill(Addr(i * stride), LineState::S), Victim::None);
        }
        // Touch line 0 to make line 1 the LRU.
        c.access(Addr(0));
        let v = c.fill(Addr(4 * stride), LineState::S);
        assert_eq!(v, Victim::CleanShared(Addr(stride)));
        assert_eq!(c.state(Addr(0)), LineState::S);
        assert_eq!(c.state(Addr(stride)), LineState::I);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = SetAssocCache::new(256, 2, 64); // 2 sets, 2 ways
        let stride = 2 * 64;
        c.fill(Addr(0), LineState::M);
        c.fill(Addr(stride), LineState::S);
        let v = c.fill(Addr(2 * stride), LineState::S);
        assert_eq!(v, Victim::Dirty(Addr(0)));
    }

    #[test]
    fn invalidate_returns_prior_state() {
        let mut c = SetAssocCache::l2();
        let a = Addr(0x00de_adbe_efc0);
        c.fill(a, LineState::M);
        assert_eq!(c.invalidate(a), LineState::M);
        assert_eq!(c.invalidate(a), LineState::I);
        assert_eq!(c.state(a), LineState::I);
    }

    #[test]
    fn fill_existing_updates_state() {
        let mut c = SetAssocCache::l2();
        let a = Addr(0x40);
        c.fill(a, LineState::S);
        assert_eq!(c.fill(a, LineState::M), Victim::None);
        assert_eq!(c.state(a), LineState::M);
    }

    #[test]
    fn resident_roundtrips_addresses() {
        let mut c = SetAssocCache::l2();
        let addrs = [
            Addr(0x0),
            Addr(0x1000),
            Addr(0x07ff_ffc0),
            Addr(0x0001_2345_00c0),
        ];
        for (i, &a) in addrs.iter().enumerate() {
            c.fill(
                a,
                if i % 2 == 0 {
                    LineState::S
                } else {
                    LineState::M
                },
            );
        }
        let mut got: Vec<_> = c.resident().map(|(a, _)| a.line_addr(64)).collect();
        got.sort_unstable();
        let mut want: Vec<_> = addrs.iter().map(|a| a.line_addr(64)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = SetAssocCache::l1();
        let a = Addr(0x80);
        c.fill(a, LineState::S);
        c.set_state(a, LineState::M);
        assert_eq!(c.state(a), LineState::M);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn set_state_on_absent_panics() {
        let mut c = SetAssocCache::l1();
        c.set_state(Addr(0x80), LineState::M);
    }

    #[test]
    fn paper_geometries() {
        // 32 KB 4-way 64 B → 128 sets; 256 KB 8-way 64 B → 512 sets.
        let l1 = SetAssocCache::l1();
        let l2 = SetAssocCache::l2();
        assert_eq!(l1.sets, 128);
        assert_eq!(l2.sets, 512);
    }
}
