//! Coherence message vocabulary and the in-flight payload table.
//!
//! The network layer (`atac-net`) carries opaque 64-bit tokens; the
//! protocol keeps the real payload in a slab indexed by that token, with a
//! delivery refcount so broadcast payloads survive until every copy has
//! been consumed.

use crate::addr::Addr;
use atac_net::{CoreId, MessageClass};

/// Which directory protocol is running (paper §V-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// ACKwise_k: limited pointers; overflow sets a global bit and tracks
    /// the *count* of sharers; a broadcast invalidation collects acks only
    /// from actual sharers. No silent evictions.
    AckWise { k: usize },
    /// Dir_kB: limited pointers; overflow broadcasts invalidations and
    /// collects acks from *every* core. Supports silent evictions.
    DirB { k: usize },
}

impl ProtocolKind {
    /// Hardware sharer pointers.
    pub fn k(self) -> usize {
        match self {
            ProtocolKind::AckWise { k } | ProtocolKind::DirB { k } => k,
        }
    }

    /// Display name matching the paper (e.g. "ACKwise4", "Dir4B").
    pub fn name(self) -> String {
        match self {
            ProtocolKind::AckWise { k } => format!("ACKwise{k}"),
            ProtocolKind::DirB { k } => format!("Dir{k}B"),
        }
    }
}

/// Coherence message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohKind {
    // -------- core → home --------
    /// Request a shared (read) copy.
    ShReq,
    /// Request an exclusive (write) copy.
    ExReq,
    /// Invalidation acknowledgement.
    InvAck,
    /// Clean shared eviction notification (ACKwise only).
    Evict,
    /// Dirty eviction carrying the line (data message).
    EvictDirty,
    /// Write-back data in response to `WbReq` (owner keeps an S copy).
    WbData,
    /// Flush data in response to `FlushReq` (owner invalidates).
    FlushData,
    // -------- home → core --------
    /// Shared response with the line.
    ShRep,
    /// Exclusive response with the line.
    ExRep,
    /// Exclusive permission upgrade without data (requester held S).
    UpgradeRep,
    /// Invalidate request (unicast to a pointer, or broadcast).
    Inv,
    /// Ask the M owner to write back and demote to S.
    WbReq,
    /// Ask the M owner to flush (send data and invalidate).
    FlushReq,
    // -------- home ↔ memory controller --------
    /// Line fetch request to a memory controller.
    MemRead,
    /// Line write to a memory controller (data message).
    MemWrite,
    /// Memory controller's fill response (data message).
    MemData,
}

impl CohKind {
    /// Network message class: data-bearing messages are 600-bit "Data";
    /// everything else is an 88-bit control message (§IV-C sizes).
    pub fn class(self) -> MessageClass {
        match self {
            CohKind::EvictDirty
            | CohKind::WbData
            | CohKind::FlushData
            | CohKind::ShRep
            | CohKind::ExRep
            | CohKind::MemWrite
            | CohKind::MemData => MessageClass::Data,
            CohKind::ShReq
            | CohKind::ExReq
            | CohKind::InvAck
            | CohKind::Evict
            | CohKind::UpgradeRep
            | CohKind::Inv
            | CohKind::WbReq
            | CohKind::FlushReq
            | CohKind::MemRead => MessageClass::Control,
        }
    }
}

/// A coherence message payload (the decoded contents of a network token).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohPayload {
    /// Message kind.
    pub kind: CohKind,
    /// Line-aligned address.
    pub addr: Addr,
    /// The core this transaction is ultimately for (the requester), used
    /// by memory messages to route the eventual reply.
    pub requester: CoreId,
    /// ATAC+ broadcast sequence number (§IV-C-1): for home→core messages,
    /// the number of invalidation broadcasts the home had sent when this
    /// message departed.
    pub seq: u16,
}

/// Slab of in-flight payloads, refcounted by expected delivery count.
#[derive(Debug, Default)]
pub struct PayloadTable {
    slots: Vec<Option<(CohPayload, u32)>>,
    free: Vec<u32>,
}

impl PayloadTable {
    /// Insert a payload expecting `deliveries` deliveries; returns the
    /// token to put in the network message. Tokens are never zero.
    pub fn insert(&mut self, p: CohPayload, deliveries: u32) -> u64 {
        assert!(deliveries > 0);
        let idx = if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some((p, deliveries));
            i
        } else {
            // audit: allow(alloc) slab grows to the live-payload peak, then recycles
            self.slots.push(Some((p, deliveries)));
            (self.slots.len() - 1) as u32 // audit: allow(cast) slab index bounded by live payload cap
        };
        u64::from(idx) + 1
    }

    /// Read a payload by token and consume one delivery; frees the slot on
    /// the last one.
    pub fn take(&mut self, token: u64) -> CohPayload {
        let idx = (token - 1) as usize;
        let (p, refs) = self.slots[idx].as_mut().expect("live payload"); // audit: allow(expect) token refcount keeps the slot live
        let out = *p;
        *refs -= 1;
        if *refs == 0 {
            self.slots[idx] = None;
            self.free.push(idx as u32); // audit: allow(cast) slab index bounded by live payload cap; audit: allow(alloc) free list ≤ slab size
        }
        out
    }

    /// Peek without consuming (for buffered-message inspection).
    pub fn peek(&self, token: u64) -> CohPayload {
        self.slots[(token - 1) as usize].expect("live payload").0 // audit: allow(expect) token refcount keeps the slot live
    }

    /// Number of live payloads (for leak detection in tests).
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> CohPayload {
        CohPayload {
            kind: CohKind::ShReq,
            addr: Addr(0x40),
            requester: CoreId(3),
            seq: 0,
        }
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut t = PayloadTable::default();
        let tok = t.insert(payload(), 1);
        assert_ne!(tok, 0, "token 0 is reserved for 'no payload'");
        assert_eq!(t.take(tok), payload());
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn broadcast_refcounting() {
        let mut t = PayloadTable::default();
        let tok = t.insert(payload(), 3);
        assert_eq!(t.take(tok), payload());
        assert_eq!(t.live(), 1);
        t.take(tok);
        assert_eq!(t.live(), 1);
        t.take(tok);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slots_are_reused() {
        let mut t = PayloadTable::default();
        let a = t.insert(payload(), 1);
        t.take(a);
        let b = t.insert(payload(), 1);
        assert_eq!(a, b, "freed slot reused");
    }

    #[test]
    fn data_classes_match_paper() {
        assert_eq!(CohKind::ShReq.class(), MessageClass::Control);
        assert_eq!(CohKind::Inv.class(), MessageClass::Control);
        assert_eq!(CohKind::ShRep.class(), MessageClass::Data);
        assert_eq!(CohKind::EvictDirty.class(), MessageClass::Data);
        assert_eq!(CohKind::MemData.class(), MessageClass::Data);
    }

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolKind::AckWise { k: 4 }.name(), "ACKwise4");
        assert_eq!(ProtocolKind::DirB { k: 4 }.name(), "Dir4B");
    }

    #[test]
    #[should_panic(expected = "live payload")]
    fn double_take_panics() {
        let mut t = PayloadTable::default();
        let tok = t.insert(payload(), 1);
        t.take(tok);
        t.take(tok);
    }
}
