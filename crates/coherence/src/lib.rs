//! # atac-coherence — memory subsystem and cache-coherence protocols
//!
//! The memory-side substrate of the ATAC+ reproduction:
//!
//! * [`cache`] — set-associative L1-I/L1-D/L2 arrays with MSI states and
//!   LRU replacement (paper Table I geometries: 32 KB L1s, 256 KB L2,
//!   64-byte lines).
//! * [`directory`] — directory entries for the **ACKwise_k** and
//!   **Dir_kB** limited-directory protocols (paper §III-B, §V-F),
//!   including the global-bit overflow regimes that differentiate them.
//! * [`protocol`] — the coherence message vocabulary with the paper's
//!   §IV-C message sizes (88-bit control, 600-bit data, 16-bit sequence
//!   numbers riding free).
//! * [`memctrl`] — the 64 per-cluster memory controllers (5 GB/s,
//!   100 ns — Table I) as single-server queues.
//! * [`system`] — [`system::MemorySystem`]: the full chip-wide protocol
//!   engine, including the ATAC+ §IV-C-1 sequence-number reordering logic
//!   that keeps coherence correct when broadcasts (ONet) and unicasts
//!   (ENet/ONet by distance) take different routes.
//!
//! The engine drives any `atac_net::Network`; integration tests in
//! `tests/` run it over the real ATAC+ and electrical-mesh simulators and
//! check the single-writer and directory-accuracy invariants under random
//! workloads.

pub mod addr;
pub mod cache;
pub mod directory;
pub mod memctrl;
pub mod protocol;
pub mod stats;
pub mod system;

pub use addr::{Addr, LINE_BYTES};
pub use cache::{LineState, SetAssocCache, Victim};
pub use protocol::{CohKind, CohPayload, ProtocolKind};
pub use stats::CoherenceStats;
pub use system::{AccessResult, MemorySystem, L1_HIT_LATENCY, L2_HIT_LATENCY};
