//! Physical addresses and the static home / memory-controller maps.

use atac_net::{ClusterId, CoreId, Topology};

/// Cache line size in bytes (paper: 64-byte cache blocks).
pub const LINE_BYTES: u64 = 64;

/// A byte-granular physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// Line index at the given line size.
    #[inline]
    pub fn line(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }

    /// Line-aligned address at the given line size.
    #[inline]
    pub fn line_addr(self, line_bytes: u64) -> u64 {
        self.0 & !(line_bytes - 1)
    }

    /// Line-aligned `Addr` at the protocol line size.
    #[inline]
    pub fn line_base(self) -> Addr {
        Addr(self.line_addr(LINE_BYTES))
    }

    /// The home core of this address: the directory is distributed evenly
    /// across all cores by line interleaving ("each core is the home for
    /// a set of addresses; the allocation policy is statically defined",
    /// §III-B).
    #[inline]
    pub fn home(self, topo: &Topology) -> CoreId {
        CoreId((self.line(LINE_BYTES) % topo.cores() as u64) as u16)
    }

    /// The memory controller serving this address: 64 controllers, one
    /// per cluster (§III-B), line-interleaved. Returns the cluster whose
    /// hub tile hosts the controller.
    #[inline]
    pub fn mem_cluster(self, topo: &Topology) -> ClusterId {
        ClusterId(((self.line(LINE_BYTES) / topo.cores() as u64) % topo.clusters() as u64) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        let a = Addr(0x1073);
        assert_eq!(a.line(64), 0x41);
        assert_eq!(a.line_addr(64), 0x1040);
        assert_eq!(a.line_base(), Addr(0x1040));
    }

    #[test]
    fn homes_cover_all_cores_evenly() {
        let t = Topology::atac_1024();
        let mut counts = vec![0u32; t.cores()];
        for i in 0..4096u64 {
            counts[Addr(i * LINE_BYTES).home(&t).idx()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn same_line_same_home() {
        let t = Topology::atac_1024();
        assert_eq!(Addr(0x1000).home(&t), Addr(0x103f).home(&t));
        assert_ne!(Addr(0x1000).home(&t), Addr(0x1040).home(&t));
    }

    #[test]
    fn mem_controllers_cover_all_clusters() {
        let t = Topology::small(8, 4);
        let mut seen = vec![false; t.clusters()];
        for i in 0..1024u64 {
            seen[Addr(i * LINE_BYTES).mem_cluster(&t).idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
