//! Directory entry state for the ACKwise_k / Dir_kB protocols.
//!
//! The directory is *dataless*: it tracks ownership/sharing and
//! orchestrates data movement between caches and memory controllers, but
//! never stores lines itself. Entries live in a sparse map keyed by line
//! address; the home core of a line is statically determined by
//! [`crate::addr::Addr::home`]. Capacity (entries × entry width) is
//! accounted by `atac-phys`'s directory cache model.

use atac_net::CoreId;
use std::collections::VecDeque;

/// Sharer tracking with `k` hardware pointers (paper §III-B).
///
/// While the sharer count is ≤ `k`, exact identities are stored
/// (full-map behaviour). Beyond `k`, ACKwise sets a *global bit* and keeps
/// only the **total count**; Dir_kB keeps only the global bit (it doesn't
/// need the count because it collects acks from everyone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharerSet {
    /// Exact pointers (≤ k).
    Ptrs(Vec<CoreId>),
    /// Global bit set; only the number of sharers is known.
    Overflow { count: u32 },
}

impl SharerSet {
    /// A set containing exactly one sharer.
    pub fn one(c: CoreId) -> Self {
        // audit: allow(alloc) ACKwise pointer list holds ≤ k entries
        SharerSet::Ptrs(vec![c])
    }

    /// Number of sharers.
    pub fn count(&self) -> u32 {
        match self {
            SharerSet::Ptrs(v) => v.len() as u32, // audit: allow(cast) sharer list ≤ cores ≤ 1024
            SharerSet::Overflow { count } => *count,
        }
    }

    /// Whether the global (overflow) bit is set.
    pub fn overflowed(&self) -> bool {
        matches!(self, SharerSet::Overflow { .. })
    }

    /// Add a sharer under a `k`-pointer budget. Returns `true` if this
    /// addition overflowed the pointer storage (global bit newly set).
    pub fn add(&mut self, c: CoreId, k: usize) -> bool {
        match self {
            SharerSet::Ptrs(v) => {
                // Sanitizer: exact pointer storage must never exceed the
                // hardware budget before the global-bit regime engages.
                debug_assert!(
                    v.len() <= k,
                    "{} sharer pointers stored with a k={k} budget",
                    v.len()
                );
                if v.contains(&c) {
                    return false;
                }
                if v.len() < k {
                    v.push(c); // audit: allow(alloc) pointer list capped at k; capacity amortized
                    false
                } else {
                    *self = SharerSet::Overflow {
                        count: v.len() as u32 + 1, // audit: allow(cast) sharer list ≤ cores ≤ 1024
                    };
                    true
                }
            }
            SharerSet::Overflow { count } => {
                // Identities are lost; assume `c` is new (the protocol
                // only calls add() for cores that just received a copy
                // and were not known sharers).
                *count += 1;
                false
            }
        }
    }

    /// Remove a sharer (eviction). With the global bit set only the count
    /// decrements; identities stay unknown.
    pub fn remove(&mut self, c: CoreId) {
        match self {
            SharerSet::Ptrs(v) => {
                v.retain(|&x| x != c);
            }
            SharerSet::Overflow { count } => {
                *count = count.saturating_sub(1);
            }
        }
    }

    /// Is `c` known to be a sharer? `None` means "unknown" (global bit).
    pub fn contains(&self, c: CoreId) -> Option<bool> {
        match self {
            SharerSet::Ptrs(v) => Some(v.contains(&c)),
            SharerSet::Overflow { .. } => None,
        }
    }

    /// Exact pointers, if identities are known.
    pub fn ptrs(&self) -> Option<&[CoreId]> {
        match self {
            SharerSet::Ptrs(v) => Some(v),
            SharerSet::Overflow { .. } => None,
        }
    }
}

/// Stable + transient directory entry states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line.
    Uncached,
    /// One or more caches hold the line read-only.
    Shared(SharerSet),
    /// Exactly one cache holds the line writable.
    Modified(CoreId),
    /// Waiting for a memory fill for `requester` (line was Uncached).
    WaitMem { requester: CoreId, ex: bool },
    /// ShReq on Shared: waiting for memory data; `sharers` unchanged.
    WaitMemShared {
        requester: CoreId,
        sharers: SharerSet,
    },
    /// ExReq on Shared: waiting for invalidation acks (and possibly a
    /// parallel memory fetch when the requester wasn't already a sharer).
    WaitAcks {
        requester: CoreId,
        needed: u32,
        need_data: bool,
        have_data: bool,
    },
    /// ShReq on Modified: waiting for the owner's write-back data.
    WaitWb { requester: CoreId, owner: CoreId },
    /// ExReq on Modified: waiting for the owner's flush data.
    WaitFlush { requester: CoreId, owner: CoreId },
}

impl DirState {
    /// Is the entry in a transient (request-in-progress) state?
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            DirState::Uncached | DirState::Shared(_) | DirState::Modified(_)
        )
    }
}

/// A queued request waiting for the entry to return to a stable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingReq {
    /// Requesting core.
    pub requester: CoreId,
    /// Exclusive (write) or shared (read)?
    pub ex: bool,
}

/// A directory entry: state plus the queue of requests serialized behind
/// the in-flight one ("requests are processed serially at the directory
/// to maintain sequential consistency", §IV-C-1).
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// Current state.
    pub state: DirState,
    /// Requests waiting for the entry to go stable.
    pub waiting: VecDeque<WaitingReq>,
}

impl DirEntry {
    /// A fresh, uncached entry.
    pub fn new() -> Self {
        DirEntry {
            state: DirState::Uncached,
            waiting: VecDeque::new(),
        }
    }
}

impl Default for DirEntry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointers_track_exactly_up_to_k() {
        let mut s = SharerSet::one(CoreId(1));
        assert!(!s.add(CoreId(2), 4));
        assert!(!s.add(CoreId(3), 4));
        assert_eq!(s.count(), 3);
        assert_eq!(s.contains(CoreId(2)), Some(true));
        assert_eq!(s.contains(CoreId(9)), Some(false));
        assert!(!s.overflowed());
    }

    #[test]
    fn overflow_at_k_plus_one() {
        let mut s = SharerSet::one(CoreId(0));
        for i in 1..4u16 {
            assert!(!s.add(CoreId(i), 4));
        }
        // 5th sharer overflows a k=4 set.
        assert!(s.add(CoreId(4), 4));
        assert!(s.overflowed());
        assert_eq!(s.count(), 5);
        assert_eq!(s.contains(CoreId(0)), None, "identities lost");
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut s = SharerSet::one(CoreId(7));
        assert!(!s.add(CoreId(7), 4));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn remove_decrements_both_regimes() {
        let mut s = SharerSet::one(CoreId(0));
        s.add(CoreId(1), 2);
        s.remove(CoreId(0));
        assert_eq!(s.count(), 1);
        assert_eq!(s.contains(CoreId(0)), Some(false));

        let mut o = SharerSet::Overflow { count: 10 };
        o.remove(CoreId(3));
        assert_eq!(o.count(), 9);
    }

    #[test]
    fn overflow_count_keeps_growing() {
        let mut s = SharerSet::Overflow { count: 5 };
        s.add(CoreId(100), 4);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn transient_classification() {
        assert!(!DirState::Uncached.is_transient());
        assert!(!DirState::Shared(SharerSet::one(CoreId(0))).is_transient());
        assert!(!DirState::Modified(CoreId(0)).is_transient());
        assert!(DirState::WaitMem {
            requester: CoreId(0),
            ex: false
        }
        .is_transient());
        assert!(DirState::WaitWb {
            requester: CoreId(0),
            owner: CoreId(1)
        }
        .is_transient());
    }

    #[test]
    fn full_map_equivalence_at_k_equals_cores() {
        // With k = total cores, the set never overflows: ACKwise behaves
        // as a full-map directory (paper §V-F's endpoint).
        let mut s = SharerSet::one(CoreId(0));
        for i in 1..64u16 {
            assert!(!s.add(CoreId(i), 64));
        }
        assert!(!s.overflowed());
        assert_eq!(s.count(), 64);
    }
}
