//! Memory controller timing model.
//!
//! The paper's parameters (Table I): 64 controllers (one per cluster),
//! 5 GB/s of bandwidth each, 100 ns access latency. We model each
//! controller as a single-server FIFO: a 64-byte line transfer occupies
//! the controller for `64 B / 5 GB/s = 12.8 ns ≈ 13 cycles` at 1 GHz, and
//! the DRAM access itself adds a fixed 100-cycle latency. Queueing delay
//! (the difference between arrival and service start) is recorded as
//! `mem_queue_cycles` — the paper's back-pressure path from memory
//! bandwidth into application runtime.

use atac_net::Cycle;
use std::collections::VecDeque;

/// Cycles a 64-byte transfer occupies the controller (bandwidth term).
pub const SERVICE_CYCLES: Cycle = 13;
/// Fixed DRAM access latency in cycles (Table I: 100 ns at 1 GHz).
pub const MEM_LATENCY: Cycle = 100;

/// A pending memory operation (opaque tag chosen by the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp<T> {
    /// Caller's tag, returned on completion.
    pub tag: T,
    /// Whether the operation is a write (writes complete silently but
    /// still consume bandwidth).
    pub is_write: bool,
}

/// One memory controller.
#[derive(Debug)]
pub struct MemCtrl<T> {
    /// Completion queue: (ready cycle, op).
    inflight: VecDeque<(Cycle, MemOp<T>)>,
    /// Cycle at which the controller frees up for the next service slot.
    busy_until: Cycle,
    /// Total cycles ops spent waiting before service began.
    pub queue_cycles: u64,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
}

impl<T> Default for MemCtrl<T> {
    fn default() -> Self {
        MemCtrl {
            inflight: VecDeque::new(),
            busy_until: 0,
            queue_cycles: 0,
            reads: 0,
            writes: 0,
        }
    }
}

impl<T> MemCtrl<T> {
    /// Enqueue an operation arriving at `now`; returns its completion
    /// cycle.
    pub fn submit(&mut self, op: MemOp<T>, now: Cycle) -> Cycle {
        let start = self.busy_until.max(now);
        self.queue_cycles += start - now;
        self.busy_until = start + SERVICE_CYCLES;
        let done = start + SERVICE_CYCLES + MEM_LATENCY;
        if op.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.inflight.push_back((done, op)); // audit: allow(alloc) MSHR-bounded in-flight queue; capacity amortized
        done
    }

    /// Pop every operation completed by `now`.
    pub fn drain_completed(&mut self, now: Cycle, out: &mut Vec<MemOp<T>>) {
        while let Some(&(done, _)) = self.inflight.front() {
            if done > now {
                break;
            }
            // audit: allow(alloc) caller-reused drain buffer; capacity amortized
            out.push(self.inflight.pop_front().expect("front exists").1); // audit: allow(expect) pop follows the front() readiness check
        }
    }

    /// Earliest pending completion cycle, if any (for idle skip-ahead).
    pub fn next_event(&self) -> Option<Cycle> {
        self.inflight.front().map(|&(c, _)| c)
    }

    /// Any operations still in flight?
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_latency() {
        let mut m: MemCtrl<u32> = MemCtrl::default();
        let done = m.submit(
            MemOp {
                tag: 1,
                is_write: false,
            },
            10,
        );
        assert_eq!(done, 10 + SERVICE_CYCLES + MEM_LATENCY);
        let mut out = Vec::new();
        m.drain_completed(done - 1, &mut out);
        assert!(out.is_empty());
        m.drain_completed(done, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 1);
        assert!(m.is_idle());
    }

    #[test]
    fn bandwidth_serializes_back_to_back() {
        let mut m: MemCtrl<u32> = MemCtrl::default();
        let d1 = m.submit(
            MemOp {
                tag: 1,
                is_write: false,
            },
            0,
        );
        let d2 = m.submit(
            MemOp {
                tag: 2,
                is_write: false,
            },
            0,
        );
        assert_eq!(d2 - d1, SERVICE_CYCLES, "second op waits one service slot");
        assert_eq!(m.queue_cycles, SERVICE_CYCLES);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut m: MemCtrl<u32> = MemCtrl::default();
        m.submit(
            MemOp {
                tag: 1,
                is_write: true,
            },
            0,
        );
        // long after the first completes
        let d = m.submit(
            MemOp {
                tag: 2,
                is_write: false,
            },
            1000,
        );
        assert_eq!(d, 1000 + SERVICE_CYCLES + MEM_LATENCY);
        assert_eq!(m.queue_cycles, 0);
        assert_eq!(m.reads, 1);
        assert_eq!(m.writes, 1);
    }

    #[test]
    fn next_event_tracks_earliest() {
        let mut m: MemCtrl<u32> = MemCtrl::default();
        assert_eq!(m.next_event(), None);
        let d1 = m.submit(
            MemOp {
                tag: 1,
                is_write: false,
            },
            0,
        );
        m.submit(
            MemOp {
                tag: 2,
                is_write: false,
            },
            0,
        );
        assert_eq!(m.next_event(), Some(d1));
    }

    #[test]
    fn sustained_throughput_matches_bandwidth() {
        // 100 back-to-back line reads: completion of the last should be
        // ≈ 100 × SERVICE + MEM_LATENCY.
        let mut m: MemCtrl<u32> = MemCtrl::default();
        let mut last = 0;
        for i in 0..100 {
            last = m.submit(
                MemOp {
                    tag: i,
                    is_write: false,
                },
                0,
            );
        }
        assert_eq!(last, 100 * SERVICE_CYCLES + MEM_LATENCY);
    }
}
