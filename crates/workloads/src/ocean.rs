//! `ocean` — the SPLASH-2 ocean-current simulation (contiguous and
//! non-contiguous partition variants), as an address-accurate red/black
//! Gauss-Seidel stencil.
//!
//! Each core owns a square block of the shared grid. Per iteration it
//! sweeps its block: a 5-point stencil loads the four neighbours and
//! stores the centre. Interior lines are effectively private; block-edge
//! lines are read by the adjacent core, giving pairwise producer-consumer
//! sharing whose invalidations are overwhelmingly *unicasts* —
//! ocean's Table V signature (1 812 / 13 731 unicasts per broadcast).
//! A per-iteration convergence reduction touches one widely-shared
//! residual line, supplying the rare broadcasts.
//!
//! * **contiguous** (`ocean_contig`): the grid is laid out block-major,
//!   so a core's interior rows are dense in its own cache lines.
//! * **non-contiguous** (`ocean_non_contig`): the grid is laid out
//!   row-major across the whole problem, so adjacent blocks interleave in
//!   memory and every block row straddles lines shared with horizontal
//!   neighbours (false sharing) — more misses, higher network load
//!   (Table V: 29 % vs 20 % utilization).

use crate::common::{BuiltWorkload, Layout, Op, Scale};

/// Shared-segment offsets.
const GRID: u64 = 0x100_0000;
const RESIDUAL: u64 = 0;

/// Grid layout flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OceanLayout {
    /// Block-major ("4-D array" in SPLASH-2 terms).
    Contiguous,
    /// Row-major across the full grid ("2-D array").
    NonContiguous,
}

/// Build an ocean workload.
pub fn build(cores: usize, scale: Scale, layout: OceanLayout) -> BuiltWorkload {
    // Square grid of cores; block side in grid points.
    let side = (cores as f64).sqrt() as usize;
    assert_eq!(side * side, cores, "ocean needs a square core count");
    let block = 4 * scale.factor(); // block side in points
    let n = side * block; // grid side
    let iterations = 3;

    // Element address for grid point (x, y). The non-contiguous variant
    // uses the classic `n + 2` row stride (the real program's grids carry
    // border columns), which misaligns block rows against cache lines and
    // creates the false sharing that defines this variant.
    let at = |x: usize, y: usize| -> u64 {
        match layout {
            OceanLayout::NonContiguous => (y * (n + 2) + x) as u64,
            OceanLayout::Contiguous => {
                let (bx, by) = (x / block, y / block);
                let owner = by * side + bx;
                let (lx, ly) = (x % block, y % block);
                (owner * block * block + ly * block + lx) as u64
            }
        }
    };

    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cores];
    for iter in 0..iterations {
        for (c, script) in scripts.iter_mut().enumerate() {
            let (bx, by) = (c % side, c / side);
            let (x0, y0) = (bx * block, by * block);
            // Red/black: sweep alternating points per iteration.
            for ly in 0..block {
                for lx in 0..block {
                    if (lx + ly + iter) % 2 != 0 {
                        continue;
                    }
                    let (x, y) = (x0 + lx, y0 + ly);
                    // 5-point stencil; neighbours clamped at the edges.
                    let xe = (x + 1).min(n - 1);
                    let xw = x.saturating_sub(1);
                    let ys = (y + 1).min(n - 1);
                    let yn = y.saturating_sub(1);
                    script.push(Op::Load(Layout::shared(GRID, at(xe, y))));
                    script.push(Op::Load(Layout::shared(GRID, at(xw, y))));
                    script.push(Op::Load(Layout::shared(GRID, at(x, ys))));
                    script.push(Op::Load(Layout::shared(GRID, at(x, yn))));
                    script.push(Op::Compute(6));
                    script.push(Op::Store(Layout::shared(GRID, at(x, y))));
                }
            }
            // Convergence: each core publishes its partial residual,
            // then samples the whole partial array to decide convergence
            // (as the real program's reduction + global check does).
            // Every residual line ends up read by many cores, so the
            // next iteration's publishes are broadcast invalidations —
            // ocean's rare-but-present broadcast traffic (Table V).
            script.push(Op::Store(Layout::shared(RESIDUAL, c as u64)));
            script.push(Op::Barrier);
            for i in 0..16u64 {
                let slot = (c as u64 * 67 + i * 61) % cores as u64;
                script.push(Op::Load(Layout::shared(RESIDUAL, slot)));
                script.push(Op::Compute(2));
            }
            script.push(Op::Barrier);
        }
    }

    let w = BuiltWorkload {
        name: match layout {
            OceanLayout::Contiguous => "ocean_contig",
            OceanLayout::NonContiguous => "ocean_non_contig",
        },
        scripts,
    };
    w.validate();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn builds_both_layouts() {
        for l in [OceanLayout::Contiguous, OceanLayout::NonContiguous] {
            let w = build(16, Scale::Test, l);
            assert_eq!(w.scripts.len(), 16);
            assert!(w.total_mem_ops() > 100);
        }
    }

    /// The defining difference: non-contiguous layouts spread each core's
    /// writes across many more lines that other cores also touch.
    #[test]
    fn non_contig_has_more_cross_core_line_sharing() {
        let shared_lines = |l: OceanLayout| {
            let w = build(16, Scale::Test, l);
            // line → set of cores touching it
            let mut touch: std::collections::HashMap<u64, HashSet<usize>> = Default::default();
            for (c, s) in w.scripts.iter().enumerate() {
                for op in s {
                    if let Op::Load(a) | Op::Store(a) = op {
                        touch.entry(a.0 / 64).or_default().insert(c);
                    }
                }
            }
            touch.values().filter(|s| s.len() > 1).count()
        };
        let contig = shared_lines(OceanLayout::Contiguous);
        let noncontig = shared_lines(OceanLayout::NonContiguous);
        assert!(
            noncontig > contig,
            "non-contig {noncontig} should share more lines than contig {contig}"
        );
    }

    #[test]
    fn boundary_reads_touch_neighbour_blocks() {
        let w = build(16, Scale::Test, OceanLayout::Contiguous);
        // core 5 (middle of the 4×4 core grid) must read addresses owned
        // by other cores' blocks.
        let block_elems = (4 * 4) as u64; // block²
        let core5_foreign = w.scripts[5].iter().any(|op| {
            if let Op::Load(a) = op {
                let e = (a.0 - Layout::shared(GRID, 0).0) / 8;
                let owner = e / block_elems;
                owner != 5
            } else {
                false
            }
        });
        assert!(core5_foreign);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = build(12, Scale::Test, OceanLayout::Contiguous);
    }
}
