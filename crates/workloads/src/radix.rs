//! `radix` — the SPLASH-2 parallel radix sort, reproduced as an
//! address-accurate kernel.
//!
//! Three phases per digit pass, separated by barriers, mirroring the real
//! program's memory behaviour:
//!
//! 1. **Local histogram** — each core streams its private key block and
//!    bumps a private histogram (sequential private traffic; cheap).
//! 2. **Global histogram / prefix** — each core owns a slice of the radix
//!    buckets and reads *every other core's* local histogram counts for
//!    its slice, then writes the shared global offsets. The offset lines
//!    are subsequently read by **all** cores, so the next pass's writes
//!    find widely-shared lines — the source of radix's broadcast
//!    invalidations in Fig. 5.
//! 3. **Permutation** — each core writes its keys to their destination
//!    positions scattered across the whole shared output array: bursty,
//!    long-distance unicast traffic that makes radix one of the paper's
//!    highest-load benchmarks (Fig. 6, Table V: 25 % link utilization).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{BuiltWorkload, Layout, Op, Scale};

/// Radix buckets per pass (the real benchmark's default radix is 1024;
/// scaled down with problem size).
const BUCKETS: u64 = 64;

/// Shared-segment offsets for this kernel's arrays.
const GLOBAL_HIST: u64 = 0;
const OUTPUT: u64 = 0x10_0000;

/// Build the radix workload.
pub fn build(cores: usize, scale: Scale, seed: u64) -> BuiltWorkload {
    let keys_per_core = (24 * scale.factor()) as u64;
    let passes = 2u32;
    let mut rng = SmallRng::seed_from_u64(seed);

    // Pre-generate every core's keys for every pass (the permutation is
    // data-dependent in the real program; we draw destinations from the
    // same seeded distribution).
    let digits: Vec<Vec<u64>> = (0..cores)
        .map(|_| {
            (0..keys_per_core * u64::from(passes))
                .map(|_| rng.gen_range(0..BUCKETS))
                .collect()
        })
        .collect();

    // Histogram slot layout: padded (2 elements per bucket) for buckets
    // 0..56, dense for the last 8.
    let hist_slot = |d: u64| -> u64 {
        if d < 56 {
            0x1000 + d * 2
        } else {
            0x1000 + 112 + (d - 56)
        }
    };

    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cores];
    let buckets_per_core = (BUCKETS as usize).div_ceil(cores).max(1);

    for pass in 0..passes {
        for (c, script) in scripts.iter_mut().enumerate() {
            let my_digits =
                &digits[c][(u64::from(pass) * keys_per_core) as usize..][..keys_per_core as usize];

            // Phase 1: local histogram over private keys. Most buckets
            // are padded to 4 per cache line (within ACKwise's k=4
            // pointers, like the real program's padded rank arrays), but
            // the final 8 buckets share one dense line — the imperfectly
            // padded tail whose cross-pass rewrites are radix's broadcast
            // invalidations (Table V: ~1 per thousand unicasts).
            for (i, &d) in my_digits.iter().enumerate() {
                script.push(Op::Load(Layout::private(c, i as u64)));
                script.push(Op::Compute(4));
                script.push(Op::Store(Layout::private(c, hist_slot(d))));
            }
            script.push(Op::Barrier);

            // Phase 2: global prefix for this core's bucket slice — read
            // every core's private count, accumulate, publish.
            let lo = c * buckets_per_core;
            let hi = ((c + 1) * buckets_per_core).min(BUCKETS as usize);
            for b in lo..hi {
                for other in 0..cores {
                    script.push(Op::Load(Layout::private(other, hist_slot(b as u64))));
                    script.push(Op::Compute(1));
                }
                script.push(Op::Store(Layout::shared(GLOBAL_HIST, b as u64)));
            }
            script.push(Op::Barrier);

            // Phase 3: permute keys to scattered shared destinations.
            for (i, &d) in my_digits.iter().enumerate() {
                script.push(Op::Load(Layout::private(c, i as u64)));
                // offset lookup in the shared table (read by everyone)
                script.push(Op::Load(Layout::shared(GLOBAL_HIST, d)));
                script.push(Op::Load(Layout::private(c, 0x2000 + d)));
                script.push(Op::Compute(2));
                // scattered destination: bucket base + per-core stripe
                let dest =
                    d * (cores as u64 * keys_per_core) + (c as u64) * keys_per_core + i as u64;
                script.push(Op::Store(Layout::shared(OUTPUT, dest)));
            }
            script.push(Op::Barrier);
        }
    }

    let w = BuiltWorkload {
        name: "radix",
        scripts,
    };
    w.validate();
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let w = build(16, Scale::Test, 1);
        assert_eq!(w.scripts.len(), 16);
        assert!(w.total_mem_ops() > 1000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(8, Scale::Test, 7);
        let b = build(8, Scale::Test, 7);
        assert_eq!(a.scripts, b.scripts);
        let c = build(8, Scale::Test, 8);
        assert_ne!(a.scripts, c.scripts);
    }

    #[test]
    fn phase2_reads_cross_core_histograms() {
        // every core's script must load other cores' private histogram
        // region at least once (the sharing that drives invalidations).
        let w = build(4, Scale::Test, 3);
        let hist0 = Layout::private(0, 0x1000).0;
        let touched_by_others = w.scripts[1..].iter().flatten().any(|o| match o {
            Op::Load(a) => a.0 >= hist0 && a.0 < hist0 + BUCKETS * 8,
            _ => false,
        });
        assert!(touched_by_others);
    }

    #[test]
    fn permutation_scatters_widely() {
        let w = build(8, Scale::Test, 3);
        let out_base = Layout::shared(OUTPUT, 0).0;
        let mut lines = std::collections::HashSet::new();
        for op in w.scripts.iter().flatten() {
            if let Op::Store(a) = op {
                if a.0 >= out_base {
                    lines.insert(a.0 / 64);
                }
            }
        }
        assert!(lines.len() > 50, "scatter hit only {} lines", lines.len());
    }
}
