//! Workload building blocks: the per-core operation vocabulary, the
//! built-workload container, and the shared address-space layout helpers
//! every kernel uses.

use atac_coherence::Addr;

/// One abstract operation in a core's instruction stream.
///
/// The simulator executes `Compute(n)` as `n` single-cycle instructions
/// (with L1-I fetch accounting), `Load`/`Store` through the simulated
/// cache hierarchy and coherence protocol (blocking on misses, which is
/// how network back-pressure reaches the application), and `Barrier` as
/// an all-core rendezvous — the synchronization idiom of every SPLASH-2
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` non-memory instructions.
    Compute(u32),
    /// A data load from a byte address.
    Load(Addr),
    /// A data store to a byte address.
    Store(Addr),
    /// Wait until every core reaches its next barrier.
    Barrier,
}

/// A fully generated workload: one op script per core.
///
/// Scripts are generated deterministically at build time (data-dependent
/// address sequences, e.g. radix permutations, are computed from a seeded
/// PRNG), so a run is reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Per-core operation scripts, including `Barrier` markers. All
    /// scripts must contain the *same number* of barriers.
    pub scripts: Vec<Vec<Op>>,
}

impl BuiltWorkload {
    /// Total memory operations across all cores.
    pub fn total_mem_ops(&self) -> u64 {
        self.scripts
            .iter()
            .flatten()
            .filter(|o| matches!(o, Op::Load(_) | Op::Store(_)))
            .count() as u64
    }

    /// Total instruction count (computes + 1 per memory op).
    pub fn total_instructions(&self) -> u64 {
        self.scripts
            .iter()
            .flatten()
            .map(|o| match o {
                Op::Compute(n) => u64::from(*n),
                Op::Load(_) | Op::Store(_) => 1,
                Op::Barrier => 0,
            })
            .sum()
    }

    /// Check the structural well-formedness all kernels must satisfy:
    /// equal barrier counts on every core (otherwise the run deadlocks).
    pub fn validate(&self) {
        let counts: Vec<usize> = self
            .scripts
            .iter()
            .map(|s| s.iter().filter(|o| matches!(o, Op::Barrier)).count())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{}: unequal barrier counts across cores: {:?}",
            self.name,
            &counts[..counts.len().min(8)]
        );
    }
}

/// Problem-size scaling knob. `Scale::Test` keeps unit tests fast;
/// `Scale::Paper` is what the figure benches run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit tests.
    Test,
    /// Default evaluation size (completes in seconds of wall-clock for a
    /// 1024-core run).
    Paper,
}

impl Scale {
    /// A multiplier applied to per-core work amounts.
    pub fn factor(self) -> usize {
        match self {
            Scale::Test => 1,
            Scale::Paper => 4,
        }
    }
}

/// Shared address-space layout. Every kernel draws its arrays from these
/// regions so addresses never collide across data structures.
#[derive(Debug)]
pub struct Layout;

impl Layout {
    /// Base of the shared data segment.
    pub const SHARED_BASE: u64 = 0x1000_0000;
    /// Base of per-core private segments.
    pub const PRIVATE_BASE: u64 = 0x8000_0000;
    /// Bytes of private address space per core.
    pub const PRIVATE_STRIDE: u64 = 0x10_0000;

    /// Element `i` (8-byte elements) of a shared array starting at
    /// `offset` bytes into the shared segment.
    #[inline]
    pub fn shared(offset: u64, i: u64) -> Addr {
        Addr(Self::SHARED_BASE + offset + i * 8)
    }

    /// Element `i` of core `c`'s private segment.
    #[inline]
    pub fn private(c: usize, i: u64) -> Addr {
        Addr(Self::PRIVATE_BASE + c as u64 * Self::PRIVATE_STRIDE + i * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_disjoint() {
        let s = Layout::shared(0, 1_000_000);
        let p = Layout::private(0, 0);
        assert!(s.0 < p.0);
        // neighbouring cores' private regions don't overlap
        let end0 = Layout::private(0, Layout::PRIVATE_STRIDE / 8 - 1);
        let start1 = Layout::private(1, 0);
        assert!(end0.0 < start1.0);
    }

    #[test]
    fn validate_accepts_uniform_barriers() {
        let w = BuiltWorkload {
            name: "t",
            scripts: vec![
                vec![Op::Compute(1), Op::Barrier],
                vec![Op::Load(Addr(0)), Op::Barrier],
            ],
        };
        w.validate();
    }

    #[test]
    #[should_panic(expected = "unequal barrier")]
    fn validate_rejects_mismatched_barriers() {
        let w = BuiltWorkload {
            name: "t",
            scripts: vec![vec![Op::Barrier], vec![Op::Compute(1)]],
        };
        w.validate();
    }

    #[test]
    fn op_counting() {
        let w = BuiltWorkload {
            name: "t",
            scripts: vec![vec![
                Op::Compute(10),
                Op::Load(Addr(0)),
                Op::Store(Addr(8)),
                Op::Barrier,
            ]],
        };
        assert_eq!(w.total_mem_ops(), 2);
        assert_eq!(w.total_instructions(), 12);
    }
}
