//! `barnes` and `fmm` — SPLASH-2 hierarchical N-body kernels, as
//! address-accurate tree/particle traffic.
//!
//! Both kernels iterate: (1) a **tree build** in which every core inserts
//! its bodies, writing the top levels of a shared octree (the root and
//! inner nodes are written by many cores in turn — after the read phase
//! their sharer sets span virtually the whole chip, so these writes are
//! the paper's canonical broadcast-invalidation generators: barnes/fmm
//! have the *highest* broadcast rates, Table V: 92 / 95 unicasts per
//! broadcast); (2) a **force computation** in which every core walks the
//! tree from the root, read-sharing the upper levels chip-wide, with
//! heavy per-node compute (low offered load: 8–9 % utilization); and
//! (3) a private **body update**.
//!
//! `fmm` (the fast multipole method) differs by doing more compute per
//! interaction and touching cell interaction-lists rather than walking to
//! leaves; here that is expressed as a higher compute weight and a
//! shallower shared traversal with wider fan-out.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{BuiltWorkload, Layout, Op, Scale};

const TREE: u64 = 0x300_0000;

/// Which N-body kernel to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NBody {
    /// Barnes-Hut octree walk.
    Barnes,
    /// Fast multipole method.
    Fmm,
}

/// Build an N-body workload.
pub fn build(cores: usize, scale: Scale, kind: NBody, seed: u64) -> BuiltWorkload {
    let bodies_per_core = 3 * scale.factor();
    let iterations = 2;
    let levels = 5usize; // shared tree depth
    let (walk_nodes, compute_per_node) = match kind {
        NBody::Barnes => (10, 8),
        NBody::Fmm => (6, 24),
    };
    let mut rng = SmallRng::seed_from_u64(seed);

    // Node index of the n-th node at a level: levels are contiguous,
    // level l has 8^l nodes.
    let level_base: Vec<u64> = (0..levels)
        .scan(0u64, |acc, l| {
            let base = *acc;
            *acc += 8u64.pow(l as u32);
            Some(base)
        })
        .collect();

    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cores];
    for _iter in 0..iterations {
        // Phase 1: tree build — every core inserts its bodies along a
        // root-to-leaf path. As in the real program, bodies are spatially
        // clustered: deep levels land in the inserting core's own subtree
        // (plus some spill into neighbours'), while the top levels are
        // read by everyone but *written* only on the occasional cell
        // subdivision — rare, but with chip-wide sharer sets, so each one
        // is an ACKwise broadcast invalidation.
        for (c, script) in scripts.iter_mut().enumerate() {
            for _b in 0..bodies_per_core {
                for (l, &base) in level_base.iter().enumerate() {
                    let width = 8u64.pow(l as u32);
                    // spatial subtree: scale the core id into this level.
                    let my_region = (c as u64 * width) / cores as u64;
                    let spill = rng.gen_range(0..3);
                    let node = base + (my_region + spill).min(width - 1);
                    script.push(Op::Load(Layout::shared(TREE, node * 8)));
                    script.push(Op::Compute(3));
                    if l >= 2 {
                        script.push(Op::Store(Layout::shared(TREE, node * 8)));
                    } else if rng.gen_bool(0.12) {
                        // top-level cell subdivision
                        script.push(Op::Store(Layout::shared(TREE, node * 8)));
                    }
                }
                // leaf body data is private
                script.push(Op::Store(Layout::private(c, _b as u64)));
            }
            script.push(Op::Barrier);
        }

        // Phase 2: force walk — read-only traversal from the root.
        for (c, script) in scripts.iter_mut().enumerate() {
            for _b in 0..bodies_per_core {
                // the root + upper levels: read by every core
                script.push(Op::Load(Layout::shared(TREE, 0)));
                for _n in 0..walk_nodes {
                    let l = rng.gen_range(1..levels);
                    let width = 8u64.pow(l as u32);
                    let node = level_base[l] + rng.gen_range(0..width);
                    script.push(Op::Load(Layout::shared(TREE, node * 8)));
                    script.push(Op::Compute(compute_per_node));
                }
                script.push(Op::Load(Layout::private(c, _b as u64)));
                script.push(Op::Store(Layout::private(c, 0x100 + _b as u64)));
                script.push(Op::Compute(compute_per_node * 2));
            }
            script.push(Op::Barrier);
        }

        // Phase 3: private body updates.
        for (c, script) in scripts.iter_mut().enumerate() {
            for b in 0..bodies_per_core {
                script.push(Op::Load(Layout::private(c, b as u64)));
                script.push(Op::Compute(6));
                script.push(Op::Store(Layout::private(c, b as u64)));
            }
            script.push(Op::Barrier);
        }
    }

    let w = BuiltWorkload {
        name: match kind {
            NBody::Barnes => "barnes",
            NBody::Fmm => "fmm",
        },
        scripts,
    };
    w.validate();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn builds_both_kernels() {
        for k in [NBody::Barnes, NBody::Fmm] {
            let w = build(16, Scale::Test, k, 5);
            assert!(w.total_mem_ops() > 100);
        }
    }

    #[test]
    fn root_is_read_by_every_core_and_written_by_many() {
        let w = build(16, Scale::Paper, NBody::Barnes, 5);
        let root = Layout::shared(TREE, 0).0 / 64;
        let mut readers = HashSet::new();
        let mut writers = HashSet::new();
        for (c, s) in w.scripts.iter().enumerate() {
            for op in s {
                match op {
                    Op::Load(a) if a.0 / 64 == root => {
                        readers.insert(c);
                    }
                    Op::Store(a) if a.0 / 64 == root => {
                        writers.insert(c);
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(readers.len(), 16, "every core reads the root line");
        assert!(writers.len() > 4, "root line written by many cores");
    }

    #[test]
    fn fmm_computes_more_per_memory_op() {
        let b = build(16, Scale::Test, NBody::Barnes, 5);
        let f = build(16, Scale::Test, NBody::Fmm, 5);
        let ratio = |w: &BuiltWorkload| w.total_instructions() as f64 / w.total_mem_ops() as f64;
        assert!(ratio(&f) > ratio(&b));
    }

    #[test]
    fn deterministic() {
        let a = build(8, Scale::Test, NBody::Fmm, 9);
        let b = build(8, Scale::Test, NBody::Fmm, 9);
        assert_eq!(a.scripts, b.scripts);
    }
}
