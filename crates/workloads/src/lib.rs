//! # atac-workloads — application workloads for the full-system evaluation
//!
//! The paper evaluates seven SPLASH-2 benchmarks plus a DARPA-UHPC
//! dynamic-graph application. The original binaries ran on the authors'
//! Graphite infrastructure; this reproduction substitutes
//! **address-accurate synthetic kernels**: per-core operation scripts
//! that issue the same *kinds* of memory-reference streams the real
//! programs issue (blocked LU traversals, ocean stencils, radix
//! histogram/permute phases, N-body tree walks over read-mostly shared
//! nodes, SCC frontier expansion over hot worklist lines), through the
//! real simulated cache hierarchy and coherence protocol, with
//! execution-driven back-pressure. See DESIGN.md §5 for the substitution
//! rationale.
//!
//! The suite (names as in the paper's figures):
//!
//! | name | character (Fig. 5/6, Table V) |
//! |---|---|
//! | `dynamic_graph` | broadcast-heavy (505 uni/bcast), low load |
//! | `radix` | high load, scattered permute writes |
//! | `barnes` | broadcast-heavy tree building, low load |
//! | `fmm` | like barnes, more compute per node |
//! | `ocean_contig` | neighbour sharing, high load |
//! | `lu_contig` | compute-bound, fewest broadcasts |
//! | `ocean_non_contig` | false sharing, highest load |
//! | `lu_non_contig` | strided blocks, moderate load |

pub mod barnes;
pub mod common;
pub mod graph;
pub mod lu;
pub mod ocean;
pub mod radix;

pub use common::{BuiltWorkload, Layout, Op, Scale};

/// Identifier for one of the eight evaluated applications, in the
/// paper's figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// UHPC dynamic graph (strongly connected components).
    DynamicGraph,
    /// SPLASH-2 radix sort.
    Radix,
    /// SPLASH-2 Barnes-Hut.
    Barnes,
    /// SPLASH-2 fast multipole method.
    Fmm,
    /// SPLASH-2 ocean, contiguous partitions.
    OceanContig,
    /// SPLASH-2 LU, contiguous blocks.
    LuContig,
    /// SPLASH-2 ocean, non-contiguous partitions.
    OceanNonContig,
    /// SPLASH-2 LU, non-contiguous blocks.
    LuNonContig,
}

impl Benchmark {
    /// All eight applications in the paper's figure order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::DynamicGraph,
        Benchmark::Radix,
        Benchmark::Barnes,
        Benchmark::Fmm,
        Benchmark::OceanContig,
        Benchmark::LuContig,
        Benchmark::OceanNonContig,
        Benchmark::LuNonContig,
    ];

    /// Name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::DynamicGraph => "dynamic_graph",
            Benchmark::Radix => "radix",
            Benchmark::Barnes => "barnes",
            Benchmark::Fmm => "fmm",
            Benchmark::OceanContig => "ocean_contig",
            Benchmark::LuContig => "lu_contig",
            Benchmark::OceanNonContig => "ocean_non_contig",
            Benchmark::LuNonContig => "lu_non_contig",
        }
    }

    /// Generate the workload for `cores` cores at the given scale.
    /// Deterministic: the same arguments produce identical scripts.
    pub fn build(self, cores: usize, scale: Scale) -> BuiltWorkload {
        let seed = 0xA7AC_0000 | self as u64;
        match self {
            Benchmark::DynamicGraph => graph::build(cores, scale, seed),
            Benchmark::Radix => radix::build(cores, scale, seed),
            Benchmark::Barnes => barnes::build(cores, scale, barnes::NBody::Barnes, seed),
            Benchmark::Fmm => barnes::build(cores, scale, barnes::NBody::Fmm, seed),
            Benchmark::OceanContig => ocean::build(cores, scale, ocean::OceanLayout::Contiguous),
            Benchmark::LuContig => lu::build(cores, scale, lu::LuLayout::Contiguous),
            Benchmark::OceanNonContig => {
                ocean::build(cores, scale, ocean::OceanLayout::NonContiguous)
            }
            Benchmark::LuNonContig => lu::build(cores, scale, lu::LuLayout::NonContiguous),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_build_at_test_scale() {
        for b in Benchmark::ALL {
            let w = b.build(16, Scale::Test);
            assert_eq!(w.name, b.name());
            assert_eq!(w.scripts.len(), 16);
            assert!(w.total_mem_ops() > 0, "{}", b.name());
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            [
                "dynamic_graph",
                "radix",
                "barnes",
                "fmm",
                "ocean_contig",
                "lu_contig",
                "ocean_non_contig",
                "lu_non_contig"
            ]
        );
    }

    #[test]
    fn builds_are_deterministic() {
        for b in Benchmark::ALL {
            let a = b.build(16, Scale::Test);
            let c = b.build(16, Scale::Test);
            assert_eq!(a.scripts, c.scripts, "{}", b.name());
        }
    }

    #[test]
    fn paper_scale_is_bigger() {
        for b in [Benchmark::Radix, Benchmark::Barnes] {
            let t = b.build(16, Scale::Test).total_mem_ops();
            let p = b.build(16, Scale::Paper).total_mem_ops();
            assert!(p > 2 * t, "{}: {t} vs {p}", b.name());
        }
    }

    /// The relative *compute density* ordering that yields the paper's
    /// Fig. 6 offered-load ordering: lu most compute-bound, ocean and
    /// radix most memory-bound.
    #[test]
    fn compute_density_ordering() {
        let density = |b: Benchmark| {
            let w = b.build(16, Scale::Test);
            w.total_instructions() as f64 / w.total_mem_ops() as f64
        };
        assert!(density(Benchmark::LuContig) > density(Benchmark::OceanContig));
        assert!(density(Benchmark::Fmm) > density(Benchmark::Radix));
    }
}
