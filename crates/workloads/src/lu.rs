//! `lu` — SPLASH-2 blocked dense LU factorization (contiguous and
//! non-contiguous block variants).
//!
//! The matrix is divided into B×B blocks assigned to cores in a 2-D
//! scatter. Iteration `k`:
//!
//! 1. the owner of diagonal block `(k,k)` factorizes it (compute-heavy,
//!    private);
//! 2. owners of perimeter blocks `(k,j)`/`(i,k)` read the diagonal block
//!    and update (the diagonal block becomes read-shared by one row/col
//!    of owners — a modest sharer set, so invalidations are almost always
//!    pointer unicasts: lu has the paper's *lowest* broadcast rate,
//!    Table V: 30 705 unicasts per broadcast);
//! 3. owners of interior blocks `(i,j)` read their row/column perimeter
//!    blocks and update their own block (long-distance unicast reads).
//!
//! High compute-to-communication ratio keeps offered load low (Table V:
//! 6 % / 19 % utilization). The non-contiguous variant lays blocks out
//! row-major across the matrix so block rows straddle cache lines shared
//! between neighbouring owners (false sharing → more traffic).

use crate::common::{BuiltWorkload, Layout, Op, Scale};

const MATRIX: u64 = 0x200_0000;
/// Global pivot/iteration descriptor: written by the diagonal owner each
/// iteration and read by every core — the chip-wide-shared line whose
/// write is lu's rare broadcast invalidation (Table V: one broadcast per
/// tens of thousands of unicasts).
const PIVOT: u64 = 0x1F_0000;

/// Block layout flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuLayout {
    /// Each block stored densely (SPLASH-2 "contiguous blocks").
    Contiguous,
    /// Matrix stored row-major; a block's rows are strided.
    NonContiguous,
}

/// Build an LU workload.
pub fn build(cores: usize, scale: Scale, layout: LuLayout) -> BuiltWorkload {
    let side = (cores as f64).sqrt() as usize;
    assert_eq!(side * side, cores, "lu needs a square core count");
    // Number of blocks per matrix dimension: a few rounds per owner.
    let nb = side;
    let bel = (4 * scale.factor()) as u64; // elements touched per block op
    let n_el = nb as u64 * bel; // matrix side in elements (for striding)

    // Owner of block (i, j): 2-D scatter.
    let owner = |i: usize, j: usize| (i % side) * side + (j % side);
    // Address of element e of block (i, j).
    let at = |i: usize, j: usize, e: u64| -> u64 {
        match layout {
            LuLayout::Contiguous => ((i * nb + j) as u64) * bel + e,
            LuLayout::NonContiguous => {
                // rows of the block strided across the matrix row; the
                // odd half-line row stride (`n_el + 4`) makes block rows
                // straddle cache lines shared with the horizontally
                // adjacent owner — the variant's false sharing.
                let row = e / 4;
                let col = e % 4;
                (i as u64 * 4 + row) * (n_el + 4) + j as u64 * 4 + col
            }
        }
    };

    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cores];
    for k in 0..nb {
        // 1: diagonal factorization by its owner, which then publishes
        // the pivot descriptor every core reads below.
        let dk = owner(k, k);
        for e in 0..bel {
            scripts[dk].push(Op::Load(Layout::shared(MATRIX, at(k, k, e))));
            scripts[dk].push(Op::Compute(12));
            scripts[dk].push(Op::Store(Layout::shared(MATRIX, at(k, k, e))));
        }
        // The pivot descriptor is republished only at block-panel
        // boundaries (every 4th iteration), as the real program updates
        // its global pivot structures per panel: that spacing is what
        // makes lu the paper's least-broadcast-prone benchmark.
        if k % 4 == 0 {
            scripts[dk].push(Op::Store(Layout::shared(PIVOT, 0)));
        }
        for s in &mut scripts {
            s.push(Op::Barrier);
        }

        // 2: perimeter updates read the pivot descriptor + the diagonal
        // block. The descriptor accumulates one row + one column of
        // owners as sharers (> k), so its panel-boundary republish is a
        // broadcast invalidation — lu's rare-broadcast signature.
        for j in (k + 1)..nb {
            for (bi, bj) in [(k, j), (j, k)] {
                let o = owner(bi, bj);
                if k % 4 == 0 {
                    scripts[o].push(Op::Load(Layout::shared(PIVOT, 0)));
                }
                for e in 0..bel {
                    scripts[o].push(Op::Load(Layout::shared(MATRIX, at(k, k, e))));
                    scripts[o].push(Op::Compute(8));
                    scripts[o].push(Op::Store(Layout::shared(MATRIX, at(bi, bj, e))));
                }
            }
        }
        for s in &mut scripts {
            s.push(Op::Barrier);
        }

        // 3: interior updates read row + column perimeter blocks.
        for i in (k + 1)..nb {
            for j in (k + 1)..nb {
                let o = owner(i, j);
                for e in 0..bel {
                    scripts[o].push(Op::Load(Layout::shared(MATRIX, at(i, k, e))));
                    scripts[o].push(Op::Load(Layout::shared(MATRIX, at(k, j, e))));
                    scripts[o].push(Op::Load(Layout::private(o, e % 16)));
                    scripts[o].push(Op::Compute(10));
                    scripts[o].push(Op::Store(Layout::shared(MATRIX, at(i, j, e))));
                }
            }
        }
        for s in &mut scripts {
            s.push(Op::Barrier);
        }
    }

    let w = BuiltWorkload {
        name: match layout {
            LuLayout::Contiguous => "lu_contig",
            LuLayout::NonContiguous => "lu_non_contig",
        },
        scripts,
    };
    w.validate();
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_layouts() {
        for l in [LuLayout::Contiguous, LuLayout::NonContiguous] {
            let w = build(16, Scale::Test, l);
            assert!(w.total_mem_ops() > 100);
            assert!(w.total_instructions() > w.total_mem_ops(), "compute heavy");
        }
    }

    #[test]
    fn diagonal_block_read_by_perimeter_owners() {
        let w = build(16, Scale::Test, LuLayout::Contiguous);
        // the k=0 diagonal block addresses
        let d0 = Layout::shared(MATRIX, 0).0;
        let d0_end = d0 + 4 * 8; // bel(Test)=4 elements
        let readers: Vec<usize> = w
            .scripts
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.iter()
                    .any(|op| matches!(op, Op::Load(a) if a.0 >= d0 && a.0 < d0_end))
            })
            .map(|(c, _)| c)
            .collect();
        assert!(readers.len() > 2, "diag block shared by {readers:?}");
    }

    #[test]
    fn compute_dominates_lu() {
        // Fig. 6: lu has the lowest offered load of the suite; our proxy
        // is its high compute-per-memory-op ratio.
        let w = build(16, Scale::Test, LuLayout::Contiguous);
        let ratio = w.total_instructions() as f64 / w.total_mem_ops() as f64;
        assert!(ratio > 3.0, "ratio {ratio}");
    }

    #[test]
    fn layouts_produce_different_footprints() {
        let a = build(16, Scale::Test, LuLayout::Contiguous);
        let b = build(16, Scale::Test, LuLayout::NonContiguous);
        assert_ne!(a.scripts, b.scripts);
    }
}
