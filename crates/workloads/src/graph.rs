//! `dynamic_graph` — the DARPA-UHPC dynamic graph application the paper
//! evaluates alongside SPLASH-2: strongly-connected-component labelling
//! on a mutating graph, as address-accurate traffic.
//!
//! Per super-step, every core (1) drains vertices from a shared worklist
//! whose head indices live on a handful of *hot* lines touched by all
//! cores (these chip-wide-shared lines are written constantly —
//! dynamic_graph is the paper's most broadcast-heavy benchmark, Table V:
//! only 505 unicasts per broadcast); (2) for each vertex, walks its
//! adjacency list (pointer-chasing loads scattered over the shared edge
//! array — poor locality, frequent misses) and label-propagates: reads
//! the neighbour's component label and conditionally overwrites it
//! (scattered shared writes); and (3) occasionally *mutates* the graph,
//! writing adjacency entries. Link utilization stays low (Table V: 12 %)
//! because each hop is dependent pointer-chasing, not streaming.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{BuiltWorkload, Layout, Op, Scale};

const LABELS: u64 = 0x400_0000;
const EDGES: u64 = 0x500_0000;
const WORKLIST: u64 = 0x600_0000;

/// Build the dynamic-graph workload.
pub fn build(cores: usize, scale: Scale, seed: u64) -> BuiltWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vertices = (cores * 16) as u64;
    let steps = 2;
    let verts_per_step = 4 * scale.factor();
    let degree = 4;

    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); cores];
    for _step in 0..steps {
        for (c, script) in scripts.iter_mut().enumerate() {
            for _ in 0..verts_per_step {
                // Worklist pop: usually the core's own queue head (its
                // private slice of the shared worklist array); a work
                // steal touches the *global* head line — which every core
                // reads, making its writes broadcast invalidations.
                if rng.gen_bool(0.15) {
                    script.push(Op::Load(Layout::shared(WORKLIST, 0)));
                    script.push(Op::Compute(2));
                    if rng.gen_bool(0.5) {
                        script.push(Op::Store(Layout::shared(WORKLIST, 0)));
                    }
                } else {
                    let own = 64 + c as u64 * 8; // own line in the array
                    script.push(Op::Load(Layout::shared(WORKLIST, own)));
                    script.push(Op::Compute(2));
                    script.push(Op::Store(Layout::shared(WORKLIST, own)));
                }

                // Vertex and its label. Graph partitioning keeps most
                // neighbours within a core's own vertex range; a small
                // hot set of high-degree vertices is read chip-wide, and
                // writes to those labels are the broadcast invalidations.
                let local_base = c as u64 * 16;
                let v = local_base + rng.gen_range(0..16u64);
                script.push(Op::Load(Layout::shared(LABELS, v)));
                script.push(Op::Compute(1));

                // Adjacency walk with label propagation.
                for _e in 0..degree {
                    let edge_slot = v * degree as u64 + rng.gen_range(0..degree as u64);
                    script.push(Op::Load(Layout::shared(EDGES, edge_slot)));
                    let hot = rng.gen_bool(0.2);
                    let u = if hot {
                        rng.gen_range(0..32u64) // high-degree hub vertices
                    } else {
                        // cut edges land in a neighbouring partition
                        (local_base + rng.gen_range(0..64u64)) % vertices
                    };
                    script.push(Op::Load(Layout::shared(LABELS, u)));
                    script.push(Op::Compute(3));
                    if rng.gen_bool(if hot { 0.02 } else { 0.35 }) {
                        // label improves: propagate
                        script.push(Op::Store(Layout::shared(LABELS, u)));
                    }
                }

                // Occasional graph mutation.
                if rng.gen_bool(0.1) {
                    let edge_slot = rng.gen_range(0..vertices * degree as u64);
                    script.push(Op::Store(Layout::shared(EDGES, edge_slot)));
                }
                // dependent pointer-chasing delay + local bookkeeping
                // (visited-stack and counters: L1-resident private data)
                script.push(Op::Load(Layout::private(c, 1)));
                script.push(Op::Store(Layout::private(c, 2)));
                script.push(Op::Compute(6));
            }
            // private bookkeeping
            script.push(Op::Store(Layout::private(c, 0)));
            script.push(Op::Barrier);
        }
    }

    let w = BuiltWorkload {
        name: "dynamic_graph",
        scripts,
    };
    w.validate();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn builds_and_validates() {
        let w = build(16, Scale::Test, 11);
        assert!(w.total_mem_ops() > 200);
    }

    #[test]
    fn global_worklist_head_is_widely_shared() {
        let w = build(16, Scale::Paper, 11);
        let hot = Layout::shared(WORKLIST, 0).0 / 64;
        let mut readers = HashSet::new();
        let mut writers = HashSet::new();
        for (c, s) in w.scripts.iter().enumerate() {
            for op in s {
                match op {
                    Op::Load(a) if a.0 / 64 == hot => {
                        readers.insert(c);
                    }
                    Op::Store(a) if a.0 / 64 == hot => {
                        writers.insert(c);
                    }
                    _ => {}
                }
            }
        }
        assert!(readers.len() >= 12, "head read by {} cores", readers.len());
        assert!(
            writers.len() >= 4,
            "head written by {} cores",
            writers.len()
        );
    }

    #[test]
    fn own_worklist_slices_are_core_local() {
        let w = build(16, Scale::Test, 11);
        // core 3's own slot line must not be written by anyone else
        let own3 = Layout::shared(WORKLIST, 64 + 3 * 8).0 / 64;
        for (c, s) in w.scripts.iter().enumerate() {
            if c == 3 {
                continue;
            }
            let touches = s
                .iter()
                .any(|op| matches!(op, Op::Store(a) if a.0 / 64 == own3));
            assert!(!touches, "core {c} wrote core 3's worklist slice");
        }
    }

    #[test]
    fn edge_walk_scatters() {
        let w = build(16, Scale::Test, 11);
        let base = Layout::shared(EDGES, 0).0;
        let lines: HashSet<u64> = w
            .scripts
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Load(a) if a.0 >= base && a.0 < base + 0x10_0000 => Some(a.0 / 64),
                _ => None,
            })
            .collect();
        assert!(lines.len() > 30, "only {} edge lines", lines.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            build(8, Scale::Test, 3).scripts,
            build(8, Scale::Test, 3).scripts
        );
    }
}
