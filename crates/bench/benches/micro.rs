//! Criterion microbenchmarks of the simulator's hot paths.
//!
//! These are performance-regression guards for the reproduction's own
//! infrastructure (the figure harness runs hundreds of 1024-core
//! simulations; per-cycle costs matter), not paper results. Figure/table
//! regeneration lives in the `src/bin/figNN_*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use atac::coherence::{Addr, LineState, MemorySystem, ProtocolKind, SetAssocCache};
use atac::net::harness::{run_synthetic, SyntheticConfig};
use atac::net::{AtacNet, CoreId, Dest, Mesh, MeshKind, Message, MessageClass, Network, Topology};
use atac::phys::cache_model::{CacheGeometry, CacheModel};
use atac::phys::photonics::{OpticalLinkModel, PhotonicParams};
use atac::phys::stdcell::StdCellLib;
use atac::prelude::*;
use atac::sim::energy::integrate;

fn bench_cache_access(c: &mut Criterion) {
    let mut cache = SetAssocCache::l2();
    for i in 0..4096u64 {
        cache.fill(Addr(i * 64), LineState::S);
    }
    let mut i = 0u64;
    c.bench_function("cache/l2_hit_access", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            std::hint::black_box(cache.access(Addr(i * 64)))
        })
    });
}

fn bench_mesh_tick_loaded(c: &mut Criterion) {
    // A 16×16 mesh with continuous random traffic: the cost of one tick.
    let topo = Topology::small(16, 4);
    c.bench_function("net/mesh_tick_256c_loaded", |b| {
        b.iter_batched(
            || {
                let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
                for s in 0..128u16 {
                    let _ = mesh.try_send(
                        Message {
                            src: CoreId(s),
                            dest: Dest::Unicast(CoreId(255 - s)),
                            class: MessageClass::Data,
                            token: 0,
                        },
                        0,
                    );
                }
                mesh
            },
            |mut mesh| {
                for now in 0..50u64 {
                    mesh.tick(now);
                }
                std::hint::black_box(mesh.stats.link_traversals)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_onet_transit(c: &mut Criterion) {
    let topo = Topology::small(16, 4);
    c.bench_function("net/atac_broadcast_transit_256c", |b| {
        b.iter_batched(
            || AtacNet::atac_plus(topo),
            |mut net| {
                let _ = net.try_send(
                    Message {
                        src: CoreId(0),
                        dest: Dest::Broadcast,
                        class: MessageClass::Control,
                        token: 0,
                    },
                    0,
                );
                let mut out = Vec::new();
                let mut now = 0;
                while !net.is_idle() {
                    net.tick(now);
                    net.drain_deliveries(&mut out);
                    now += 1;
                }
                std::hint::black_box(out.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_coherence_miss_path(c: &mut Criterion) {
    // One full read-miss transaction over a real network.
    let topo = Topology::small(8, 4);
    c.bench_function("coherence/read_miss_roundtrip", |b| {
        let mut addr = 0u64;
        b.iter_batched(
            || {
                (
                    MemorySystem::new(topo, ProtocolKind::AckWise { k: 4 }),
                    AtacNet::atac_plus(topo),
                )
            },
            |(mut ms, mut net)| {
                addr += 64;
                let _ = ms.access(CoreId(0), Addr(addr), false);
                let mut deliveries = Vec::new();
                let mut done = Vec::new();
                let mut now = 0u64;
                while done.is_empty() {
                    ms.flush_outbox(&mut net, now);
                    net.tick(now);
                    net.drain_deliveries(&mut deliveries);
                    for d in deliveries.drain(..) {
                        ms.handle_delivery(&d, now);
                    }
                    ms.memctrl_tick(now);
                    ms.drain_completions(&mut done);
                    now += 1;
                    assert!(now < 10_000);
                }
                std::hint::black_box(now)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_workload_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    group.bench_function("build_radix_1024c", |b| {
        b.iter(|| std::hint::black_box(Benchmark::Radix.build(1024, Scale::Paper)))
    });
    group.finish();
}

fn bench_full_system_small(c: &mut Criterion) {
    // A complete 64-core run — the unit of work behind every figure.
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.bench_function("full_system_lu_64c", |b| {
        let cfg = SimConfig {
            topo: Topology::small(8, 4),
            ..SimConfig::default()
        };
        let w = Benchmark::LuContig.build(64, Scale::Test);
        b.iter(|| std::hint::black_box(atac::sim::run(&cfg, &w).cycles))
    });
    group.finish();
}

fn bench_energy_integration(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let small_cfg = SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    };
    let w = Benchmark::LuContig.build(64, Scale::Test);
    let r = atac::sim::run(&small_cfg, &w);
    c.bench_function("energy/integrate", |b| {
        b.iter(|| std::hint::black_box(integrate(&cfg, &r.net, &r.coh, r.cycles, r.ipc).total()))
    });
}

fn bench_phys_models(c: &mut Criterion) {
    c.bench_function("phys/cache_model_build", |b| {
        let lib = StdCellLib::tri_gate_11nm();
        b.iter(|| std::hint::black_box(CacheModel::new(&lib, CacheGeometry::l2_256k()).read_energy))
    });
    c.bench_function("phys/optical_link_model_build", |b| {
        b.iter(|| {
            std::hint::black_box(
                OpticalLinkModel::new(
                    PhotonicParams::default(),
                    PhotonicScenario::Practical,
                    64,
                    64,
                )
                .broadcast_laser_power,
            )
        })
    });
}

fn bench_synthetic_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.sample_size(10);
    group.bench_function("synthetic_traffic_64c", |b| {
        b.iter(|| {
            let mut net = AtacNet::atac_plus(Topology::small(8, 4));
            let cfg = SyntheticConfig {
                load: 0.05,
                warmup: 100,
                measure: 400,
                drain: 10_000,
                ..Default::default()
            };
            std::hint::black_box(run_synthetic(&mut net, &cfg).avg_latency)
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_cache_access,
        bench_mesh_tick_loaded,
        bench_onet_transit,
        bench_coherence_miss_path,
        bench_workload_build,
        bench_full_system_small,
        bench_energy_integration,
        bench_phys_models,
        bench_synthetic_harness
);
criterion_main!(benches);
