//! Microbenchmarks of the simulator's hot paths (self-contained harness).
//!
//! These are performance-regression guards for the reproduction's own
//! infrastructure (the figure harness runs hundreds of 1024-core
//! simulations; per-cycle costs matter), not paper results. Figure/table
//! regeneration lives in the `src/bin/figNN_*` binaries.
//!
//! The harness is deliberately minimal — wall-clock medians over a fixed
//! iteration budget — so the workspace carries no external benchmarking
//! dependency and builds offline. Run with `cargo bench -p atac-bench`.

use std::time::Instant;

use atac::coherence::{Addr, LineState, MemorySystem, ProtocolKind, SetAssocCache};
use atac::net::harness::{run_synthetic, SyntheticConfig};
use atac::net::{AtacNet, CoreId, Dest, Mesh, MeshKind, Message, MessageClass, Network, Topology};
use atac::phys::cache_model::{CacheGeometry, CacheModel};
use atac::phys::photonics::{OpticalLinkModel, PhotonicParams};
use atac::phys::stdcell::StdCellLib;
use atac::prelude::*;
use atac::sim::energy::integrate;

/// Time `f` over `samples` batches of `iters` calls; report the median
/// per-call latency. Returns the median in nanoseconds.
fn bench(name: &str, samples: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    // One warm-up batch.
    for _ in 0..iters {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    let median = per_call[per_call.len() / 2];
    let (value, unit) = if median >= 1e6 {
        (median / 1e6, "ms")
    } else if median >= 1e3 {
        (median / 1e3, "µs")
    } else {
        (median, "ns")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({samples} samples × {iters} iters)");
    median
}

fn bench_cache_access() {
    let mut cache = SetAssocCache::l2();
    for i in 0..4096u64 {
        cache.fill(Addr(i * 64), LineState::S);
    }
    let mut i = 0u64;
    bench("cache/l2_hit_access", 20, 100_000, || {
        i = (i + 1) % 4096;
        std::hint::black_box(cache.access(Addr(i * 64)));
    });
}

fn bench_mesh_tick_loaded() {
    // A 16×16 mesh with continuous random traffic: the cost of one tick.
    let topo = Topology::small(16, 4);
    bench("net/mesh_tick_256c_loaded", 10, 20, || {
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        for s in 0..128u16 {
            let _ = mesh.try_send(
                Message {
                    src: CoreId(s),
                    dest: Dest::Unicast(CoreId(255 - s)),
                    class: MessageClass::Data,
                    token: 0,
                },
                0,
            );
        }
        for now in 0..50u64 {
            mesh.tick(now);
        }
        std::hint::black_box(mesh.stats.link_traversals);
    });
}

fn bench_onet_transit() {
    let topo = Topology::small(16, 4);
    bench("net/atac_broadcast_transit_256c", 10, 50, || {
        let mut net = AtacNet::atac_plus(topo);
        let _ = net.try_send(
            Message {
                src: CoreId(0),
                dest: Dest::Broadcast,
                class: MessageClass::Control,
                token: 0,
            },
            0,
        );
        let mut out = Vec::new();
        let mut now = 0;
        while !net.is_idle() {
            net.tick(now);
            net.drain_deliveries(&mut out);
            now += 1;
        }
        std::hint::black_box(out.len());
    });
}

fn bench_coherence_miss_path() {
    // One full read-miss transaction over a real network.
    let topo = Topology::small(8, 4);
    let mut addr = 0u64;
    bench("coherence/read_miss_roundtrip", 10, 20, || {
        let mut ms = MemorySystem::new(topo, ProtocolKind::AckWise { k: 4 });
        let mut net = AtacNet::atac_plus(topo);
        addr += 64;
        let _ = ms.access(CoreId(0), Addr(addr), false);
        let mut deliveries = Vec::new();
        let mut done = Vec::new();
        let mut now = 0u64;
        while done.is_empty() {
            ms.flush_outbox(&mut net, now);
            net.tick(now);
            net.drain_deliveries(&mut deliveries);
            for d in deliveries.drain(..) {
                ms.handle_delivery(&d, now);
            }
            ms.memctrl_tick(now);
            ms.drain_completions(&mut done);
            now += 1;
            assert!(now < 10_000);
        }
        std::hint::black_box(now);
    });
}

fn bench_workload_build() {
    bench("workloads/build_radix_1024c", 5, 3, || {
        std::hint::black_box(Benchmark::Radix.build(1024, Scale::Paper));
    });
}

fn bench_full_system_small() {
    // A complete 64-core run — the unit of work behind every figure.
    let cfg = SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    };
    let w = Benchmark::LuContig.build(64, Scale::Test);
    bench("sim/full_system_lu_64c", 5, 2, || {
        std::hint::black_box(atac::sim::run(&cfg, &w).cycles);
    });
}

fn bench_energy_integration() {
    let cfg = SimConfig::default();
    let small_cfg = SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    };
    let w = Benchmark::LuContig.build(64, Scale::Test);
    let r = atac::sim::run(&small_cfg, &w);
    bench("energy/integrate", 20, 1_000, || {
        std::hint::black_box(integrate(&cfg, &r.net, &r.coh, r.cycles, r.ipc).total());
    });
}

fn bench_phys_models() {
    bench("phys/cache_model_build", 20, 1_000, || {
        let lib = StdCellLib::tri_gate_11nm();
        std::hint::black_box(CacheModel::new(&lib, CacheGeometry::l2_256k()).read_energy);
    });
    bench("phys/optical_link_model_build", 20, 1_000, || {
        std::hint::black_box(
            OpticalLinkModel::new(
                PhotonicParams::default(),
                PhotonicScenario::Practical,
                64,
                64,
            )
            .broadcast_laser_power,
        );
    });
}

fn bench_synthetic_harness() {
    bench("net/synthetic_traffic_64c", 5, 3, || {
        let mut net = AtacNet::atac_plus(Topology::small(8, 4));
        let cfg = SyntheticConfig {
            load: 0.05,
            warmup: 100,
            measure: 400,
            drain: 10_000,
            ..Default::default()
        };
        std::hint::black_box(run_synthetic(&mut net, &cfg).avg_latency);
    });
}

fn main() {
    println!("atac microbenchmarks (median wall-clock per iteration)\n");
    bench_cache_access();
    bench_mesh_tick_loaded();
    bench_onet_transit();
    bench_coherence_miss_path();
    bench_workload_build();
    bench_full_system_small();
    bench_energy_integration();
    bench_phys_models();
    bench_synthetic_harness();
}
