//! The parallel sweep executor.
//!
//! The figure suite is embarrassingly parallel *across* runs — hundreds
//! of independent deterministic full-system simulations — so a figure
//! binary declares the `(config, benchmark)` run keys it needs as a
//! [`RunPlan`] up front and [`RunPlan::execute`] warms the run cache
//! with a fixed-size pool of scoped worker threads (`ATAC_JOBS` workers,
//! default: available parallelism). Within a plan keys are deduplicated
//! at `add` time; across plans and threads the cache layer's
//! single-flight table (see [`crate::cache`]) keeps every key to one
//! simulation per process.
//!
//! Each needed `(benchmark, core-count)` workload is built once and
//! shared immutably by reference across workers (`SimConfig` and
//! `BuiltWorkload` are `Send + Sync` — statically asserted in
//! `atac-sim`). Runs themselves stay single-threaded and deterministic,
//! so a parallel sweep publishes byte-identical records to a serial one;
//! a worker panic propagates out of `execute` once the pool joins
//! (`std::thread::scope` re-raises it) rather than being swallowed.
//!
//! Timing of every phase and run key can be recorded to
//! `BENCH_sweep.json` via [`SweepLog`], giving later changes a
//! wall-clock trajectory to regress against.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use atac::prelude::*;
use atac::trace::{HostPhase, HostProfile, NetProfile};
use atac::workloads::BuiltWorkload;

use crate::cache::{RunCache, RunSource};
use crate::{run_key, RunSummary};

/// Worker count for sweeps: `ATAC_JOBS` if set, else the machine's
/// available parallelism.
pub fn jobs_from_env() -> usize {
    match std::env::var("ATAC_JOBS") {
        Ok(v) => parse_jobs(&v)
            .unwrap_or_else(|| panic!("ATAC_JOBS must be a positive integer, got `{v}`")),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

fn parse_jobs(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// A declared set of runs: `(timing configuration, benchmark)` pairs,
/// deduplicated by [`run_key`] at insertion.
#[derive(Debug, Default)]
pub struct RunPlan {
    entries: Vec<(SimConfig, Benchmark)>,
    keys: BTreeSet<String>,
}

impl RunPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one run; a `(config, benchmark)` pair whose run key is
    /// already planned is ignored.
    pub fn add(&mut self, cfg: SimConfig, bench: Benchmark) {
        if self.keys.insert(run_key(&cfg, bench)) {
            self.entries.push((cfg, bench));
        }
    }

    /// Union another plan into this one (same dedup rule).
    pub fn merge(&mut self, other: RunPlan) {
        for (cfg, bench) in other.entries {
            self.add(cfg, bench);
        }
    }

    /// Number of distinct run keys planned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan holds no runs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The planned runs, in insertion order.
    pub fn entries(&self) -> &[(SimConfig, Benchmark)] {
        &self.entries
    }

    /// Execute against the default cache with `ATAC_JOBS` workers.
    pub fn execute(&self) -> SweepReport {
        self.execute_on(&RunCache::from_env(), jobs_from_env())
    }

    /// Execute every planned run against `cache` with a pool of `jobs`
    /// worker threads, simulating only the keys the cache is missing.
    /// Returns per-run timings; panics if any run panics.
    pub fn execute_on(&self, cache: &RunCache, jobs: usize) -> SweepReport {
        let t0 = Instant::now();
        let mut missing: Vec<&(SimConfig, Benchmark)> = Vec::new();
        let mut cached_hits = 0usize;
        for entry in &self.entries {
            if cache.load(&run_key(&entry.0, entry.1)).is_some() {
                cached_hits += 1;
            } else {
                missing.push(entry);
            }
        }

        // One immutable build per (benchmark, core-count), shared by
        // reference across the pool instead of rebuilt per run.
        let mut workloads: BTreeMap<(&'static str, usize), BuiltWorkload> = BTreeMap::new();
        for (cfg, bench) in &missing {
            workloads
                .entry((bench.name(), cfg.topo.cores()))
                .or_insert_with(|| bench.build(cfg.topo.cores(), Scale::Paper));
        }

        let timings: Mutex<Vec<RunTiming>> = Mutex::new(Vec::with_capacity(missing.len()));
        run_pool(jobs, missing.len(), |i| {
            let (cfg, bench) = missing[i];
            let workload = &workloads[&(bench.name(), cfg.topo.cores())];
            let start = Instant::now();
            let (_, source, profile, netprof) =
                cache.get_or_run_profiled(cfg, *bench, Some(workload));
            timings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(RunTiming {
                    key: run_key(cfg, *bench),
                    secs: start.elapsed().as_secs_f64(),
                    source,
                    profile,
                    netprof,
                });
        });

        let mut runs = timings
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        runs.sort_by(|a, b| a.key.cmp(&b.key));
        // Summarize every planned record (they are all published by
        // now) into the figure-level metrics the run-history registry
        // and regression gate consume.
        let mut summaries: Vec<RunSummary> = self
            .entries
            .iter()
            .filter_map(|(cfg, bench)| {
                let rec = cache.load(&run_key(cfg, *bench))?;
                Some(RunSummary::from_record(cfg, *bench, &rec))
            })
            .collect();
        summaries.sort_by(|a, b| a.key.cmp(&b.key));
        let report = SweepReport {
            jobs,
            planned: self.entries.len(),
            cached_hits,
            wall_secs: t0.elapsed().as_secs_f64(),
            runs,
            summaries,
        };
        if !self.is_empty() {
            eprintln!(
                "[sweep] {} key(s): {} simulated, {} cached, {} joined in {:.1}s with {} worker(s)",
                report.planned,
                report.simulated(),
                report.cached_hits + report.count(RunSource::CacheHit),
                report.count(RunSource::Joined),
                report.wall_secs,
                report.jobs,
            );
        }
        report
    }
}

/// Run `f(0)..f(n-1)` on a fixed pool of `jobs` scoped worker threads.
/// Workers claim indices from a shared atomic counter, so long runs
/// naturally load-balance. A panic in any worker propagates out of this
/// function once all workers joined (`std::thread::scope` re-raises
/// it): a failing run aborts the sweep loudly, never silently.
fn run_pool(jobs: usize, n: usize, f: impl Fn(usize) + Sync) {
    if n == 0 {
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.clamp(1, n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Wall-clock and provenance of one executed run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// The run key (see [`run_key`]).
    pub key: String,
    /// Wall-clock seconds this worker spent obtaining the record.
    pub secs: f64,
    /// Whether the record was simulated, joined, or re-read from cache.
    pub source: RunSource,
    /// Host self-profile of the simulation (simulated runs with
    /// `ATAC_PROFILE` enabled only; see [`crate::profiling_enabled`]).
    pub profile: Option<HostProfile>,
    /// Network microscope profile — per-router/link cycle-domain
    /// counters and skip-ahead efficacy (simulated runs with
    /// `ATAC_NETPROF` enabled only; see [`crate::netprof_enabled`]).
    pub netprof: Option<NetProfile>,
}

/// The outcome of one [`RunPlan::execute_on`] pass.
#[derive(Debug)]
pub struct SweepReport {
    /// Worker-pool size used.
    pub jobs: usize,
    /// Distinct keys in the plan.
    pub planned: usize,
    /// Keys already published before the pool started.
    pub cached_hits: usize,
    /// Wall-clock seconds for the whole pass.
    pub wall_secs: f64,
    /// Per-run timings for the keys the pool touched, sorted by key.
    pub runs: Vec<RunTiming>,
    /// Figure-level metrics for *every* planned key (cached or
    /// simulated), sorted by key — what the run-history registry and
    /// regression gate consume.
    pub summaries: Vec<RunSummary>,
}

impl SweepReport {
    /// Runs this pass actually simulated.
    pub fn simulated(&self) -> usize {
        self.count(RunSource::Simulated)
    }

    fn count(&self, source: RunSource) -> usize {
        self.runs.iter().filter(|r| r.source == source).count()
    }

    /// All runs' host self-profiles merged, if any run carried one.
    pub fn merged_profile(&self) -> Option<HostProfile> {
        let mut merged = HostProfile::zero();
        let mut any = false;
        for run in &self.runs {
            if let Some(p) = &run.profile {
                merged.merge(p);
                any = true;
            }
        }
        any.then_some(merged)
    }
}

/// Accumulates a sweep's timings and writes `BENCH_sweep.json`: phase
/// and per-run wall-clock, per-run host self-profiles, figure-level
/// run summaries, plus the knob values (`ATAC_JOBS`, `ATAC_CORES`,
/// `ATAC_BENCHES`), so successive changes to the simulator or executor
/// leave a comparable perf trajectory behind. Schema
/// `atac-bench-sweep-v3` (v1 lacked `summaries` and profiles, v2 lacked
/// the per-run `netprof` network breakdowns; readers treat unknown
/// fields as forward-compatible).
#[derive(Debug, Default)]
pub struct SweepLog {
    jobs: usize,
    phases: Vec<(String, f64)>,
    runs: Vec<RunTiming>,
    summaries: Vec<RunSummary>,
    verify: Option<(String, bool)>,
}

impl SweepLog {
    /// A log for a sweep using `jobs` workers.
    pub fn new(jobs: usize) -> Self {
        SweepLog {
            jobs,
            ..Default::default()
        }
    }

    /// Record one named phase's wall-clock seconds.
    pub fn phase(&mut self, name: &str, secs: f64) {
        self.phases.push((name.to_string(), secs));
    }

    /// Copy a report's per-run timings and summaries into the log.
    pub fn absorb(&mut self, report: &SweepReport) {
        self.runs.extend(report.runs.iter().cloned());
        self.summaries.extend(report.summaries.iter().cloned());
    }

    /// Record the serial re-check outcome for one key.
    pub fn set_verify(&mut self, key: &str, identical: bool) {
        self.verify = Some((key.to_string(), identical));
    }

    /// Render the log as a self-describing JSON document.
    pub fn to_json(&self) -> String {
        let cores = std::env::var("ATAC_CORES").unwrap_or_else(|_| "1024".into());
        let benches = std::env::var("ATAC_BENCHES").unwrap_or_else(|_| "all".into());
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"atac-bench-sweep-v3\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"cores\": \"{}\",\n", escape(&cores)));
        out.push_str(&format!("  \"benches\": \"{}\",\n", escape(&benches)));
        out.push_str("  \"phases\": {\n");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            let comma = if i + 1 == self.phases.len() { "" } else { "," };
            out.push_str(&format!("    \"{}\": {secs:?}{comma}\n", escape(name)));
        }
        out.push_str("  },\n");
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"key\": \"{}\", \"secs\": {:?}, \"source\": \"{}\"",
                escape(&run.key),
                run.secs,
                run.source.name()
            ));
            if let Some(p) = &run.profile {
                out.push_str(&format!(", \"profile\": {}", profile_json(p)));
            }
            if let Some(np) = &run.netprof {
                out.push_str(&format!(", \"netprof\": {}", netprof_json(np)));
            }
            out.push_str(&format!("}}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summaries\": [\n");
        for (i, s) in self.summaries.iter().enumerate() {
            let comma = if i + 1 == self.summaries.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    {}{comma}\n", summary_json(s)));
        }
        out.push_str("  ]");
        if let Some(total) = self.merged_profile() {
            out.push_str(&format!(",\n  \"self_profile\": {}", profile_json(&total)));
        }
        if let Some((key, identical)) = &self.verify {
            out.push_str(&format!(
                ",\n  \"verify\": {{\"key\": \"{}\", \"identical\": {identical}}}",
                escape(key)
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// All logged runs' host self-profiles merged, if any carried one.
    pub fn merged_profile(&self) -> Option<HostProfile> {
        let mut merged = HostProfile::zero();
        let mut any = false;
        for run in &self.runs {
            if let Some(p) = &run.profile {
                merged.merge(p);
                any = true;
            }
        }
        any.then_some(merged)
    }

    /// All logged runs' network microscope profiles merged, if any
    /// carried one. All-integer counters merged in logged (run-key)
    /// order, so the aggregate is independent of worker scheduling.
    pub fn merged_netprof(&self) -> Option<NetProfile> {
        let mut merged = NetProfile::new();
        let mut any = false;
        for run in &self.runs {
            if let Some(np) = &run.netprof {
                merged.merge(np);
                any = true;
            }
        }
        any.then_some(merged)
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping (keys and env values are plain ASCII,
/// but stay safe against quotes and backslashes).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One host self-profile as a JSON object: per-phase seconds (nonzero
/// phases only, stable [`HostPhase::name`] keys), total and coverage.
/// When the run carried network sub-phase laps (`ATAC_NETPROF`), a
/// `net_phases` object (stable [`atac::trace::NetSubPhase::name`] keys)
/// and the `net_coverage` fraction of the network phase they tile ride
/// along.
fn profile_json(p: &HostProfile) -> String {
    let phases: Vec<String> = HostPhase::ALL
        .into_iter()
        .filter(|ph| p.phase_secs(*ph) > 0.0)
        .map(|ph| format!("\"{}\": {:?}", ph.name(), p.phase_secs(ph)))
        .collect();
    let mut net = String::new();
    if p.net_tracked_secs() > 0.0 {
        let subs: Vec<String> = p
            .net_phases()
            .filter(|(_, secs)| *secs > 0.0)
            .map(|(sub, secs)| format!("\"{}\": {:?}", sub.name(), secs))
            .collect();
        net = format!(
            ", \"net_coverage\": {:?}, \"net_phases\": {{{}}}",
            p.net_sub_coverage(),
            subs.join(", ")
        );
    }
    format!(
        "{{\"total_secs\": {:?}, \"coverage\": {:?}, \"phases\": {{{}}}{net}}}",
        p.total_secs,
        p.coverage(),
        phases.join(", ")
    )
}

/// One network microscope profile as a JSON object. Every value is an
/// integer counter, so the document round-trips exactly and merging
/// (report-side, in run-key order) is order-independent. Per-router
/// counters are flat arrays `[flits_routed, credit_stall_cycles,
/// active_cycles, occupancy_sum, hist0..hist5]` indexed by router id;
/// `links` is indexed `router * 4 + direction`; the hub arrays are
/// indexed by cluster.
fn netprof_json(p: &NetProfile) -> String {
    let routers: Vec<String> = p
        .routers
        .iter()
        .map(|r| {
            let mut vals = vec![
                r.flits_routed,
                r.credit_stall_cycles,
                r.active_cycles,
                r.occupancy_sum,
            ];
            vals.extend(r.occupancy_hist);
            format!("[{}]", join_u64(&vals))
        })
        .collect();
    format!(
        "{{\"cycles\": {}, \"ticks\": {}, \"skipped\": {}, \"jumps\": {}, \
         \"wake_core\": {}, \"wake_mem\": {}, \"wake_net\": {}, \"epochs\": {}, \
         \"coalesced\": {}, \"max_epoch_span\": {}, \"hub_unicast\": [{}], \
         \"hub_broadcast\": [{}], \"links\": [{}], \"routers\": [{}]}}",
        p.cycles,
        p.ticks_executed,
        p.cycles_skipped,
        p.skip_jumps,
        p.wake_core,
        p.wake_mem,
        p.wake_net,
        p.epochs_closed,
        p.coalesced_epochs,
        p.max_epoch_span,
        join_u64(&p.hub_unicast_flits),
        join_u64(&p.hub_broadcast_flits),
        join_u64(&p.link_flits),
        routers.join(", ")
    )
}

fn join_u64(vals: &[u64]) -> String {
    let strs: Vec<String> = vals.iter().map(u64::to_string).collect();
    strs.join(", ")
}

/// One run summary as a JSON object. Floats print via `{:?}` so they
/// round-trip exactly — the regression gate compares them bit-for-bit.
fn summary_json(s: &RunSummary) -> String {
    format!(
        "{{\"key\": \"{}\", \"bench\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
         \"ipc\": {:?}, \"runtime_s\": {:?}, \"energy_j\": {:?}, \"edp_js\": {:?}, \
         \"latency\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"count\": {}}}}}",
        escape(&s.key),
        escape(&s.bench),
        s.cycles,
        s.instructions,
        s.ipc,
        s.runtime.value(),
        s.energy.value(),
        s.edp.value(),
        s.latency_p50,
        s.latency_p95,
        s.latency_p99,
        s.latency_max,
        s.latency_count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_dedups_identical_run_keys() {
        let mut plan = RunPlan::new();
        let cfg = SimConfig::small();
        plan.add(cfg.clone(), Benchmark::Radix);
        plan.add(cfg.clone(), Benchmark::Radix);
        // The photonic scenario is energy-only; same run key.
        plan.add(
            SimConfig {
                scenario: PhotonicScenario::Conservative,
                ..cfg.clone()
            },
            Benchmark::Radix,
        );
        assert_eq!(plan.len(), 1);
        plan.add(cfg, Benchmark::Barnes);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let hits = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            run_pool(2, 8, |i| {
                hits.fetch_add(1, Ordering::Relaxed);
                assert!(i != 3, "injected failure");
            });
        });
        assert!(result.is_err(), "a panicking run must fail the sweep");
    }

    #[test]
    fn pool_covers_every_index_once() {
        let n = 64;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_pool(5, n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // Degenerate pools still work.
        run_pool(0, 0, |_| unreachable!("no indices"));
        let one = AtomicUsize::new(0);
        run_pool(16, 1, |_| {
            one.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(one.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_parser_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs("-2"), None);
        assert_eq!(parse_jobs("many"), None);
    }

    #[test]
    fn sweep_log_renders_valid_shape() {
        use atac::trace::{NetSubPhase, RouterObs};

        let mut log = SweepLog::new(4);
        log.phase("warm", 1.5);
        log.phase("render", 0.25);
        let mut profile = HostProfile::zero();
        profile.secs[HostPhase::Replay.index()] = 1.0;
        profile.secs[HostPhase::Network.index()] = 0.5;
        profile.net_sub_secs[NetSubPhase::RouteCompute.index()] = 0.5;
        profile.total_secs = 1.25;
        let mut np = NetProfile::new();
        np.cycles = 10;
        np.ticks_executed = 6;
        np.cycles_skipped = 4;
        np.skip_jumps = 1;
        np.wake_core = 1;
        np.hub_unicast_flits = vec![3];
        np.link_flits = vec![1, 0, 0, 0];
        np.routers = vec![RouterObs {
            flits_routed: 1,
            ..Default::default()
        }];
        log.runs.push(RunTiming {
            key: "8x8|atac[distance-15]|radix".into(),
            secs: 1.25,
            source: RunSource::Simulated,
            profile: Some(profile),
            netprof: Some(np),
        });
        log.set_verify("8x8|atac[distance-15]|radix", true);
        let json = log.to_json();
        assert!(json.contains("\"schema\": \"atac-bench-sweep-v3\""));
        assert!(json.contains("\"replay\": 1.0"));
        assert!(json.contains("\"self_profile\""));
        assert!(json.contains("\"summaries\""));
        assert!(json.contains("\"jobs\": 4"));
        assert!(json.contains("\"warm\": 1.5"));
        assert!(json.contains("\"source\": \"simulated\""));
        assert!(json.contains("\"identical\": true"));
        // The network microscope rides along: sub-phase attribution in
        // the profile, integer counters in the netprof object.
        assert!(json.contains("\"net_coverage\": 1.0"));
        assert!(json.contains("\"route_compute\": 0.5"));
        assert!(json.contains("\"netprof\": {\"cycles\": 10, \"ticks\": 6, \"skipped\": 4"));
        assert!(json.contains("\"hub_unicast\": [3]"));
        assert!(json.contains("\"links\": [1, 0, 0, 0]"));
        assert!(json.contains("\"routers\": [[1, 0, 0, 0, 0, 0, 0, 0, 0, 0]]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        // The merged aggregate reuses the same order-independent merge.
        let merged = log.merged_netprof().expect("one run carried a netprof");
        assert_eq!(merged.cycles, 10);
        assert_eq!(merged.total_flits_routed(), 1);
    }
}
