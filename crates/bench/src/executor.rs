//! The parallel sweep executor.
//!
//! The figure suite is embarrassingly parallel *across* runs — hundreds
//! of independent deterministic full-system simulations — so a figure
//! binary declares the `(config, benchmark)` run keys it needs as a
//! [`RunPlan`] up front and [`RunPlan::execute`] warms the run cache
//! with a fixed-size pool of scoped worker threads (`ATAC_JOBS` workers,
//! default: available parallelism). Within a plan keys are deduplicated
//! at `add` time; across plans and threads the cache layer's
//! single-flight table (see [`crate::cache`]) keeps every key to one
//! simulation per process.
//!
//! Each needed `(benchmark, core-count)` workload is built once and
//! shared immutably by reference across workers (`SimConfig` and
//! `BuiltWorkload` are `Send + Sync` — statically asserted in
//! `atac-sim`). Runs themselves stay single-threaded and deterministic,
//! so a parallel sweep publishes byte-identical records to a serial one;
//! a worker panic propagates out of `execute` once the pool joins
//! (`std::thread::scope` re-raises it) rather than being swallowed.
//!
//! Timing of every phase and run key can be recorded to
//! `BENCH_sweep.json` via [`SweepLog`], giving later changes a
//! wall-clock trajectory to regress against.
//!
//! [`RunPlan::execute_with`] layers the sweep's own observability on
//! top ([`ExecOptions`]): the flight recorder (`ATAC_FLIGHT`, see
//! [`atac::trace::flight`]) journals worker lifecycle spans, cache
//! outcomes, queue depth, and RSS samples; a cost model learned from
//! `BENCH_history.jsonl` ([`CostModel`]) schedules missing keys
//! longest-expected-first and feeds the live progress line's ETA
//! (`ATAC_PROGRESS`, default: on when stderr is a TTY). All of it
//! observes the host only — scheduling order and journals never reach
//! the published records, which stay sorted by run key.

use std::collections::{BTreeMap, BTreeSet};
use std::io::IsTerminal;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use atac::prelude::*;
use atac::trace::flight::{
    current_rss_bytes, CacheOutcome, FlightHandle, FlightLog, FlightRecorder, SpanKind,
};
use atac::trace::{HostPhase, HostProfile, NetProfile};
use atac::workloads::BuiltWorkload;

use crate::cache::{flight_enabled, RunCache, RunSource};
use crate::costs::CostModel;
use crate::{run_key, RunSummary};

/// Worker count for sweeps: `ATAC_JOBS` if set, else the machine's
/// available parallelism.
pub fn jobs_from_env() -> usize {
    match std::env::var("ATAC_JOBS") {
        Ok(v) => parse_jobs(&v)
            .unwrap_or_else(|| panic!("ATAC_JOBS must be a positive integer, got `{v}`")),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

fn parse_jobs(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Whether the live progress line renders (`ATAC_PROGRESS`; default:
/// only when stderr is a terminal, so CI logs stay clean. Set `1` to
/// force it on, `0` to force it off).
fn progress_enabled() -> bool {
    match std::env::var("ATAC_PROGRESS").as_deref() {
        Ok("0") => false,
        Ok(_) => true,
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// Observability and scheduling options for one executor pass. The
/// default is the fully quiet executor every existing caller and test
/// gets from [`RunPlan::execute_on`]: no journal, declared order, no
/// progress line.
#[derive(Debug, Default)]
pub struct ExecOptions {
    /// Record a flight journal ([`SweepReport::flight`]).
    pub flight: bool,
    /// Expected per-key host seconds for longest-expected-first
    /// scheduling and the progress ETA; empty model = declared order.
    pub costs: CostModel,
    /// Render the live progress line on stderr.
    pub progress: bool,
}

impl ExecOptions {
    /// Options from the environment: `ATAC_FLIGHT` (default off),
    /// `ATAC_HISTORY` (default `BENCH_history.jsonl`), `ATAC_PROGRESS`
    /// (default: stderr-is-a-TTY).
    pub fn from_env() -> Self {
        ExecOptions {
            flight: flight_enabled(),
            costs: CostModel::from_env(),
            progress: progress_enabled(),
        }
    }
}

/// A declared set of runs: `(timing configuration, benchmark)` pairs,
/// deduplicated by [`run_key`] at insertion.
#[derive(Debug, Default)]
pub struct RunPlan {
    entries: Vec<(SimConfig, Benchmark)>,
    keys: BTreeSet<String>,
}

impl RunPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one run; a `(config, benchmark)` pair whose run key is
    /// already planned is ignored.
    pub fn add(&mut self, cfg: SimConfig, bench: Benchmark) {
        if self.keys.insert(run_key(&cfg, bench)) {
            self.entries.push((cfg, bench));
        }
    }

    /// Union another plan into this one (same dedup rule).
    pub fn merge(&mut self, other: RunPlan) {
        for (cfg, bench) in other.entries {
            self.add(cfg, bench);
        }
    }

    /// Number of distinct run keys planned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan holds no runs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The planned runs, in insertion order.
    pub fn entries(&self) -> &[(SimConfig, Benchmark)] {
        &self.entries
    }

    /// Execute against the default cache with `ATAC_JOBS` workers and
    /// the environment's observability options ([`ExecOptions::from_env`]).
    pub fn execute(&self) -> SweepReport {
        self.execute_with(
            &RunCache::from_env(),
            jobs_from_env(),
            &ExecOptions::from_env(),
        )
    }

    /// Execute every planned run against `cache` with a pool of `jobs`
    /// worker threads, simulating only the keys the cache is missing.
    /// Returns per-run timings; panics if any run panics. Quiet
    /// executor: no journal, declared order, no progress line.
    pub fn execute_on(&self, cache: &RunCache, jobs: usize) -> SweepReport {
        self.execute_with(cache, jobs, &ExecOptions::default())
    }

    /// [`Self::execute_on`] with explicit observability and scheduling
    /// options. Missing keys run longest-expected-first when `opts`
    /// carries a cost model (unknown-cost keys run first — an unknown
    /// is potentially long, the safe bet for makespan); records are
    /// published per key and the report stays sorted by key, so the
    /// schedule never changes any output byte.
    pub fn execute_with(&self, cache: &RunCache, jobs: usize, opts: &ExecOptions) -> SweepReport {
        let t0 = Instant::now();
        let recorder = opts
            .flight
            .then(|| FlightRecorder::new(jobs.max(1) as u64, self.entries.len() as u64));
        let flight = recorder.as_ref().map_or_else(FlightHandle::disabled, |r| {
            FlightHandle::attach(Arc::clone(r))
        });
        let peak_rss = AtomicU64::new(current_rss_bytes().unwrap_or(0));

        let mut missing: Vec<&(SimConfig, Benchmark)> = Vec::new();
        let mut cached_hits = 0usize;
        for entry in &self.entries {
            let key = run_key(&entry.0, entry.1);
            if cache.load(&key).is_some() {
                cached_hits += 1;
                flight.cache(&key, CacheOutcome::Hit, false);
            } else {
                missing.push(entry);
            }
        }
        let n = missing.len();

        // Cost-aware schedule (longest processing time first). The
        // journal records every placement so the flight report can
        // replay declared vs scheduled order and quantify the makespan
        // difference.
        let expected: Vec<Option<f64>> = missing
            .iter()
            .map(|(cfg, bench)| opts.costs.expected_secs(&run_key(cfg, *bench)))
            .collect();
        let order = schedule_order(&expected);
        if flight.enabled() {
            for (sched, &decl) in order.iter().enumerate() {
                let (cfg, bench) = missing[decl];
                flight.sched(
                    &run_key(cfg, *bench),
                    decl as u64,
                    sched as u64,
                    expected[decl],
                );
            }
        }

        // One immutable build per (benchmark, core-count), shared by
        // reference across the pool instead of rebuilt per run.
        let mut workloads: BTreeMap<(&'static str, usize), BuiltWorkload> = BTreeMap::new();
        for (cfg, bench) in &missing {
            workloads
                .entry((bench.name(), cfg.topo.cores()))
                .or_insert_with(|| bench.build(cfg.topo.cores(), Scale::Paper));
        }

        // Progress / ETA bookkeeping, all claim-counter-shaped atomics:
        // expected micros of *unfinished* known-cost keys, a count of
        // unfinished unknown-cost keys, and completion counters. No
        // float accumulation — the only reduction is an integer sum.
        let workers = jobs.clamp(1, n.max(1));
        let expected_us: Vec<u64> = expected
            .iter()
            .map(|e| e.map_or(0, |s| (s * 1e6) as u64))
            .collect();
        let known_count = expected_us.iter().filter(|&&u| u > 0).count();
        let known_total_us: u64 = expected_us.iter().sum();
        let remaining_known_us = AtomicU64::new(known_total_us);
        let unknown_remaining = AtomicUsize::new(n - known_count);
        let done = AtomicUsize::new(0);
        let busy = AtomicUsize::new(0);
        // Per-worker "idle since" stamps (f64 bits) — each slot is only
        // written by its own worker and read back after the pool joins.
        let free_since: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

        let timings: Mutex<Vec<RunTiming>> = Mutex::new(Vec::with_capacity(n));
        let planned = self.entries.len();
        let body = |w: usize, slot: usize| {
            let i = order[slot];
            busy.fetch_add(1, Ordering::Relaxed);
            flight.queue((n - slot - 1) as u64, busy.load(Ordering::Relaxed) as u64);
            if flight.enabled() {
                let since = f64::from_bits(free_since[w].load(Ordering::Relaxed));
                let t = flight.now();
                if t > since {
                    flight.span(w as u64, SpanKind::Idle, None, since, t);
                }
            }
            let (cfg, bench) = missing[i];
            let workload = &workloads[&(bench.name(), cfg.topo.cores())];
            let start = Instant::now();
            let (_, source, profile, netprof) =
                cache.get_or_run_observed(cfg, *bench, Some(workload), &flight, w as u64);
            timings
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(RunTiming {
                    key: run_key(cfg, *bench),
                    secs: start.elapsed().as_secs_f64(),
                    source,
                    profile,
                    netprof,
                });
            free_since[w].store(flight.now().to_bits(), Ordering::Relaxed);
            if let Some(bytes) = current_rss_bytes() {
                peak_rss.fetch_max(bytes, Ordering::Relaxed);
            }
            flight.sample_rss();
            if expected_us[i] > 0 {
                remaining_known_us.fetch_sub(expected_us[i], Ordering::Relaxed);
            } else {
                unknown_remaining.fetch_sub(1, Ordering::Relaxed);
            }
            busy.fetch_sub(1, Ordering::Relaxed);
            done.fetch_add(1, Ordering::Relaxed);
        };
        let progress_line = || {
            let d = done.load(Ordering::Relaxed);
            let per_unknown = if n == known_count {
                Some(0.0)
            } else if known_count > 0 {
                Some(known_total_us as f64 / 1e6 / known_count as f64)
            } else if d > 0 {
                Some(t0.elapsed().as_secs_f64() / d as f64)
            } else {
                None
            };
            let eta = eta_secs(
                remaining_known_us.load(Ordering::Relaxed) as f64 / 1e6,
                unknown_remaining.load(Ordering::Relaxed),
                per_unknown,
                workers,
            );
            let hit_pct = 100.0 * cached_hits as f64 / planned.max(1) as f64;
            eprint!(
                "\r[sweep] {}/{planned} keys \u{b7} {} busy \u{b7} {hit_pct:.0}% cache-hit \
                 \u{b7} ETA {}   ",
                cached_hits + d,
                busy.load(Ordering::Relaxed),
                fmt_eta(eta)
            );
        };
        let monitor: Option<&(dyn Fn() + Sync)> = if opts.progress && n > 0 {
            Some(&progress_line)
        } else {
            None
        };
        run_pool_workers(jobs, n, body, monitor);
        if opts.progress && n > 0 {
            eprint!("\r{:76}\r", "");
        }

        if flight.enabled() {
            // Tail idle spans: each worker from its last completion (or
            // recorder start, if it never claimed a run) to pool exit.
            let t_end = flight.now();
            for (w, since) in free_since.iter().enumerate() {
                flight.span(
                    w as u64,
                    SpanKind::Idle,
                    None,
                    f64::from_bits(since.load(Ordering::Relaxed)),
                    t_end,
                );
            }
        }
        if let Some(bytes) = current_rss_bytes() {
            peak_rss.fetch_max(bytes, Ordering::Relaxed);
        }

        let mut runs = timings
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        runs.sort_by(|a, b| a.key.cmp(&b.key));
        let simulated = runs
            .iter()
            .filter(|r| r.source == RunSource::Simulated)
            .count();
        // Summarize every planned record (they are all published by
        // now) into the figure-level metrics the run-history registry
        // and regression gate consume.
        let mut summaries: Vec<RunSummary> = self
            .entries
            .iter()
            .filter_map(|(cfg, bench)| {
                let rec = cache.load(&run_key(cfg, *bench))?;
                Some(RunSummary::from_record(cfg, *bench, &rec))
            })
            .collect();
        summaries.sort_by(|a, b| a.key.cmp(&b.key));
        let report = SweepReport {
            jobs,
            planned,
            cached_hits,
            wall_secs: t0.elapsed().as_secs_f64(),
            runs,
            summaries,
            peak_rss_bytes: peak_rss.into_inner(),
            flight: flight.finish(simulated as u64),
        };
        if !self.is_empty() {
            eprintln!(
                "[sweep] {} key(s): {} simulated, {} cached, {} joined in {:.1}s with {} worker(s)",
                report.planned,
                report.simulated(),
                report.cached_hits + report.count(RunSource::CacheHit),
                report.count(RunSource::Joined),
                report.wall_secs,
                report.jobs,
            );
        }
        report
    }
}

/// Longest-expected-first execution order over per-key costs: known
/// costs descending, unknown costs (`None`) ahead of everything —
/// an unscheduled unknown landing on a lone worker late is the worst
/// makespan outcome — and ties in declared order (the sort is a total
/// order, so the schedule is deterministic for a given history).
fn schedule_order(expected: &[Option<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..expected.len()).collect();
    order.sort_by(|&a, &b| {
        let ca = expected[a].unwrap_or(f64::INFINITY);
        let cb = expected[b].unwrap_or(f64::INFINITY);
        cb.total_cmp(&ca).then(a.cmp(&b))
    });
    order
}

/// Progress-line ETA: expected seconds of unfinished work spread over
/// the pool. `per_unknown` prices each unfinished unknown-cost key
/// (mean of the known expectations, or the observed per-run rate when
/// the model is empty); `None` when there is nothing to price with.
fn eta_secs(
    remaining_known: f64,
    unknown_remaining: usize,
    per_unknown: Option<f64>,
    workers: usize,
) -> Option<f64> {
    let per = match per_unknown {
        Some(p) => p,
        None if unknown_remaining == 0 => 0.0,
        None => return None,
    };
    Some((remaining_known + unknown_remaining as f64 * per) / workers.max(1) as f64)
}

/// Render an ETA for the progress line.
fn fmt_eta(eta: Option<f64>) -> String {
    match eta {
        None => "--".to_string(),
        Some(s) => {
            let s = s.max(0.0).ceil() as u64;
            if s >= 90 {
                format!("{}m{:02}s", s / 60, s % 60)
            } else {
                format!("{s}s")
            }
        }
    }
}

/// Write a finished flight journal to `path` as JSONL. Lives here
/// because the bench crate's file-write surface is `executor.rs` and
/// `cache.rs` (audit rule 6).
pub fn write_flight(log: &FlightLog, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, log.to_jsonl())
}

/// Run `f(0, 0)..f(w, n-1)` on a fixed pool of `jobs` scoped worker
/// threads: `f(w, slot)` gets the claiming worker's pool index and the
/// claim sequence number. Workers claim slots from a shared atomic
/// counter, so long runs naturally load-balance. `monitor` (when
/// present) runs on its own scoped thread every ~200 ms until the
/// workers finish, then once more for the final state — the live
/// progress line. Workers are joined explicitly (rather than letting
/// the scope do it) so the monitor can be stopped as soon as the last
/// worker exits; a worker panic is re-raised after the monitor winds
/// down: a failing run aborts the sweep loudly, never silently.
fn run_pool_workers(
    jobs: usize,
    n: usize,
    f: impl Fn(usize, usize) + Sync,
    monitor: Option<&(dyn Fn() + Sync)>,
) {
    if n == 0 {
        return;
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let f = &f;
        let next = &next;
        let handles: Vec<_> = (0..jobs.clamp(1, n))
            .map(|w| {
                s.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= n {
                        break;
                    }
                    f(w, slot);
                })
            })
            .collect();
        let monitor_thread = monitor.map(|tick| {
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    tick();
                    std::thread::sleep(Duration::from_millis(200));
                }
                tick();
            })
        });
        let mut panicked = None;
        for h in handles {
            if let Err(p) = h.join() {
                panicked.get_or_insert(p);
            }
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(m) = monitor_thread {
            let _ = m.join();
        }
        if let Some(p) = panicked {
            std::panic::resume_unwind(p);
        }
    });
}

/// Wall-clock and provenance of one executed run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// The run key (see [`run_key`]).
    pub key: String,
    /// Wall-clock seconds this worker spent obtaining the record.
    pub secs: f64,
    /// Whether the record was simulated, joined, or re-read from cache.
    pub source: RunSource,
    /// Host self-profile of the simulation (simulated runs with
    /// `ATAC_PROFILE` enabled only; see [`crate::profiling_enabled`]).
    pub profile: Option<HostProfile>,
    /// Network microscope profile — per-router/link cycle-domain
    /// counters and skip-ahead efficacy (simulated runs with
    /// `ATAC_NETPROF` enabled only; see [`crate::netprof_enabled`]).
    pub netprof: Option<NetProfile>,
}

/// The outcome of one [`RunPlan::execute_on`] pass.
#[derive(Debug)]
pub struct SweepReport {
    /// Worker-pool size used.
    pub jobs: usize,
    /// Distinct keys in the plan.
    pub planned: usize,
    /// Keys already published before the pool started.
    pub cached_hits: usize,
    /// Wall-clock seconds for the whole pass.
    pub wall_secs: f64,
    /// Per-run timings for the keys the pool touched, sorted by key.
    pub runs: Vec<RunTiming>,
    /// Figure-level metrics for *every* planned key (cached or
    /// simulated), sorted by key — what the run-history registry and
    /// regression gate consume.
    pub summaries: Vec<RunSummary>,
    /// High-water resident-set bytes over the pass (sampled at start,
    /// after every run, and at pool exit; 0 where procfs is absent).
    pub peak_rss_bytes: u64,
    /// The flight journal, when the pass ran with
    /// [`ExecOptions::flight`] — already closed, ready to write via
    /// [`write_flight`].
    pub flight: Option<FlightLog>,
}

impl SweepReport {
    /// Runs this pass actually simulated.
    pub fn simulated(&self) -> usize {
        self.count(RunSource::Simulated)
    }

    fn count(&self, source: RunSource) -> usize {
        self.runs.iter().filter(|r| r.source == source).count()
    }

    /// The executor self-metrics this pass contributes to the sweep
    /// log: every planned key settles as exactly one of hit (prescan or
    /// worker re-read), miss (simulated), or single-flight wait.
    pub fn executor_stats(&self) -> ExecutorStats {
        ExecutorStats {
            cache_hits: (self.cached_hits + self.count(RunSource::CacheHit)) as u64,
            cache_misses: self.simulated() as u64,
            flight_waits: self.count(RunSource::Joined) as u64,
            peak_rss_bytes: self.peak_rss_bytes,
        }
    }

    /// All runs' host self-profiles merged, if any run carried one.
    pub fn merged_profile(&self) -> Option<HostProfile> {
        let mut merged = HostProfile::zero();
        let mut any = false;
        for run in &self.runs {
            if let Some(p) = &run.profile {
                merged.merge(p);
                any = true;
            }
        }
        any.then_some(merged)
    }
}

/// Executor self-metrics: how the run cache settled the planned keys,
/// and how much resident memory the sweep process peaked at. Promoted
/// into `BENCH_sweep.json` (schema v4) next to `self_profile`, and from
/// there into the `flight` history line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Keys decoded from already-published records.
    pub cache_hits: u64,
    /// Keys this process simulated (including torn-record recoveries).
    pub cache_misses: u64,
    /// Keys joined from a concurrent in-process single-flight.
    pub flight_waits: u64,
    /// High-water resident-set bytes (0 where procfs is absent).
    pub peak_rss_bytes: u64,
}

/// Accumulates a sweep's timings and writes `BENCH_sweep.json`: phase
/// and per-run wall-clock, per-run host self-profiles, figure-level
/// run summaries, executor self-metrics, plus the knob values
/// (`ATAC_JOBS`, `ATAC_CORES`, `ATAC_BENCHES`), so successive changes
/// to the simulator or executor leave a comparable perf trajectory
/// behind. Schema `atac-bench-sweep-v4` (v1 lacked `summaries` and
/// profiles, v2 lacked the per-run `netprof` network breakdowns, v3
/// lacked the `executor` block; readers treat unknown fields as
/// forward-compatible).
#[derive(Debug, Default)]
pub struct SweepLog {
    jobs: usize,
    phases: Vec<(String, f64)>,
    runs: Vec<RunTiming>,
    summaries: Vec<RunSummary>,
    executor: ExecutorStats,
    verify: Option<(String, bool)>,
}

impl SweepLog {
    /// A log for a sweep using `jobs` workers.
    pub fn new(jobs: usize) -> Self {
        SweepLog {
            jobs,
            ..Default::default()
        }
    }

    /// Record one named phase's wall-clock seconds.
    pub fn phase(&mut self, name: &str, secs: f64) {
        self.phases.push((name.to_string(), secs));
    }

    /// Copy a report's per-run timings, summaries, and executor
    /// self-metrics into the log.
    // audit: order-stable — u64 outcome counts (exact, associative
    // addition) and a max-fold of the RSS high-water mark.
    pub fn absorb(&mut self, report: &SweepReport) {
        self.runs.extend(report.runs.iter().cloned());
        self.summaries.extend(report.summaries.iter().cloned());
        let stats = report.executor_stats();
        self.executor.cache_hits += stats.cache_hits;
        self.executor.cache_misses += stats.cache_misses;
        self.executor.flight_waits += stats.flight_waits;
        self.executor.peak_rss_bytes = self.executor.peak_rss_bytes.max(stats.peak_rss_bytes);
    }

    /// Record the serial re-check outcome for one key.
    pub fn set_verify(&mut self, key: &str, identical: bool) {
        self.verify = Some((key.to_string(), identical));
    }

    /// Render the log as a self-describing JSON document.
    pub fn to_json(&self) -> String {
        let cores = std::env::var("ATAC_CORES").unwrap_or_else(|_| "1024".into());
        let benches = std::env::var("ATAC_BENCHES").unwrap_or_else(|_| "all".into());
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"atac-bench-sweep-v4\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"cores\": \"{}\",\n", escape(&cores)));
        out.push_str(&format!("  \"benches\": \"{}\",\n", escape(&benches)));
        out.push_str("  \"phases\": {\n");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            let comma = if i + 1 == self.phases.len() { "" } else { "," };
            out.push_str(&format!("    \"{}\": {secs:?}{comma}\n", escape(name)));
        }
        out.push_str("  },\n");
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"key\": \"{}\", \"secs\": {:?}, \"source\": \"{}\"",
                escape(&run.key),
                run.secs,
                run.source.name()
            ));
            if let Some(p) = &run.profile {
                out.push_str(&format!(", \"profile\": {}", profile_json(p)));
            }
            if let Some(np) = &run.netprof {
                out.push_str(&format!(", \"netprof\": {}", netprof_json(np)));
            }
            out.push_str(&format!("}}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summaries\": [\n");
        for (i, s) in self.summaries.iter().enumerate() {
            let comma = if i + 1 == self.summaries.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    {}{comma}\n", summary_json(s)));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"executor\": {}",
            executor_json(&self.executor)
        ));
        if let Some(total) = self.merged_profile() {
            out.push_str(&format!(",\n  \"self_profile\": {}", profile_json(&total)));
        }
        if let Some((key, identical)) = &self.verify {
            out.push_str(&format!(
                ",\n  \"verify\": {{\"key\": \"{}\", \"identical\": {identical}}}",
                escape(key)
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// All logged runs' host self-profiles merged, if any carried one.
    pub fn merged_profile(&self) -> Option<HostProfile> {
        let mut merged = HostProfile::zero();
        let mut any = false;
        for run in &self.runs {
            if let Some(p) = &run.profile {
                merged.merge(p);
                any = true;
            }
        }
        any.then_some(merged)
    }

    /// All logged runs' network microscope profiles merged, if any
    /// carried one. All-integer counters merged in logged (run-key)
    /// order, so the aggregate is independent of worker scheduling.
    pub fn merged_netprof(&self) -> Option<NetProfile> {
        let mut merged = NetProfile::new();
        let mut any = false;
        for run in &self.runs {
            if let Some(np) = &run.netprof {
                merged.merge(np);
                any = true;
            }
        }
        any.then_some(merged)
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping (keys and env values are plain ASCII,
/// but stay safe against quotes and backslashes).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One host self-profile as a JSON object: per-phase seconds (nonzero
/// phases only, stable [`HostPhase::name`] keys), total and coverage.
/// When the run carried network sub-phase laps (`ATAC_NETPROF`), a
/// `net_phases` object (stable [`atac::trace::NetSubPhase::name`] keys)
/// and the `net_coverage` fraction of the network phase they tile ride
/// along.
fn profile_json(p: &HostProfile) -> String {
    let phases: Vec<String> = HostPhase::ALL
        .into_iter()
        .filter(|ph| p.phase_secs(*ph) > 0.0)
        .map(|ph| format!("\"{}\": {:?}", ph.name(), p.phase_secs(ph)))
        .collect();
    let mut net = String::new();
    if p.net_tracked_secs() > 0.0 {
        let subs: Vec<String> = p
            .net_phases()
            .filter(|(_, secs)| *secs > 0.0)
            .map(|(sub, secs)| format!("\"{}\": {:?}", sub.name(), secs))
            .collect();
        net = format!(
            ", \"net_coverage\": {:?}, \"net_phases\": {{{}}}",
            p.net_sub_coverage(),
            subs.join(", ")
        );
    }
    format!(
        "{{\"total_secs\": {:?}, \"coverage\": {:?}, \"phases\": {{{}}}{net}}}",
        p.total_secs,
        p.coverage(),
        phases.join(", ")
    )
}

/// One network microscope profile as a JSON object. Every value is an
/// integer counter, so the document round-trips exactly and merging
/// (report-side, in run-key order) is order-independent. Per-router
/// counters are flat arrays `[flits_routed, credit_stall_cycles,
/// active_cycles, occupancy_sum, hist0..hist5]` indexed by router id;
/// `links` is indexed `router * 4 + direction`; the hub arrays are
/// indexed by cluster. `run_hist` buckets bulk wormhole-run transfer
/// lengths (1, 2, 3–4, 5–8, 9–16, 17+ flits per grant) and
/// `bitset_grants`/`scalar_grants` split arbitration grants by which
/// arbiter path served them — together they show how much of the
/// flit traffic the packet-granular fast path is absorbing.
fn netprof_json(p: &NetProfile) -> String {
    let routers: Vec<String> = p
        .routers
        .iter()
        .map(|r| {
            let mut vals = vec![
                r.flits_routed,
                r.credit_stall_cycles,
                r.active_cycles,
                r.occupancy_sum,
            ];
            vals.extend(r.occupancy_hist);
            format!("[{}]", join_u64(&vals))
        })
        .collect();
    format!(
        "{{\"cycles\": {}, \"ticks\": {}, \"skipped\": {}, \"jumps\": {}, \
         \"wake_core\": {}, \"wake_mem\": {}, \"wake_net\": {}, \"epochs\": {}, \
         \"coalesced\": {}, \"max_epoch_span\": {}, \"run_hist\": [{}], \
         \"bitset_grants\": {}, \"scalar_grants\": {}, \"hub_unicast\": [{}], \
         \"hub_broadcast\": [{}], \"links\": [{}], \"routers\": [{}]}}",
        p.cycles,
        p.ticks_executed,
        p.cycles_skipped,
        p.skip_jumps,
        p.wake_core,
        p.wake_mem,
        p.wake_net,
        p.epochs_closed,
        p.coalesced_epochs,
        p.max_epoch_span,
        join_u64(&p.run_len_hist),
        p.bitset_grants,
        p.scalar_grants,
        join_u64(&p.hub_unicast_flits),
        join_u64(&p.hub_broadcast_flits),
        join_u64(&p.link_flits),
        routers.join(", ")
    )
}

fn join_u64(vals: &[u64]) -> String {
    let strs: Vec<String> = vals.iter().map(u64::to_string).collect();
    strs.join(", ")
}

/// The executor self-metrics block as a JSON object (schema v4). All
/// integer counters — round-trips exactly.
fn executor_json(e: &ExecutorStats) -> String {
    format!(
        "{{\"cache_hits\": {}, \"cache_misses\": {}, \"flight_waits\": {}, \
         \"peak_rss_bytes\": {}}}",
        e.cache_hits, e.cache_misses, e.flight_waits, e.peak_rss_bytes
    )
}

/// One run summary as a JSON object. Floats print via `{:?}` so they
/// round-trip exactly — the regression gate compares them bit-for-bit.
fn summary_json(s: &RunSummary) -> String {
    format!(
        "{{\"key\": \"{}\", \"bench\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
         \"ipc\": {:?}, \"runtime_s\": {:?}, \"energy_j\": {:?}, \"edp_js\": {:?}, \
         \"latency\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"count\": {}}}}}",
        escape(&s.key),
        escape(&s.bench),
        s.cycles,
        s.instructions,
        s.ipc,
        s.runtime.value(),
        s.energy.value(),
        s.edp.value(),
        s.latency_p50,
        s.latency_p95,
        s.latency_p99,
        s.latency_max,
        s.latency_count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_dedups_identical_run_keys() {
        let mut plan = RunPlan::new();
        let cfg = SimConfig::small();
        plan.add(cfg.clone(), Benchmark::Radix);
        plan.add(cfg.clone(), Benchmark::Radix);
        // The photonic scenario is energy-only; same run key.
        plan.add(
            SimConfig {
                scenario: PhotonicScenario::Conservative,
                ..cfg.clone()
            },
            Benchmark::Radix,
        );
        assert_eq!(plan.len(), 1);
        plan.add(cfg, Benchmark::Barnes);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let hits = AtomicUsize::new(0);
        let ticks = AtomicUsize::new(0);
        let tick = || {
            ticks.fetch_add(1, Ordering::Relaxed);
        };
        let result = std::panic::catch_unwind(|| {
            run_pool_workers(
                2,
                8,
                |_, slot| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    assert!(slot != 3, "injected failure");
                },
                Some(&tick),
            );
        });
        assert!(result.is_err(), "a panicking run must fail the sweep");
    }

    #[test]
    fn pool_covers_every_index_once() {
        let n = 64;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_pool_workers(
            5,
            n,
            |_, slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            },
            None,
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // Degenerate pools still work.
        run_pool_workers(0, 0, |_, _| unreachable!("no indices"), None);
        let one = AtomicUsize::new(0);
        run_pool_workers(
            16,
            1,
            |_, _| {
                one.fetch_add(1, Ordering::Relaxed);
            },
            None,
        );
        assert_eq!(one.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_pool_reports_worker_identity_and_monitors() {
        let n = 32;
        let seen: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let ticks = AtomicUsize::new(0);
        let tick = || {
            ticks.fetch_add(1, Ordering::Relaxed);
        };
        run_pool_workers(
            3,
            n,
            |w, slot| {
                assert!(w < 3, "worker index inside the pool");
                seen[slot].store(w, Ordering::Relaxed);
            },
            Some(&tick),
        );
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) < 3));
        assert!(
            ticks.load(Ordering::Relaxed) >= 1,
            "monitor runs at least the final tick"
        );
    }

    #[test]
    fn schedule_runs_longest_expected_first() {
        // Known costs descend; the unknown runs first; ties keep
        // declared order.
        let order = schedule_order(&[Some(1.0), Some(5.0), None, Some(3.0), Some(5.0)]);
        assert_eq!(order, vec![2, 1, 4, 3, 0]);
        assert_eq!(schedule_order(&[]), Vec::<usize>::new());
        // No cost model at all: declared order preserved.
        assert_eq!(schedule_order(&[None, None, None]), vec![0, 1, 2]);
    }

    #[test]
    fn eta_estimates_and_formats() {
        // 12 s of known work + 2 unknowns priced at 3 s, over 2 workers.
        assert_eq!(eta_secs(12.0, 2, Some(3.0), 2), Some(9.0));
        assert_eq!(eta_secs(8.0, 0, None, 4), Some(2.0));
        assert_eq!(eta_secs(0.0, 3, None, 4), None, "nothing to price with");
        assert_eq!(fmt_eta(None), "--");
        assert_eq!(fmt_eta(Some(4.2)), "5s");
        assert_eq!(fmt_eta(Some(89.0)), "89s");
        assert_eq!(fmt_eta(Some(150.0)), "2m30s");
    }

    #[test]
    fn jobs_parser_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs("-2"), None);
        assert_eq!(parse_jobs("many"), None);
    }

    #[test]
    fn sweep_log_renders_valid_shape() {
        use atac::trace::{NetSubPhase, RouterObs};

        let mut log = SweepLog::new(4);
        log.phase("warm", 1.5);
        log.phase("render", 0.25);
        let mut profile = HostProfile::zero();
        profile.secs[HostPhase::Replay.index()] = 1.0;
        profile.secs[HostPhase::Network.index()] = 0.5;
        profile.net_sub_secs[NetSubPhase::RouteCompute.index()] = 0.5;
        profile.total_secs = 1.25;
        let mut np = NetProfile::new();
        np.cycles = 10;
        np.ticks_executed = 6;
        np.cycles_skipped = 4;
        np.skip_jumps = 1;
        np.wake_core = 1;
        np.run_len_hist = [4, 2, 1, 0, 0, 0];
        np.bitset_grants = 7;
        np.scalar_grants = 1;
        np.hub_unicast_flits = vec![3];
        np.link_flits = vec![1, 0, 0, 0];
        np.routers = vec![RouterObs {
            flits_routed: 1,
            ..Default::default()
        }];
        log.runs.push(RunTiming {
            key: "8x8|atac[distance-15]|radix".into(),
            secs: 1.25,
            source: RunSource::Simulated,
            profile: Some(profile),
            netprof: Some(np),
        });
        log.set_verify("8x8|atac[distance-15]|radix", true);
        let json = log.to_json();
        assert!(json.contains("\"schema\": \"atac-bench-sweep-v4\""));
        assert!(json.contains(
            "\"executor\": {\"cache_hits\": 0, \"cache_misses\": 0, \"flight_waits\": 0, \
             \"peak_rss_bytes\": 0}"
        ));
        assert!(json.contains("\"replay\": 1.0"));
        assert!(json.contains("\"self_profile\""));
        assert!(json.contains("\"summaries\""));
        assert!(json.contains("\"jobs\": 4"));
        assert!(json.contains("\"warm\": 1.5"));
        assert!(json.contains("\"source\": \"simulated\""));
        assert!(json.contains("\"identical\": true"));
        // The network microscope rides along: sub-phase attribution in
        // the profile, integer counters in the netprof object.
        assert!(json.contains("\"net_coverage\": 1.0"));
        assert!(json.contains("\"route_compute\": 0.5"));
        assert!(json.contains("\"netprof\": {\"cycles\": 10, \"ticks\": 6, \"skipped\": 4"));
        // Wormhole fast-path counters ride along in the netprof block:
        // the run-length histogram and the arbitration grant split.
        assert!(json.contains("\"run_hist\": [4, 2, 1, 0, 0, 0]"));
        assert!(json.contains("\"bitset_grants\": 7, \"scalar_grants\": 1"));
        assert!(json.contains("\"hub_unicast\": [3]"));
        assert!(json.contains("\"links\": [1, 0, 0, 0]"));
        assert!(json.contains("\"routers\": [[1, 0, 0, 0, 0, 0, 0, 0, 0, 0]]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        // The merged aggregate reuses the same order-independent merge.
        let merged = log.merged_netprof().expect("one run carried a netprof");
        assert_eq!(merged.cycles, 10);
        assert_eq!(merged.total_flits_routed(), 1);
    }
}
