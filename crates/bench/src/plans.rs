//! Run plans for the paper's figures and tables.
//!
//! Each function declares the `(config, benchmark)` run keys one figure
//! binary consumes, so the binary can warm the cache in parallel with
//! [`RunPlan::execute`] before rendering, and `reproduce` can union the
//! whole suite into one pool-sized sweep. Plans only carry
//! *timing-relevant* keys — energy-only knobs (photonic scenario,
//! receive net, waveguide loss) re-integrate from the same cached
//! counters, which is why e.g. Fig. 8's six columns need only three runs
//! per benchmark.

use atac::prelude::*;

use crate::executor::RunPlan;
use crate::{base_config, benchmarks};

/// Tables I–IV print model parameters only; nothing to simulate.
pub fn tables() -> RunPlan {
    RunPlan::new()
}

/// The three-architecture runtime comparison shared by Figs. 4, 7 and
/// 17: ATAC+, EMesh-BCast and EMesh-Pure over the benchmark set.
pub fn runtime_suite() -> RunPlan {
    let mut plan = RunPlan::new();
    for b in benchmarks() {
        for arch in [Arch::atac_plus(), Arch::EMeshBcast, Arch::EMeshPure] {
            plan.add(
                SimConfig {
                    arch,
                    ..base_config()
                },
                b,
            );
        }
    }
    plan
}

/// Fig. 8 (normalized EDP): the four photonic scenarios share one ATAC+
/// timing run per benchmark; the meshes add two more.
pub fn fig08() -> RunPlan {
    runtime_suite()
}

/// Fig. 9 (waveguide-loss sensitivity): the loss sweep is energy-only,
/// so each benchmark needs just the ATAC+ run and the EMesh-BCast
/// reference.
pub fn fig09() -> RunPlan {
    let mut plan = RunPlan::new();
    for b in benchmarks() {
        plan.add(base_config(), b);
        plan.add(
            SimConfig {
                arch: Arch::EMeshBcast,
                ..base_config()
            },
            b,
        );
    }
    plan
}

/// Table V (SWMR utilization): the default configuration per benchmark.
pub fn table05() -> RunPlan {
    let mut plan = RunPlan::new();
    for b in benchmarks() {
        plan.add(base_config(), b);
    }
    plan
}

/// The ablation studies: buffer-depth sweep on radix/ocean_non_contig
/// and the §IV-C-1 sequence-machinery incidence per routing policy on
/// barnes/dynamic_graph (fixed benchmarks — not `ATAC_BENCHES`-scoped,
/// matching the binary).
pub fn ablation() -> RunPlan {
    let mut plan = RunPlan::new();
    for b in [Benchmark::Radix, Benchmark::OceanNonContig] {
        for depth in [2usize, 4, 8] {
            plan.add(
                SimConfig {
                    buffer_depth: depth,
                    ..base_config()
                },
                b,
            );
        }
    }
    for policy in [
        RoutingPolicy::Cluster,
        RoutingPolicy::Distance(15),
        RoutingPolicy::Distance(35),
    ] {
        for b in [Benchmark::Barnes, Benchmark::DynamicGraph] {
            plan.add(
                SimConfig {
                    arch: Arch::Atac(policy, ReceiveNet::StarNet),
                    ..base_config()
                },
                b,
            );
        }
    }
    plan
}

/// Paper-scale smoke (the `scale_smoke` binary): the three-architecture
/// runtime comparison on one benchmark at the ambient `ATAC_CORES` size
/// — the opt-in 32×32 CI job runs it at the paper's 1024 cores, where
/// the full suite would blow the runner's wall-clock budget. One
/// benchmark keeps the job inside a predictable time box while still
/// exercising every fabric (ONet hub path included) at scale.
pub fn fig_scale() -> RunPlan {
    let mut plan = RunPlan::new();
    for arch in [Arch::atac_plus(), Arch::EMeshBcast, Arch::EMeshPure] {
        plan.add(
            SimConfig {
                arch,
                ..base_config()
            },
            Benchmark::Radix,
        );
    }
    plan
}

/// Every run the full figure suite needs, deduplicated: the union the
/// `reproduce` driver warms before rendering anything.
pub fn full_suite() -> RunPlan {
    let mut plan = runtime_suite(); // figs 4, 7, 8, 17
    plan.merge(fig09());
    plan.merge(table05()); // figs 5, 6, table V
    plan.merge(ablation());
    for b in benchmarks() {
        // Fig. 11: flit-width sweep.
        for flit_width in [16u32, 32, 64, 128, 256] {
            plan.add(
                SimConfig {
                    flit_width,
                    ..base_config()
                },
                b,
            );
        }
        // Figs. 12 + 13: routing policies (BNet vs StarNet is
        // energy-only, so fig. 12 shares the Cluster key).
        for policy in [
            RoutingPolicy::Cluster,
            RoutingPolicy::Distance(5),
            RoutingPolicy::Distance(15),
            RoutingPolicy::Distance(25),
            RoutingPolicy::Distance(35),
        ] {
            plan.add(
                SimConfig {
                    arch: Arch::Atac(policy, ReceiveNet::StarNet),
                    ..base_config()
                },
                b,
            );
        }
        // Fig. 14: Dir4B on both fabrics (ACKwise4 already covered).
        for arch in [Arch::atac_plus(), Arch::EMeshBcast] {
            plan.add(
                SimConfig {
                    arch,
                    protocol: ProtocolKind::DirB { k: 4 },
                    ..base_config()
                },
                b,
            );
        }
        // Figs. 15 + 16: ACKwise_k sharer sweep.
        for k in [4usize, 8, 16, 32, 1024] {
            plan.add(
                SimConfig {
                    protocol: ProtocolKind::AckWise { k },
                    ..base_config()
                },
                b,
            );
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_plan_is_empty() {
        assert!(tables().is_empty());
    }

    #[test]
    fn ablation_covers_depths_and_policies() {
        // 2 benches × 3 depths + 3 policies × 2 benches, no overlap
        // (depth 4 = base ATAC+ key differs from the policy keys).
        assert_eq!(ablation().len(), 12);
    }

    #[test]
    fn fig_scale_covers_all_three_architectures_once() {
        let plan = fig_scale();
        assert_eq!(plan.len(), 3);
        let keys: std::collections::BTreeSet<String> = plan
            .entries()
            .iter()
            .map(|(cfg, b)| crate::run_key(cfg, *b))
            .collect();
        assert_eq!(keys.len(), 3, "one key per architecture, deduped");
        assert!(keys.iter().all(|k| k.ends_with("|radix")));
    }

    #[test]
    fn full_suite_subsumes_every_figure_plan() {
        let full = full_suite();
        let full_keys: std::collections::BTreeSet<String> = full
            .entries()
            .iter()
            .map(|(cfg, b)| crate::run_key(cfg, *b))
            .collect();
        for plan in [fig08(), fig09(), table05(), ablation(), runtime_suite()] {
            for (cfg, b) in plan.entries() {
                assert!(full_keys.contains(&crate::run_key(cfg, *b)));
            }
        }
        assert_eq!(full.len(), full_keys.len(), "plan entries stay deduped");
    }
}
