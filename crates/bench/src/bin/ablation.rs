//! Ablation studies of the reproduction's own design choices (beyond the
//! paper's figures):
//!
//! 1. **Router buffer depth** — the paper fixes 4-flit buffers; how
//!    sensitive is runtime to that choice?
//! 2. **Technology node** — per-event energies at the projected 11 nm
//!    tri-gate node vs a 45 nm bulk node (validates that the
//!    standard-cell-derived models scale the right way).
//! 3. **Sequence-number machinery incidence** — how often does the
//!    §IV-C-1 reordering logic actually fire per routing policy? (The
//!    mechanism only earns its storage when broadcast/unicast routes
//!    split.)

use atac::net::{ReceiveNet, RoutingPolicy};
use atac::phys::electrical::{LinkModel, RouterModel, RouterParams};
use atac::phys::stdcell::StdCellLib;
use atac::phys::tech::TechNode;
use atac::prelude::*;
use atac_bench::{base_config, header, run_cached, Table};

fn main() {
    // Warm every needed run (both ablation sweeps) in parallel before
    // rendering.
    atac_bench::plans::ablation().execute();

    // ------------------------------------------------------------------
    header(
        "Ablation 1",
        "router input-buffer depth (runtime normalized to depth 4)",
    );
    let benches = [Benchmark::Radix, Benchmark::OceanNonContig];
    let depths = [2usize, 4, 8];
    let mut t = Table::new(&["depth 2", "depth 4", "depth 8"]).precision(3);
    for b in benches {
        let cycles: Vec<f64> = depths
            .iter()
            .map(|&d| {
                run_cached(
                    &SimConfig {
                        buffer_depth: d,
                        ..base_config()
                    },
                    b,
                )
                .cycles as f64
            })
            .collect();
        t.row(b.name(), cycles.iter().map(|c| c / cycles[1]).collect());
    }
    t.print();

    // ------------------------------------------------------------------
    header(
        "Ablation 2",
        "per-event energies: 11 nm tri-gate vs 45 nm bulk",
    );
    for node in [TechNode::tri_gate_11nm(), TechNode::bulk_45nm()] {
        let name = node.name;
        let lib = StdCellLib::new(node);
        let r = RouterModel::new(&lib, RouterParams::mesh_default());
        let l = LinkModel::mesh_hop(&lib, 64);
        println!(
            "  {:20} router traversal {:7.1} fJ/flit | link hop {:7.1} fJ/flit | router leakage {:7.2} uW",
            name,
            r.traversal_energy().value() * 1e15,
            l.flit_energy.value() * 1e15,
            r.leakage.value() * 1e6,
        );
    }

    // ------------------------------------------------------------------
    header(
        "Ablation 3",
        "§IV-C-1 sequence machinery incidence per routing policy (events per 10k coherence unicasts)",
    );
    let mut t = Table::new(&["held unicasts", "buffered bcasts", "stale drops"]).precision(2);
    for policy in [
        RoutingPolicy::Cluster,
        RoutingPolicy::Distance(15),
        RoutingPolicy::Distance(35),
    ] {
        let cfg = SimConfig {
            arch: Arch::Atac(policy, ReceiveNet::StarNet),
            ..base_config()
        };
        let mut held = 0u64;
        let mut buffered = 0u64;
        let mut dropped = 0u64;
        let mut unicasts = 0u64;
        for b in [Benchmark::Barnes, Benchmark::DynamicGraph] {
            let rec = run_cached(&cfg, b);
            held += rec.coh.seq_buffered_unicasts;
            buffered += rec.coh.seq_buffered_broadcasts;
            dropped += rec.coh.seq_dropped_broadcasts;
            unicasts += rec.net.unicast_messages;
        }
        let per10k = 10_000.0 / unicasts.max(1) as f64;
        t.row(
            policy.name(),
            vec![
                held as f64 * per10k,
                buffered as f64 * per10k,
                dropped as f64 * per10k,
            ],
        );
    }
    t.print();
    println!(
        "(The mechanism fires wherever broadcasts and unicasts take different\n\
         routes; its 16-bit-per-packet cost rides free in the flit padding — §IV-C.)"
    );
}
