//! Paper-scale smoke run: execute the [`atac_bench::plans::fig_scale`]
//! plan (three architectures × radix) at the ambient `ATAC_CORES` size
//! — the opt-in CI job sets the paper's 32×32 = 1024 cores — with the
//! network microscope attached, and check the skip-ahead *ledger
//! invariants* on every simulated run:
//!
//! * engine granularity: `ticks_executed + cycles_skipped == cycles`;
//! * router granularity: `router_ticks + router_cycles_skipped ==
//!   observed routers × cycles` (with `router_ticks` never exceeding
//!   the product — a router double-ticked in one cycle would overshoot
//!   before the saturating ledger could hide it).
//!
//! The run always simulates into a scratch cache (scale results would
//! poison the figure-suite cache and vice versa), writes its timings
//! via [`SweepLog`] to `BENCH_scale.json`, and — when
//! `ATAC_SCALE_BUDGET_SECS` is set — fails if the whole pass exceeds
//! that wall-clock budget, so the CI job cannot silently grow without
//! someone raising the box.

use std::path::Path;
use std::time::Instant;

use atac_bench::{plans, run_key, ExecOptions, RunCache, SweepLog};

fn main() {
    // The ledger checks need the cycle-domain observer on every run.
    // Fail fast if the caller disabled it rather than silently checking
    // nothing.
    if std::env::var("ATAC_NETPROF").as_deref() != Ok("1") {
        std::env::set_var("ATAC_NETPROF", "1");
    }
    let budget: Option<f64> = std::env::var("ATAC_SCALE_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok());
    let jobs = atac_bench::jobs_from_env();
    let plan = plans::fig_scale();
    let cores = atac_bench::base_config().topo.cores();
    eprintln!(
        "[scale_smoke] {} run key(s) at {} cores, {} worker(s)",
        plan.len(),
        cores,
        jobs
    );

    let t_total = Instant::now();
    let mut log = SweepLog::new(jobs);
    let scratch = RunCache::at(format!("target/atac-scale-{}", std::process::id()));
    let opts = ExecOptions::from_env();
    let t = Instant::now();
    let report = plan.execute_with(&scratch, jobs, &opts);
    log.phase("scale", t.elapsed().as_secs_f64());
    log.absorb(&report);
    let _ = std::fs::remove_dir_all(scratch.dir());

    let mut checked = 0usize;
    for run in &report.runs {
        let Some(np) = &run.netprof else {
            panic!("`{}` simulated without a network profile", run.key);
        };
        assert_eq!(
            np.ticks_executed + np.cycles_skipped,
            np.cycles,
            "`{}`: engine skip ledger does not reconcile",
            run.key
        );
        let router_cycles = np.routers.len() as u64 * np.cycles;
        assert!(
            np.router_ticks() <= router_cycles,
            "`{}`: router_ticks {} exceeds routers × cycles {}",
            run.key,
            np.router_ticks(),
            router_cycles
        );
        assert_eq!(
            np.router_ticks() + np.router_cycles_skipped(),
            router_cycles,
            "`{}`: router skip ledger does not reconcile",
            run.key
        );
        eprintln!(
            "[scale_smoke] {}: {} cycles, {:.1}% of router-cycles skipped, {:.1}s",
            run.key,
            np.cycles,
            100.0 * np.router_skip_fraction(),
            run.secs
        );
        checked += 1;
    }
    assert_eq!(
        checked,
        plan.len(),
        "every planned key must simulate (scratch cache starts empty)"
    );
    for (cfg, bench) in plan.entries() {
        assert!(
            report.runs.iter().any(|r| r.key == run_key(cfg, *bench)),
            "planned key `{}` missing from the report",
            run_key(cfg, *bench)
        );
    }

    let wall = t_total.elapsed().as_secs_f64();
    log.phase("total", wall);
    let out = Path::new("BENCH_scale.json");
    log.write(out)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    eprintln!("[scale_smoke] wrote {} ({wall:.1}s wall)", out.display());
    if let Some(b) = budget {
        assert!(
            wall <= b,
            "scale smoke took {wall:.1}s, over the {b:.0}s budget \
             (ATAC_SCALE_BUDGET_SECS)"
        );
    }
}
