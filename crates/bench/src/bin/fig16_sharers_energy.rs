//! Fig. 16: ATAC+ energy breakdown as the ACKwise sharer count varies
//! from 4 to 1024, normalized to k = 4.
//!
//! Paper shape target: ~2× energy growth from k=4 to k=1024, driven by
//! the directory cache (whose entry width saturates at a full map).

use atac::coherence::ProtocolKind;
use atac::prelude::*;
use atac_bench::{
    average_maps, base_config, benchmarks, fig7_categories, header, run_cached, Table,
};

fn main() {
    header(
        "Fig. 16",
        "energy breakdown vs ACKwise sharers (benchmark average, normalized to k=4)",
    );
    let ks = [4usize, 8, 16, 32, 1024];
    let mut per_k = Vec::new();
    for &k in &ks {
        let cfg_for = |k| SimConfig {
            protocol: ProtocolKind::AckWise { k },
            ..base_config()
        };
        let maps: Vec<_> = benchmarks()
            .into_iter()
            .map(|b| {
                let cfg = cfg_for(k);
                fig7_categories(&run_cached(&cfg, b).energy(&cfg))
            })
            .collect();
        per_k.push(average_maps(&maps));
    }
    let base_total: f64 = per_k[0].values().sum();
    let categories: Vec<String> = per_k[0].keys().cloned().collect();
    let mut table = Table::new(
        &categories
            .iter()
            .map(String::as_str)
            .chain(std::iter::once("TOTAL"))
            .collect::<Vec<_>>(),
    )
    .precision(3);
    for (k, m) in ks.iter().zip(&per_k) {
        let mut row: Vec<f64> = categories.iter().map(|c| m[c] / base_total).collect();
        row.push(m.values().sum::<f64>() / base_total);
        table.row(format!("k={k}"), row);
    }
    table.print();
}
