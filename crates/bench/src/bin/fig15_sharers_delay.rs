//! Fig. 15: ATAC+ completion time as the number of ACKwise hardware
//! sharers varies over {4, 8, 16, 32, 1024}, normalized to k = 4.
//!
//! Paper shape target: little variation and no monotonic trend — the
//! broadcast-vs-multiple-unicast contention effects cancel.

use atac::coherence::ProtocolKind;
use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header(
        "Fig. 15",
        "completion time vs ACKwise sharers (normalized to k=4)",
    );
    let ks = [4usize, 8, 16, 32, 1024];
    let cols: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    let mut table = Table::new(&cols.iter().map(String::as_str).collect::<Vec<_>>()).precision(3);
    for b in benchmarks() {
        let cycles: Vec<f64> = ks
            .iter()
            .map(|&k| {
                run_cached(
                    &SimConfig {
                        protocol: ProtocolKind::AckWise { k },
                        ..base_config()
                    },
                    b,
                )
                .cycles as f64
            })
            .collect();
        table.row(b.name(), cycles.iter().map(|c| c / cycles[0]).collect());
    }
    table.print();
}
