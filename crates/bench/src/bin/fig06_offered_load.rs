//! Fig. 6: offered network load in flits/cycle/core per application
//! (ATAC+ runs).
//!
//! Paper shape targets: radix and the oceans highest; lu_contig lowest.

use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header("Fig. 6", "offered network load (flits/cycle/core)");
    let cores = atac_bench::topology().cores();
    let mut table = Table::new(&["flits/cycle/core"]).precision(4);
    for b in benchmarks() {
        let rec = run_cached(&base_config(), b);
        table.row(b.name(), vec![rec.net.offered_load(cores)]);
    }
    table.print();
}
