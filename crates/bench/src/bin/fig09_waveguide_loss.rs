//! Fig. 9: sensitivity of ATAC+ network+cache energy to waveguide loss,
//! swept from 0.2 to 4 dB/cm over the ~8 cm ONet serpentine (Table II's
//! default is 0.2 dB/cm), normalized to EMesh-BCast. The waveguide
//! non-linearity limit (30 mW) clamps the laser blow-up at the high end.
//!
//! Paper shape target: ATAC+ stays below EMesh-BCast up to ~2 dB and
//! loses clearly at 4 dB.

use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    // Warm every needed run in parallel before rendering (the loss
    // sweep itself is energy-only re-integration of cached counters).
    atac_bench::plans::fig09().execute();
    header(
        "Fig. 9",
        "energy vs waveguide loss, normalized to EMesh-BCast",
    );
    // dB/cm sweep points; the model takes the total worst-case path loss.
    let losses_per_cm = [0.2, 0.5, 1.0, 2.0, 4.0];
    let length_cm = atac::phys::calib::ONET_WAVEGUIDE_LENGTH_M * 100.0;
    let losses: Vec<f64> = losses_per_cm.iter().map(|l| l * length_cm).collect();
    let benches = benchmarks();

    // EMesh-BCast reference energies per benchmark.
    let mesh_cfg = SimConfig {
        arch: Arch::EMeshBcast,
        ..base_config()
    };
    let mesh_e: Vec<f64> = benches
        .iter()
        .map(|&b| {
            run_cached(&mesh_cfg, b)
                .energy(&mesh_cfg)
                .network_and_caches()
                .value()
        })
        .collect();

    let cols: Vec<String> = losses_per_cm.iter().map(|l| format!("{l} dB/cm")).collect();
    let mut table = Table::new(&cols.iter().map(String::as_str).collect::<Vec<_>>()).precision(3);
    let mut avg = vec![0.0; losses.len()];
    for (bi, &b) in benches.iter().enumerate() {
        let mut row = Vec::new();
        for (li, &loss) in losses.iter().enumerate() {
            let loss: f64 = loss;
            let cfg = SimConfig {
                waveguide_loss_db: Some(loss),
                ..base_config()
            };
            let e = run_cached(&cfg, b)
                .energy(&cfg)
                .network_and_caches()
                .value();
            let norm = e / mesh_e[bi];
            avg[li] += norm / benches.len() as f64;
            row.push(norm);
        }
        table.row(b.name(), row);
    }
    table.row("AVERAGE", avg);
    table.print();
}
