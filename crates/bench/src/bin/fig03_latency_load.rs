//! Fig. 3: average packet latency vs offered load under uniform-random
//! unicast traffic with 0.1 % broadcasts, for the Cluster and Distance-i
//! routing policies on the ATAC+ network.
//!
//! Paper shape targets: Cluster/Distance-5 best at low load; saturation
//! throughput maximized near Distance-25; Distance-All saturates first.

use atac::net::harness::{run_synthetic, SyntheticConfig};
use atac::net::{AtacNet, ReceiveNet, RoutingPolicy};

fn main() {
    let topo = atac_bench::topology();
    let policies = [
        RoutingPolicy::Cluster,
        RoutingPolicy::Distance(5),
        RoutingPolicy::Distance(15),
        RoutingPolicy::Distance(25),
        RoutingPolicy::Distance(35),
        RoutingPolicy::DistanceAll,
    ];
    let loads = [0.01, 0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.20];

    atac_bench::header(
        "Fig. 3",
        "latency (cycles) vs offered load (flits/cycle/core), uniform random + 0.1% broadcast",
    );
    let cols: Vec<String> = loads.iter().map(|l| format!("{l:.2}")).collect();
    let mut table =
        atac_bench::Table::new(&cols.iter().map(String::as_str).collect::<Vec<_>>()).precision(1);
    for policy in policies {
        let mut row = Vec::new();
        for &load in &loads {
            let mut net = AtacNet::new(topo, 64, 4, policy, ReceiveNet::StarNet);
            let cfg = SyntheticConfig {
                load,
                warmup: 500,
                measure: 2_000,
                drain: 30_000,
                ..Default::default()
            };
            let r = run_synthetic(&mut net, &cfg);
            // report saturated points as a capped latency, as plots do
            row.push(if r.saturated { 999.0 } else { r.avg_latency });
        }
        table.row(policy.name(), row);
    }
    table.print();
    println!("(999.0 = saturated: measured packets undelivered at the drain limit)");
}
