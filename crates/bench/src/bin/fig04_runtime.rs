//! Fig. 4: application runtime on ATAC+, EMesh-BCast and EMesh-Pure
//! (normalized to ATAC+).
//!
//! Paper shape targets: ATAC+ fastest everywhere; EMesh-Pure
//! catastrophic on broadcast-heavy apps (dynamic_graph, radix, barnes,
//! fmm).

use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header("Fig. 4", "application runtime, normalized to ATAC+");
    let archs = [Arch::atac_plus(), Arch::EMeshBcast, Arch::EMeshPure];
    let mut table = Table::new(&["ATAC+", "EMesh-BCast", "EMesh-Pure"]).precision(2);
    for b in benchmarks() {
        let cycles: Vec<f64> = archs
            .iter()
            .map(|&arch| {
                run_cached(
                    &SimConfig {
                        arch,
                        ..base_config()
                    },
                    b,
                )
                .cycles as f64
            })
            .collect();
        table.row(b.name(), cycles.iter().map(|c| c / cycles[0]).collect());
    }
    table.print();
}
