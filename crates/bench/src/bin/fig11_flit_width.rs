//! Fig. 11: ATAC+ application runtime as the flit width is varied from
//! 16 to 256 bits (normalized to 64 bits), plus the optical-area cost
//! that motivates the paper's choice of 64 bits.
//!
//! Paper shape targets: ~50 % improvement 16→64 bits, ~10 % 64→256;
//! optical area ≈ 160 mm² at 256 bits.

use atac::phys::photonics::{OpticalLinkModel, PhotonicParams};
use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header("Fig. 11", "runtime vs flit width (normalized to 64 bits)");
    let widths = [16u32, 32, 64, 128, 256];
    let cols: Vec<String> = widths.iter().map(|w| format!("{w}b")).collect();
    let mut table = Table::new(&cols.iter().map(String::as_str).collect::<Vec<_>>()).precision(2);
    let mut avg = vec![0.0; widths.len()];
    let benches = benchmarks();
    for &b in &benches {
        let cycles: Vec<f64> = widths
            .iter()
            .map(|&wdt| {
                run_cached(
                    &SimConfig {
                        flit_width: wdt,
                        ..base_config()
                    },
                    b,
                )
                .cycles as f64
            })
            .collect();
        let base = cycles[2]; // 64-bit
        let row: Vec<f64> = cycles.iter().map(|c| c / base).collect();
        for (i, v) in row.iter().enumerate() {
            avg[i] += v / benches.len() as f64;
        }
        table.row(b.name(), row);
    }
    table.row("AVERAGE", avg);
    table.print();

    println!("\nOptical area by flit width (the reason the paper picks 64 bits):");
    for &wdt in &widths {
        let o = OpticalLinkModel::new(
            PhotonicParams::default(),
            PhotonicScenario::Practical,
            atac_bench::topology().clusters(),
            wdt as usize,
        );
        println!(
            "  {:4} bits: {:6.1} mm^2",
            wdt,
            o.optical_area.value() * 1e6
        );
    }

    // §V-D's closing argument: SerDes could shrink the 256-bit optics,
    // but the paper rejects it for power/latency. Quantified:
    let lib = atac::phys::stdcell::StdCellLib::tri_gate_11nm();
    let (area_saved, extra_e, extra_lat) =
        atac::phys::serdes::serdes_tradeoff(&lib, atac_bench::topology().clusters(), 256, 4);
    println!(
        "\nSerDes check (256-bit flit, 4:1): saves {area_saved:.0} mm^2 of optics but adds \
         {:.1} pJ/flit and {extra_lat} cycles/flit — the overhead the paper declines (§V-D).",
        extra_e.value() * 1e12
    );
}
