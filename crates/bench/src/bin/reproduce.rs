//! Regenerate every table and figure in order. Completed simulations are
//! cached under `target/atac-results/`, so re-runs are cheap and the
//! individual `figNN_*` binaries reuse the same runs.
//!
//! Environment knobs: `ATAC_CORES=64|256|1024` (default 1024),
//! `ATAC_BENCHES=radix,barnes,...` (default all eight).

use std::process::Command;

fn main() {
    let bins = [
        "tables",
        "fig03_latency_load",
        "fig04_runtime",
        "fig05_traffic_mix",
        "fig06_offered_load",
        "fig07_energy_breakdown",
        "fig08_edp",
        "fig09_waveguide_loss",
        "fig10_area",
        "fig11_flit_width",
        "fig12_bnet_starnet",
        "fig13_routing_edp",
        "fig14_protocol_edp",
        "fig15_sharers_delay",
        "fig16_sharers_energy",
        "fig17_core_power",
        "table05_swmr",
        "ablation",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
