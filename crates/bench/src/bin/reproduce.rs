//! Regenerate every table and figure of the paper, in two phases:
//!
//! 1. **Warm** — the union of every figure's run plan
//!    ([`atac_bench::plans::full_suite`]) executes on the parallel sweep
//!    pool (`ATAC_JOBS` workers), filling `target/atac-results/` with
//!    every record the suite needs. Runs are independent and
//!    deterministic, so cross-run parallelism changes wall-clock only.
//! 2. **Render** — the individual `figNN_*` binaries run serially in
//!    paper order; every record they ask for is already cached, so this
//!    phase is pure formatting.
//!
//! Wall-clock per phase and per simulated run key lands in
//! `BENCH_sweep.json` (schema `atac-bench-sweep-v4`, which carries
//! per-key figure-level summaries, host self-profiles, and the
//! executor's own cache/RSS self-metrics) in the working directory.
//! `atac-report` (crates/report) records these sweeps into the
//! append-only `BENCH_history.jsonl` registry and gates new runs
//! against it, giving later PRs a perf trajectory to regress against.
//!
//! Environment knobs: `ATAC_JOBS=<n>` (default: available parallelism),
//! `ATAC_CORES=64|256|1024` (default 1024),
//! `ATAC_BENCHES=radix,barnes,...` (default all eight),
//! `ATAC_VERIFY=1` to re-simulate one key serially into a scratch cache
//! and fail if its bytes differ from the parallel sweep's record (the
//! determinism contract, checked end to end in CI), and `ATAC_FLIGHT=1`
//! to journal the warm phase's executor telemetry (worker spans, cache
//! outcomes, queue depth, RSS) to `BENCH_flight.jsonl` — override the
//! path with `--flight-out <path>` (which also implies `ATAC_FLIGHT=1`).
//! The warm phase also schedules missing keys longest-expected-first
//! from committed history and, on a TTY, renders a live progress line
//! with an ETA (`ATAC_PROGRESS` forces it on/off).

use std::path::Path;
use std::process::Command;
use std::time::Instant;

use atac_bench::{executor, plans, run_key, runjson, ExecOptions, RunCache, SweepLog};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flight_out = args.iter().position(|a| a == "--flight-out").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| panic!("--flight-out needs a path argument"))
    });
    let jobs = atac_bench::jobs_from_env();
    let mut log = SweepLog::new(jobs);
    let t_total = Instant::now();

    // Phase 1: warm the run cache in parallel.
    let plan = plans::full_suite();
    eprintln!(
        "[reproduce] warming {} run key(s) with {jobs} worker(s)",
        plan.len()
    );
    let t = Instant::now();
    let mut opts = ExecOptions::from_env();
    if flight_out.is_some() {
        opts.flight = true;
    }
    let report = plan.execute_with(&RunCache::from_env(), jobs, &opts);
    log.phase("warm", t.elapsed().as_secs_f64());
    log.absorb(&report);
    if let Some(journal) = &report.flight {
        let path = flight_out.unwrap_or_else(|| "BENCH_flight.jsonl".to_string());
        executor::write_flight(journal, Path::new(&path))
            .unwrap_or_else(|e| panic!("cannot write flight journal {path}: {e}"));
        eprintln!(
            "[reproduce] wrote {path} ({} events, {} runs)",
            journal.events.len(),
            journal.runs
        );
    }

    // Phase 2: render every figure in paper order from the warm cache.
    let bins = [
        "tables",
        "fig03_latency_load",
        "fig04_runtime",
        "fig05_traffic_mix",
        "fig06_offered_load",
        "fig07_energy_breakdown",
        "fig08_edp",
        "fig09_waveguide_loss",
        "fig10_area",
        "fig11_flit_width",
        "fig12_bnet_starnet",
        "fig13_routing_edp",
        "fig14_protocol_edp",
        "fig15_sharers_delay",
        "fig16_sharers_energy",
        "fig17_core_power",
        "table05_swmr",
        "ablation",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let t = Instant::now();
    for bin in bins {
        let t_bin = Instant::now();
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        log.phase(&format!("render:{bin}"), t_bin.elapsed().as_secs_f64());
    }
    log.phase("render", t.elapsed().as_secs_f64());

    // Optional determinism re-check: simulate the plan's first key
    // serially into a scratch cache and byte-compare the records.
    let verify_ok = if std::env::var("ATAC_VERIFY").as_deref() == Ok("1") {
        verify_one_key(&plan, &mut log)
    } else {
        true
    };

    log.phase("total", t_total.elapsed().as_secs_f64());
    let out = Path::new("BENCH_sweep.json");
    log.write(out)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    eprintln!("[reproduce] wrote {}", out.display());
    assert!(verify_ok, "parallel record differs from serial re-check");
}

/// Re-simulate the first planned key serially in a scratch cache and
/// compare the published bytes against the parallel sweep's record.
fn verify_one_key(plan: &atac_bench::RunPlan, log: &mut SweepLog) -> bool {
    let Some((cfg, bench)) = plan.entries().first() else {
        return true;
    };
    let key = run_key(cfg, *bench);
    eprintln!("[reproduce] verifying `{key}` against a serial re-run");
    let scratch = RunCache::at(format!("target/atac-verify-{}", std::process::id()));
    let (serial_rec, _) = scratch.get_or_run(cfg, *bench);
    let parallel_bytes = std::fs::read(RunCache::from_env().record_path(&key))
        .expect("parallel record must exist after the warm phase");
    let identical = parallel_bytes == runjson::encode(&serial_rec).into_bytes();
    let _ = std::fs::remove_dir_all(scratch.dir());
    log.set_verify(&key, identical);
    if identical {
        eprintln!("[reproduce] verify ok: byte-identical records");
    } else {
        eprintln!("[reproduce] VERIFY FAILED: `{key}` differs between parallel and serial runs");
    }
    identical
}
