//! Fig. 5: percentage of unicast vs broadcast traffic, measured at the
//! receiver, per application (ATAC+ runs).
//!
//! Paper shape targets: dynamic_graph/barnes/fmm broadcast-heavy;
//! lu_contig almost all unicast.

use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header(
        "Fig. 5",
        "% unicast vs broadcast traffic (measured at the receiver)",
    );
    let mut table = Table::new(&["unicast %", "broadcast %"]).precision(1);
    for b in benchmarks() {
        let rec = run_cached(&base_config(), b);
        let bf = rec.net.broadcast_fraction_received() * 100.0;
        table.row(b.name(), vec![100.0 - bf, bf]);
    }
    table.print();
}
