//! Fig. 13: energy-delay product of the cluster-based and distance-based
//! unicast routing policies, normalized to Cluster.
//!
//! Paper shape targets: Distance-15 lowest EDP (~10 % below Cluster);
//! gains largest on unicast-heavy apps.

use atac::net::{ReceiveNet, RoutingPolicy};
use atac::prelude::*;
use atac_bench::{base_config, benchmarks, geomean, header, run_cached, Table};

fn main() {
    header("Fig. 13", "EDP of routing policies, normalized to Cluster");
    let policies = [
        RoutingPolicy::Cluster,
        RoutingPolicy::Distance(5),
        RoutingPolicy::Distance(15),
        RoutingPolicy::Distance(25),
        RoutingPolicy::Distance(35),
    ];
    let cols: Vec<String> = policies.iter().map(|p| p.name()).collect();
    let mut table = Table::new(&cols.iter().map(String::as_str).collect::<Vec<_>>()).precision(3);
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for b in benchmarks() {
        let edps: Vec<f64> = policies
            .iter()
            .map(|&p| {
                let cfg = SimConfig {
                    arch: Arch::Atac(p, ReceiveNet::StarNet),
                    ..base_config()
                };
                run_cached(&cfg, b).edp(&cfg).value()
            })
            .collect();
        let base = edps[0];
        let row: Vec<f64> = edps.iter().map(|e| e / base).collect();
        for (i, v) in row.iter().enumerate() {
            per_policy[i].push(*v);
        }
        table.row(b.name(), row);
    }
    table.row("GEOMEAN", per_policy.iter().map(|v| geomean(v)).collect());
    table.print();
}
