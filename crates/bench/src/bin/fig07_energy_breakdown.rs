//! Fig. 7: total network + cache energy breakdown, averaged across all
//! benchmarks, for the four ATAC+ technology flavors (Table IV) and the
//! two electrical meshes — normalized to ATAC+(Ideal).
//!
//! Paper shape targets: laser dominates ATAC+(Cons); ring tuning
//! dominates RingTuned and Cons; ATAC+ ≈ ATAC+(Ideal); caches > 75 % of
//! every bar.

use atac::prelude::*;
use atac_bench::{
    average_maps, base_config, benchmarks, fig7_categories, header, run_cached, Table,
};

fn main() {
    header(
        "Fig. 7",
        "network+cache energy breakdown, benchmark average, normalized to ATAC+(Ideal)",
    );
    // One ATAC+ run per benchmark serves all four scenarios (energy is
    // re-integrated); the meshes need their own runs.
    let mut variants: Vec<(String, Vec<std::collections::BTreeMap<String, f64>>)> = Vec::new();
    for scen in PhotonicScenario::ALL {
        let maps: Vec<_> = benchmarks()
            .into_iter()
            .map(|b| {
                let cfg = SimConfig {
                    scenario: scen,
                    ..base_config()
                };
                fig7_categories(&run_cached(&cfg, b).energy(&cfg))
            })
            .collect();
        variants.push((scen.name().to_string(), maps));
    }
    for arch in [Arch::EMeshBcast, Arch::EMeshPure] {
        let cfg = SimConfig {
            arch,
            ..base_config()
        };
        let maps: Vec<_> = benchmarks()
            .into_iter()
            .map(|b| fig7_categories(&run_cached(&cfg, b).energy(&cfg)))
            .collect();
        variants.push((arch.name(), maps));
    }

    let averaged: Vec<(String, std::collections::BTreeMap<String, f64>)> = variants
        .into_iter()
        .map(|(name, maps)| (name, average_maps(&maps)))
        .collect();
    let ideal_total: f64 = averaged[0].1.values().sum();

    let categories: Vec<String> = averaged[0].1.keys().cloned().collect();
    let mut table = Table::new(
        &categories
            .iter()
            .map(String::as_str)
            .chain(std::iter::once("TOTAL"))
            .collect::<Vec<_>>(),
    )
    .precision(3);
    for (name, m) in &averaged {
        let mut row: Vec<f64> = categories.iter().map(|c| m[c] / ideal_total).collect();
        row.push(m.values().sum::<f64>() / ideal_total);
        table.row(name.clone(), row);
    }
    table.print();
    // cache fraction sanity line
    let (name, m) = &averaged[1]; // ATAC+
    let caches: f64 = ["l1i", "l1d", "l2", "directory"]
        .iter()
        .map(|k| m[*k])
        .sum();
    let total: f64 = m.values().sum();
    println!(
        "({name}: caches are {:.0}% of network+cache energy)",
        100.0 * caches / total
    );
}
