//! Tables I–IV: the configuration parameters, printed from the live
//! models so drift between documentation and code is impossible.

use atac::phys::{PhotonicParams, PhotonicScenario, TechNode};
use atac::prelude::*;

fn main() {
    // Declared plan is empty — the tables print live model parameters,
    // no simulation — but going through the executor keeps every
    // reproduce entry point on the same declare-then-render shape.
    atac_bench::plans::tables().execute();
    atac_bench::header("Table I", "Network parameters");
    let cfg = SimConfig::default();
    println!(
        "  Frequency (cores and network)   {} GHz",
        cfg.frequency_hz / 1e9
    );
    println!("  Core type                       in-order, single-issue");
    println!("  L1-I / L1-D cache               private, 32 KB, 4-way, 64 B lines");
    println!("  L2 cache                        private, 256 KB, 8-way, 64 B lines");
    println!("  Total memory controllers        {}", cfg.topo.clusters());
    println!(
        "  Bandwidth per mem. controller   5 GBps (64 B / {} cycles)",
        atac::coherence::memctrl::SERVICE_CYCLES
    );
    println!(
        "  Memory latency                  {} ns",
        atac::coherence::memctrl::MEM_LATENCY
    );
    println!("  Router delay / link delay       1 cycle / 1 cycle");
    println!(
        "  ONet link delay                 {} cycles",
        atac::net::onet::ONET_LINK_DELAY
    );
    println!(
        "  ONet select-data lag            {} cycle",
        atac::net::onet::SELECT_DATA_LAG
    );
    println!(
        "  StarNet link delay              {} cycle",
        atac::net::onet::RECEIVE_NET_DELAY
    );
    println!(
        "  StarNets per cluster            {}",
        atac::net::onet::RECEIVE_NETS_PER_CLUSTER
    );
    println!("  Flit size                       {} bits", cfg.flit_width);

    atac_bench::header("Table II", "Optical technology parameters");
    let p = PhotonicParams::default();
    println!(
        "  Laser efficiency                {} %",
        p.laser_efficiency * 100.0
    );
    println!(
        "  Waveguide pitch                 {} um",
        p.waveguide_pitch * 1e6
    );
    println!(
        "  Waveguide loss                  {} dB/cm",
        p.waveguide_loss_db_per_cm
    );
    println!(
        "  Waveguide non-linearity limit   {} mW",
        p.waveguide_nonlinearity_limit.value() * 1e3
    );
    println!(
        "  Ring through loss               {} dB",
        p.ring_through_loss_db
    );
    println!(
        "  Ring drop loss                  {} dB",
        p.ring_drop_loss_db
    );
    println!(
        "  Ring area                       {} um^2",
        p.ring_area.value() * 1e12
    );
    println!(
        "  Photodetector responsivity      {} A/W",
        p.photodetector_responsivity
    );

    atac_bench::header(
        "Table III",
        "Projected 11 nm tri-gate transistor parameters",
    );
    let t = TechNode::tri_gate_11nm();
    println!("  Supply voltage (VDD)            {} V", t.vdd.value());
    println!(
        "  Gate length                     {} nm",
        t.gate_length.value() * 1e9
    );
    println!(
        "  Contacted gate pitch            {} nm",
        t.contacted_gate_pitch.value() * 1e9
    );
    println!(
        "  Gate cap / width                {:.3} fF/um",
        t.gate_cap_per_width.value() * 1e15 / 1e6
    );
    println!(
        "  Drain cap / width               {:.3} fF/um",
        t.drain_cap_per_width.value() * 1e15 / 1e6
    );
    println!(
        "  On current / width (N/P)        {:.0}/{:.0} uA/um",
        t.on_current_n.value() * 1e6 / 1e6,
        t.on_current_p.value() * 1e6 / 1e6
    );
    println!(
        "  Off current / width             {:.0} nA/um",
        t.off_current.value() * 1e9 / 1e6
    );

    atac_bench::header("Table IV", "ATAC+ architecture flavors");
    for s in PhotonicScenario::ALL {
        println!(
            "  {:18} devices={:9} laser={:12} rings={}",
            s.name(),
            if s.ideal_devices() {
                "ideal"
            } else {
                "practical"
            },
            if s.laser_power_gated() {
                "power-gated"
            } else {
                "standard"
            },
            if s.athermal() { "athermal" } else { "tuned" },
        );
    }
}
