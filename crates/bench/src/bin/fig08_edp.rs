//! Fig. 8: normalized energy-delay product per application for the four
//! ATAC+ flavors and the two meshes (ACKwise4), normalized to
//! ATAC+(Ideal).
//!
//! Paper headline targets: EMesh-BCast ≈ 1.8× and EMesh-Pure ≈ 4.8×
//! worse EDP than ATAC+ on average; ATAC+ ≈ ATAC+(Ideal).

use atac::prelude::*;
use atac_bench::{base_config, benchmarks, geomean, header, run_cached, Table};

fn main() {
    // Warm every needed run in parallel before rendering; the loops
    // below then hit the cache only.
    atac_bench::plans::fig08().execute();
    header(
        "Fig. 8",
        "normalized energy-delay product (network+cache energy × runtime)",
    );
    let mut cols: Vec<String> = PhotonicScenario::ALL
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    cols.push("EMesh-BCast".into());
    cols.push("EMesh-Pure".into());
    let mut table = Table::new(&cols.iter().map(String::as_str).collect::<Vec<_>>()).precision(2);

    let mut ratios_bcast = Vec::new();
    let mut ratios_pure = Vec::new();
    for b in benchmarks() {
        let mut edps = Vec::new();
        for scen in PhotonicScenario::ALL {
            let cfg = SimConfig {
                scenario: scen,
                ..base_config()
            };
            let rec = run_cached(&cfg, b);
            edps.push((rec.energy(&cfg).network_and_caches() * rec.runtime(&cfg)).value());
        }
        for arch in [Arch::EMeshBcast, Arch::EMeshPure] {
            let cfg = SimConfig {
                arch,
                ..base_config()
            };
            let rec = run_cached(&cfg, b);
            edps.push((rec.energy(&cfg).network_and_caches() * rec.runtime(&cfg)).value());
        }
        let ideal = edps[0];
        let atac_plus = edps[1];
        ratios_bcast.push(edps[4] / atac_plus);
        ratios_pure.push(edps[5] / atac_plus);
        table.row(b.name(), edps.iter().map(|e| e / ideal).collect());
    }
    table.print();
    println!(
        "\nAverage EDP vs ATAC+ (paper: 1.8x / 4.8x): EMesh-BCast = {:.2}x, EMesh-Pure = {:.2}x",
        geomean(&ratios_bcast),
        geomean(&ratios_pure),
    );
}
