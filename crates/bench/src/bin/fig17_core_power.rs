//! Fig. 17: chip energy (core + cache + network) for core NDD power at
//! 10 % and 40 % of peak, ATAC+ vs EMesh-BCast, normalized to ATAC+ at
//! each NDD level.
//!
//! Paper shape targets: the core dwarfs caches and network; EMesh's
//! longer runtimes inflate its core-NDD energy; fmm shows ~no difference.

use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    for ndd in [0.1, 0.4] {
        header(
            "Fig. 17",
            &format!(
                "chip energy breakdown at {}% core NDD power (normalized to ATAC+ total)",
                (ndd * 100.0) as u32
            ),
        );
        let mut table = Table::new(&[
            "A+ core-ndd",
            "A+ core-dd",
            "A+ cache",
            "A+ net",
            "EM core-ndd",
            "EM core-dd",
            "EM cache",
            "EM net",
        ])
        .precision(3);
        for b in benchmarks() {
            let mut row = Vec::new();
            let mut atac_total = 0.0;
            for arch in [Arch::atac_plus(), Arch::EMeshBcast] {
                let cfg = SimConfig {
                    arch,
                    core_ndd_fraction: ndd,
                    ..base_config()
                };
                let e = run_cached(&cfg, b).energy(&cfg);
                if atac_total == 0.0 {
                    atac_total = e.total().value();
                }
                row.extend([
                    e.core_ndd.value() / atac_total,
                    e.core_dd.value() / atac_total,
                    e.caches().value() / atac_total,
                    e.network().value() / atac_total,
                ]);
            }
            table.row(b.name(), row);
        }
        table.print();
    }
}
