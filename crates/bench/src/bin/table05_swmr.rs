//! Table V: adaptive SWMR link utilization and the average number of
//! unicast packets between successive broadcasts, per application.
//!
//! Paper shape targets: links idle 70–90 % of the time; barnes/fmm/
//! dynamic_graph have the fewest unicasts per broadcast, lu_contig by
//! far the most.

use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    // Warm every needed run in parallel before rendering.
    atac_bench::plans::table05().execute();
    header(
        "Table V",
        "adaptive SWMR link utilization; unicasts between broadcasts",
    );
    let hubs = atac_bench::topology().clusters();
    let mut table = Table::new(&["utilization %", "unicasts/broadcast"]).precision(1);
    for b in benchmarks() {
        let rec = run_cached(&base_config(), b);
        table.row(
            b.name(),
            vec![
                rec.net.swmr_utilization(hubs) * 100.0,
                rec.net.unicasts_per_broadcast(),
            ],
        );
    }
    table.print();
}
