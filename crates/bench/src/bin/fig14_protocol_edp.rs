//! Fig. 14: energy-delay product of the ACKwise4 and Dir4B coherence
//! protocols on ATAC+ and EMesh-BCast, normalized to ATAC+/ACKwise4.
//!
//! Paper shape targets: Dir4B degrades in proportion to broadcast
//! frequency (barnes, fmm, radix), and degrades more on EMesh-BCast.

use atac::coherence::ProtocolKind;
use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header(
        "Fig. 14",
        "EDP: ACKwise4 vs Dir4B on ATAC+ and EMesh-BCast (normalized)",
    );
    let variants: [(&str, Arch, ProtocolKind); 4] = [
        (
            "ATAC+/ACKwise4",
            Arch::atac_plus(),
            ProtocolKind::AckWise { k: 4 },
        ),
        (
            "ATAC+/Dir4B",
            Arch::atac_plus(),
            ProtocolKind::DirB { k: 4 },
        ),
        (
            "EMesh/ACKwise4",
            Arch::EMeshBcast,
            ProtocolKind::AckWise { k: 4 },
        ),
        ("EMesh/Dir4B", Arch::EMeshBcast, ProtocolKind::DirB { k: 4 }),
    ];
    let mut table =
        Table::new(&variants.iter().map(|(n, _, _)| *n).collect::<Vec<_>>()).precision(2);
    for b in benchmarks() {
        let edps: Vec<f64> = variants
            .iter()
            .map(|&(_, arch, protocol)| {
                let cfg = SimConfig {
                    arch,
                    protocol,
                    ..base_config()
                };
                run_cached(&cfg, b).edp(&cfg).value()
            })
            .collect();
        table.row(b.name(), edps.iter().map(|e| e / edps[0]).collect());
    }
    table.print();
}
