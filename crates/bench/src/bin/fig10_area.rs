//! Fig. 10: chip area (caches + network) for ATAC+ and the electrical
//! mesh.
//!
//! Paper shape targets: caches ≈ 90 % of total; waveguides + optical
//! devices ≈ 40 mm²; electrical network components negligible.

use atac::phys::cache_model::{CacheGeometry, CacheModel};
use atac::phys::electrical::{LinkModel, ReceiveNetModel, RouterModel, RouterParams};
use atac::phys::photonics::{OpticalLinkModel, PhotonicParams};
use atac::phys::stdcell::StdCellLib;
use atac::prelude::*;
use atac_bench::{header, topology, Table};

fn main() {
    header("Fig. 10", "chip area breakdown (mm^2), caches + network");
    let topo = topology();
    let n = topo.cores() as f64;
    let lib = StdCellLib::tri_gate_11nm();
    let mm2 = |a: atac::phys::units::SquareMeters| a.value() * 1e6;

    let l1 = CacheModel::new(&lib, CacheGeometry::l1_32k());
    let l2 = CacheModel::new(&lib, CacheGeometry::l2_256k());
    let dir = CacheModel::new(&lib, CacheGeometry::directory(4096, 4, topo.cores() as u64));
    let router = RouterModel::new(&lib, RouterParams::mesh_default());
    let link = LinkModel::mesh_hop(&lib, 64);
    let recv = ReceiveNetModel::new(&lib, 64, topo.cores_per_cluster());
    let optics = OpticalLinkModel::new(
        PhotonicParams::default(),
        PhotonicScenario::Practical,
        topo.clusters(),
        64,
    );
    let w = f64::from(topo.width);
    let h = f64::from(topo.height);
    let n_links = 2.0 * (w * (h - 1.0) + h * (w - 1.0));

    let caches = [
        ("L1-I caches", mm2(l1.area) * n),
        ("L1-D caches", mm2(l1.area) * n),
        ("L2 caches", mm2(l2.area) * n),
        ("Directory caches", mm2(dir.area) * n),
    ];
    let electrical = [
        ("Routers", mm2(router.area) * n),
        ("Links", mm2(link.area) * n_links),
    ];
    let optical = [
        (
            "ReceiveNets (StarNet)",
            mm2(recv.area) * 2.0 * topo.clusters() as f64,
        ),
        ("Hubs", mm2(router.area) * 2.0 * topo.clusters() as f64),
        ("Waveguides + rings", mm2(optics.optical_area)),
    ];

    let mut table = Table::new(&["ATAC+", "EMesh"]).precision(1);
    let mut tot_atac = 0.0;
    let mut tot_mesh = 0.0;
    for (name, a) in caches {
        table.row(name, vec![a, a]);
        tot_atac += a;
        tot_mesh += a;
    }
    for (name, a) in electrical {
        table.row(name, vec![a, a]);
        tot_atac += a;
        tot_mesh += a;
    }
    for (name, a) in optical {
        table.row(name, vec![a, 0.0]);
        tot_atac += a;
    }
    table.row("TOTAL", vec![tot_atac, tot_mesh]);
    table.print();
    let cache_total: f64 = [mm2(l1.area) * 2.0 * n, mm2(l2.area) * n, mm2(dir.area) * n]
        .iter()
        .sum();
    println!(
        "(caches are {:.0}% of the ATAC+ total)",
        100.0 * cache_total / tot_atac
    );
}
