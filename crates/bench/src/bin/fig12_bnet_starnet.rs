//! Fig. 12: energy effect of replacing the broadcast BNet with the
//! point-to-point StarNet, under *cluster* routing (isolating the
//! receive-network change). First bar = BNet, second = StarNet,
//! normalized to BNet.
//!
//! Paper shape targets: ~8 % average total-energy reduction; larger on
//! unicast-heavy apps (radix, ocean_contig), small on barnes.
//!
//! Timing is identical for both receive nets (both are 1-cycle), so a
//! single simulation per benchmark is re-integrated under each flavor.

use atac::net::{ReceiveNet, RoutingPolicy};
use atac::prelude::*;
use atac_bench::{base_config, benchmarks, header, run_cached, Table};

fn main() {
    header(
        "Fig. 12",
        "BNet vs StarNet energy (cluster routing), normalized to BNet",
    );
    let mut table = Table::new(&["BNet", "StarNet"]).precision(3);
    let mut avg = 0.0;
    let benches = benchmarks();
    for &b in &benches {
        let bnet_cfg = SimConfig {
            arch: Arch::Atac(RoutingPolicy::Cluster, ReceiveNet::BNet),
            ..base_config()
        };
        let star_cfg = SimConfig {
            arch: Arch::Atac(RoutingPolicy::Cluster, ReceiveNet::StarNet),
            ..base_config()
        };
        let rec = run_cached(&bnet_cfg, b); // identical timing for both
        let e_bnet = rec.energy(&bnet_cfg).network_and_caches().value();
        let e_star = rec.energy(&star_cfg).network_and_caches().value();
        avg += e_star / e_bnet / benches.len() as f64;
        table.row(b.name(), vec![1.0, e_star / e_bnet]);
    }
    table.print();
    println!("\nAverage StarNet/BNet energy: {avg:.3} (paper: ~0.92, an 8% reduction)");
}
