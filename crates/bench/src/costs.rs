//! Per-key host-cost model for cost-aware sweep scheduling.
//!
//! The run history (`BENCH_history.jsonl`, written by `atac-report
//! record`) carries one `run` line per simulated key per recorded sweep,
//! including the host seconds the simulation took. Those samples are a
//! ready-made cost model: the executor sorts its missing keys
//! longest-expected-first (the classic LPT heuristic), so a straggler
//! key starts early instead of landing on a lone worker after the queue
//! drains. The same expectations drive the live progress line's ETA.
//!
//! Scheduling is a *performance* decision only — run records are
//! keyed and published per key, and the sweep log sorts runs by key, so
//! execution order never reaches the artifacts. The existing
//! parallel-vs-serial byte-identity test covers exactly this property.
//!
//! The model is deliberately minimal: the median of the recorded
//! samples per key (robust to one slow CI runner), no cross-key
//! inference. A key with no history simply has no expectation and the
//! executor schedules it first (an unknown cost is treated as
//! potentially long — the safe bet for makespan).

use std::collections::BTreeMap;

use atac::trace::json::{parse, Json};

/// Expected host seconds per run key, learned from committed history.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    expected: BTreeMap<String, f64>,
}

impl CostModel {
    /// Load from `ATAC_HISTORY` (default `BENCH_history.jsonl` in the
    /// working directory). Missing or unreadable history is an empty
    /// model — the executor then keeps the plan's declared order.
    pub fn from_env() -> Self {
        let path =
            std::env::var("ATAC_HISTORY").unwrap_or_else(|_| "BENCH_history.jsonl".to_string());
        std::fs::read_to_string(path)
            .map(|text| Self::from_history_text(&text))
            .unwrap_or_default()
    }

    /// Build from history JSONL text. Only `run` lines with a `key` and
    /// a `host_secs` contribute; malformed or foreign lines are skipped
    /// (this is a scheduling hint, not a validator — `atac-report`
    /// owns strict history decoding).
    pub fn from_history_text(text: &str) -> Self {
        let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(obj) = parse(line) else { continue };
            if obj.get("kind").and_then(Json::as_str) != Some("run") {
                continue;
            }
            let (Some(key), Some(secs)) = (
                obj.get("key").and_then(Json::as_str),
                obj.get("host_secs").and_then(Json::as_f64),
            ) else {
                continue;
            };
            if secs.is_finite() && secs >= 0.0 {
                samples.entry(key.to_string()).or_default().push(secs);
            }
        }
        let expected = samples
            .into_iter()
            .map(|(key, mut s)| {
                s.sort_by(f64::total_cmp);
                (key, s[s.len() / 2])
            })
            .collect();
        CostModel { expected }
    }

    /// Inject one expectation (tests, synthetic schedules).
    pub fn insert(&mut self, key: impl Into<String>, secs: f64) {
        self.expected.insert(key.into(), secs);
    }

    /// Expected host seconds for `key`, if the history had samples.
    pub fn expected_secs(&self, key: &str) -> Option<f64> {
        self.expected.get(key).copied()
    }

    /// Whether the model has no expectations at all.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Number of keys with an expectation.
    pub fn len(&self) -> usize {
        self.expected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_run_samples_per_key() {
        let text = concat!(
            "{\"schema\": \"atac-report-history-v1\", \"kind\": \"sweep\", \"sha\": \"a\"}\n",
            "{\"kind\": \"run\", \"key\": \"k1\", \"host_secs\": 4.0}\n",
            "{\"kind\": \"run\", \"key\": \"k1\", \"host_secs\": 100.0}\n",
            "{\"kind\": \"run\", \"key\": \"k1\", \"host_secs\": 5.0}\n",
            "{\"kind\": \"run\", \"key\": \"k2\", \"host_secs\": 0.5}\n",
            "{\"kind\": \"netprof\", \"sha\": \"a\", \"flits\": 9}\n",
            "not json at all\n",
            "{\"kind\": \"run\", \"key\": \"k3\"}\n",
            "{\"kind\": \"run\", \"key\": \"k4\", \"host_secs\": -1.0}\n",
        );
        let model = CostModel::from_history_text(text);
        assert_eq!(model.len(), 2);
        assert_eq!(model.expected_secs("k1"), Some(5.0), "median beats outlier");
        assert_eq!(model.expected_secs("k2"), Some(0.5));
        assert_eq!(model.expected_secs("k3"), None, "no host_secs, no entry");
        assert_eq!(model.expected_secs("k4"), None, "negative sample dropped");
    }

    #[test]
    fn empty_and_injected_models() {
        let empty = CostModel::from_history_text("");
        assert!(empty.is_empty());
        assert_eq!(empty.expected_secs("k"), None);
        let mut m = CostModel::default();
        m.insert("k", 2.5);
        assert!(!m.is_empty());
        assert_eq!(m.expected_secs("k"), Some(2.5));
    }
}
