//! Hand-rolled JSON (de)serialization for [`crate::RunRecord`].
//!
//! The run cache predates this module's existence as a `serde_json`
//! consumer; the workspace now builds fully offline with zero external
//! crates, so the cache format is produced and parsed here directly. The
//! format is unchanged — a flat object with `cycles`, `instructions`,
//! `ipc`, and nested `net`/`coh` counter objects — and stays
//! human-inspectable under `target/atac-results/`.
//!
//! Parsing is strict on *shape* and *key sets*: a record whose counter
//! keys differ from the current `FIELD_NAMES` (older or newer code) is
//! rejected, which the cache layer treats as "stale, re-simulate". That
//! is the safe failure mode for a results cache.
//!
//! Records carry a sixth key, `latency`: one log-bucketed histogram per
//! message class (`"<subnet>/<kind>"` → `count`/`sum`/`max`/`buckets`,
//! buckets trimmed of trailing zeros). The class set must match the
//! current `Subnet`/`TrafficKind` vocabulary exactly — like a counter
//! rename, a class mismatch marks the record stale.

use atac::coherence::CoherenceStats;
use atac::net::NetStats;
use atac::trace::{Histogram, Subnet, TrafficKind};

use crate::RunRecord;

/// The class keys a current-version record must carry, display order.
fn expected_classes() -> Vec<String> {
    let mut v = Vec::with_capacity(8);
    for s in Subnet::ALL {
        for k in TrafficKind::ALL {
            v.push(format!("{}/{}", s.name(), k.name()));
        }
    }
    v
}

/// Serialize a record to pretty-printed JSON.
pub fn encode(rec: &RunRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"cycles\": {},\n", rec.cycles));
    out.push_str(&format!("  \"instructions\": {},\n", rec.instructions));
    out.push_str(&format!("  \"ipc\": {:?},\n", rec.ipc));
    out.push_str("  \"net\": {\n");
    push_counters(&mut out, &rec.net.fields());
    out.push_str("  },\n");
    out.push_str("  \"coh\": {\n");
    push_counters(&mut out, &rec.coh.fields());
    out.push_str("  },\n");
    out.push_str("  \"latency\": {\n");
    for (i, (class, h)) in rec.latency.iter().enumerate() {
        let comma = if i + 1 == rec.latency.len() { "" } else { "," };
        let buckets: Vec<String> = h.nonzero_buckets().iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "    \"{class}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}{comma}\n",
            h.count(),
            h.sum(),
            h.max(),
            buckets.join(", ")
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn push_counters(out: &mut String, fields: &[(&'static str, u64)]) {
    for (i, (name, value)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
}

/// Parse a record from JSON. Returns `None` on any syntactic or shape
/// mismatch (the caller re-simulates).
pub fn decode(text: &str) -> Option<RunRecord> {
    let mut p = Parser::new(text);
    let rec = p.record()?;
    p.skip_ws();
    if p.rest().is_empty() {
        Some(rec)
    } else {
        None
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn eat(&mut self, token: char) -> Option<()> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Some(())
        } else {
            None
        }
    }

    fn key(&mut self) -> Option<&'a str> {
        self.eat('"')?;
        let rest = self.rest();
        let end = rest.find('"')?;
        let k = &rest[..end];
        self.pos += end + 1;
        self.eat(':')?;
        Some(k)
    }

    /// A JSON number token (no exponent-free guarantees needed: we emit
    /// what `{:?}` on f64/u64 prints, and accept that grammar back).
    fn number(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        if end == 0 {
            return None;
        }
        self.pos += end;
        Some(&rest[..end])
    }

    /// `"name": value` pairs of a counter object, applied via `set_field`.
    fn counters(&mut self, set: &mut dyn FnMut(&str, u64) -> bool) -> Option<usize> {
        self.eat('{')?;
        let mut n = 0usize;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                return Some(n);
            }
            if n > 0 {
                self.eat(',')?;
            }
            let k = self.key()?;
            let v: u64 = self.number()?.parse().ok()?;
            if !set(k, v) {
                return None; // unknown counter → stale record
            }
            n += 1;
        }
    }

    /// A `[u64, ...]` array.
    fn u64_array(&mut self) -> Option<Vec<u64>> {
        self.eat('[')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with(']') {
                self.pos += 1;
                return Some(out);
            }
            if !out.is_empty() {
                self.eat(',')?;
            }
            out.push(self.number()?.parse().ok()?);
        }
    }

    /// One serialized histogram; `from_raw` re-checks the bucket/count
    /// invariant, so corrupted records fail here rather than load.
    fn histogram(&mut self) -> Option<Histogram> {
        self.eat('{')?;
        let (mut count, mut sum, mut max, mut buckets) = (None, None, None, None);
        let mut n = 0usize;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                break;
            }
            if n > 0 {
                self.eat(',')?;
            }
            match self.key()? {
                "count" => count = Some(self.number()?.parse().ok()?),
                "sum" => sum = Some(self.number()?.parse().ok()?),
                "max" => max = Some(self.number()?.parse().ok()?),
                "buckets" => buckets = Some(self.u64_array()?),
                _ => return None,
            }
            n += 1;
        }
        Histogram::from_raw(count?, sum?, max?, &buckets?)
    }

    /// The `latency` object: class → histogram, exact class set.
    fn latency(&mut self) -> Option<Vec<(String, Histogram)>> {
        self.eat('{')?;
        let mut out: Vec<(String, Histogram)> = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                break;
            }
            if !out.is_empty() {
                self.eat(',')?;
            }
            let class = self.key()?.to_string();
            let h = self.histogram()?;
            out.push((class, h));
        }
        let expected = expected_classes();
        if out.len() != expected.len() {
            return None; // stale class vocabulary
        }
        for (class, _) in &out {
            if !expected.contains(class) {
                return None;
            }
        }
        let distinct: std::collections::BTreeSet<&str> =
            out.iter().map(|(c, _)| c.as_str()).collect();
        if distinct.len() != out.len() {
            return None; // duplicate class keys
        }
        Some(out)
    }

    fn record(&mut self) -> Option<RunRecord> {
        self.eat('{')?;
        let mut rec = RunRecord {
            cycles: 0,
            instructions: 0,
            ipc: 0.0,
            net: NetStats::default(),
            coh: CoherenceStats::default(),
            latency: Vec::new(),
        };
        let mut seen = 0usize;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                break;
            }
            if seen > 0 {
                self.eat(',')?;
            }
            match self.key()? {
                "cycles" => rec.cycles = self.number()?.parse().ok()?,
                "instructions" => rec.instructions = self.number()?.parse().ok()?,
                "ipc" => rec.ipc = self.number()?.parse().ok()?,
                "net" => {
                    let n = self.counters(&mut |k, v| rec.net.set_field(k, v))?;
                    if n != NetStats::FIELD_NAMES.len() {
                        return None; // missing counters → stale record
                    }
                }
                "coh" => {
                    let n = self.counters(&mut |k, v| rec.coh.set_field(k, v))?;
                    if n != CoherenceStats::FIELD_NAMES.len() {
                        return None;
                    }
                }
                "latency" => rec.latency = self.latency()?,
                _ => return None,
            }
            seen += 1;
        }
        if seen == 6 {
            Some(rec)
        } else {
            None // pre-histogram 5-key records are stale by design
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut net = NetStats::default();
        net.set_field("xbar_traversals", 12345);
        net.set_field("laser_transitions", 7);
        let mut coh = CoherenceStats::default();
        coh.set_field("dir_lookups", 99);
        coh.set_field("seq_buffered_unicasts", 3);
        let latency = expected_classes()
            .into_iter()
            .enumerate()
            .map(|(i, class)| {
                let mut h = Histogram::new();
                for v in 0..(i as u64 * 10) {
                    h.record(v * v);
                }
                (class, h)
            })
            .collect();
        RunRecord {
            cycles: 500_000,
            instructions: 1_000_000,
            ipc: 0.312_5,
            net,
            coh,
            latency,
        }
    }

    #[test]
    fn roundtrip() {
        let rec = sample();
        let text = encode(&rec);
        let back = decode(&text).expect("roundtrip parses");
        assert_eq!(back.cycles, rec.cycles);
        assert_eq!(back.instructions, rec.instructions);
        assert_eq!(back.ipc.to_bits(), rec.ipc.to_bits());
        assert_eq!(back.net, rec.net);
        assert_eq!(back.coh, rec.coh);
        assert_eq!(back.latency, rec.latency);
    }

    #[test]
    fn rejects_stale_class_vocabulary_and_corrupt_buckets() {
        // Renamed class → stale.
        let text = encode(&sample()).replace("starnet/unicast", "tachyon/unicast");
        assert!(decode(&text).is_none());
        // Bucket totals disagreeing with count → from_raw fails → stale.
        let rec = sample();
        let text = encode(&rec);
        let class = &rec.latency.last().expect("classes").0;
        let needle = format!(
            "\"{class}\": {{\"count\": {}",
            rec.latency.last().unwrap().1.count()
        );
        let tampered = text.replace(&needle, &format!("\"{class}\": {{\"count\": 1"));
        assert_ne!(tampered, text, "tamper target must exist");
        assert!(decode(&tampered).is_none());
    }

    #[test]
    fn rejects_five_key_records_from_older_versions() {
        // Strip the latency object wholesale: old-format record → stale.
        let text = encode(&sample());
        let cut = text.find("  \"latency\"").expect("latency key present");
        let mut old = text[..cut].trim_end().trim_end_matches(',').to_string();
        old.push_str("\n}\n");
        assert!(decode(&old).is_none());
    }

    #[test]
    fn rejects_unknown_counter() {
        let text = encode(&sample()).replace("xbar_traversals", "xbar_traversalz");
        assert!(decode(&text).is_none());
    }

    #[test]
    fn rejects_truncated_input() {
        let text = encode(&sample());
        assert!(decode(&text[..text.len() / 2]).is_none());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut text = encode(&sample());
        text.push_str("[]");
        assert!(decode(&text).is_none());
    }

    #[test]
    fn rejects_missing_counter_keys() {
        // Drop one line from the net object: key-set mismatch → stale.
        let text = encode(&sample());
        let filtered: Vec<&str> = text
            .lines()
            .filter(|l| !l.contains("\"arbitrations\""))
            .collect();
        let mut joined = filtered.join("\n");
        // The line above the removed one now needs its comma intact; the
        // emitted format always has commas between counter lines, so the
        // only breakage is the key count — exactly what decode checks.
        joined.push('\n');
        assert!(decode(&joined).is_none());
    }
}
