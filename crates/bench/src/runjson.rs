//! Hand-rolled JSON (de)serialization for [`crate::RunRecord`].
//!
//! The run cache predates this module's existence as a `serde_json`
//! consumer; the workspace now builds fully offline with zero external
//! crates, so the cache format is produced and parsed here directly. The
//! format is unchanged — a flat object with `cycles`, `instructions`,
//! `ipc`, and nested `net`/`coh` counter objects — and stays
//! human-inspectable under `target/atac-results/`.
//!
//! Parsing is strict on *shape* and *key sets*: a record whose counter
//! keys differ from the current `FIELD_NAMES` (older or newer code) is
//! rejected, which the cache layer treats as "stale, re-simulate". That
//! is the safe failure mode for a results cache.

use atac::coherence::CoherenceStats;
use atac::net::NetStats;

use crate::RunRecord;

/// Serialize a record to pretty-printed JSON.
pub fn encode(rec: &RunRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"cycles\": {},\n", rec.cycles));
    out.push_str(&format!("  \"instructions\": {},\n", rec.instructions));
    out.push_str(&format!("  \"ipc\": {:?},\n", rec.ipc));
    out.push_str("  \"net\": {\n");
    push_counters(&mut out, &rec.net.fields());
    out.push_str("  },\n");
    out.push_str("  \"coh\": {\n");
    push_counters(&mut out, &rec.coh.fields());
    out.push_str("  }\n}\n");
    out
}

fn push_counters(out: &mut String, fields: &[(&'static str, u64)]) {
    for (i, (name, value)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
}

/// Parse a record from JSON. Returns `None` on any syntactic or shape
/// mismatch (the caller re-simulates).
pub fn decode(text: &str) -> Option<RunRecord> {
    let mut p = Parser::new(text);
    let rec = p.record()?;
    p.skip_ws();
    if p.rest().is_empty() {
        Some(rec)
    } else {
        None
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn eat(&mut self, token: char) -> Option<()> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Some(())
        } else {
            None
        }
    }

    fn key(&mut self) -> Option<&'a str> {
        self.eat('"')?;
        let rest = self.rest();
        let end = rest.find('"')?;
        let k = &rest[..end];
        self.pos += end + 1;
        self.eat(':')?;
        Some(k)
    }

    /// A JSON number token (no exponent-free guarantees needed: we emit
    /// what `{:?}` on f64/u64 prints, and accept that grammar back).
    fn number(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        if end == 0 {
            return None;
        }
        self.pos += end;
        Some(&rest[..end])
    }

    /// `"name": value` pairs of a counter object, applied via `set_field`.
    fn counters(&mut self, set: &mut dyn FnMut(&str, u64) -> bool) -> Option<usize> {
        self.eat('{')?;
        let mut n = 0usize;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                return Some(n);
            }
            if n > 0 {
                self.eat(',')?;
            }
            let k = self.key()?;
            let v: u64 = self.number()?.parse().ok()?;
            if !set(k, v) {
                return None; // unknown counter → stale record
            }
            n += 1;
        }
    }

    fn record(&mut self) -> Option<RunRecord> {
        self.eat('{')?;
        let mut rec = RunRecord {
            cycles: 0,
            instructions: 0,
            ipc: 0.0,
            net: NetStats::default(),
            coh: CoherenceStats::default(),
        };
        let mut seen = 0usize;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                break;
            }
            if seen > 0 {
                self.eat(',')?;
            }
            match self.key()? {
                "cycles" => rec.cycles = self.number()?.parse().ok()?,
                "instructions" => rec.instructions = self.number()?.parse().ok()?,
                "ipc" => rec.ipc = self.number()?.parse().ok()?,
                "net" => {
                    let n = self.counters(&mut |k, v| rec.net.set_field(k, v))?;
                    if n != NetStats::FIELD_NAMES.len() {
                        return None; // missing counters → stale record
                    }
                }
                "coh" => {
                    let n = self.counters(&mut |k, v| rec.coh.set_field(k, v))?;
                    if n != CoherenceStats::FIELD_NAMES.len() {
                        return None;
                    }
                }
                _ => return None,
            }
            seen += 1;
        }
        if seen == 5 {
            Some(rec)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut net = NetStats::default();
        net.set_field("xbar_traversals", 12345);
        net.set_field("laser_transitions", 7);
        let mut coh = CoherenceStats::default();
        coh.set_field("dir_lookups", 99);
        coh.set_field("seq_buffered_unicasts", 3);
        RunRecord {
            cycles: 500_000,
            instructions: 1_000_000,
            ipc: 0.312_5,
            net,
            coh,
        }
    }

    #[test]
    fn roundtrip() {
        let rec = sample();
        let text = encode(&rec);
        let back = decode(&text).expect("roundtrip parses");
        assert_eq!(back.cycles, rec.cycles);
        assert_eq!(back.instructions, rec.instructions);
        assert_eq!(back.ipc.to_bits(), rec.ipc.to_bits());
        assert_eq!(back.net, rec.net);
        assert_eq!(back.coh, rec.coh);
    }

    #[test]
    fn rejects_unknown_counter() {
        let text = encode(&sample()).replace("xbar_traversals", "xbar_traversalz");
        assert!(decode(&text).is_none());
    }

    #[test]
    fn rejects_truncated_input() {
        let text = encode(&sample());
        assert!(decode(&text[..text.len() / 2]).is_none());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut text = encode(&sample());
        text.push_str("[]");
        assert!(decode(&text).is_none());
    }

    #[test]
    fn rejects_missing_counter_keys() {
        // Drop one line from the net object: key-set mismatch → stale.
        let text = encode(&sample());
        let filtered: Vec<&str> = text
            .lines()
            .filter(|l| !l.contains("\"arbitrations\""))
            .collect();
        let mut joined = filtered.join("\n");
        // The line above the removed one now needs its comma intact; the
        // emitted format always has commas between counter lines, so the
        // only breakage is the key count — exactly what decode checks.
        joined.push('\n');
        assert!(decode(&joined).is_none());
    }
}
