//! The run-record cache, made safe for concurrent sweeps.
//!
//! Completed full-system runs persist as JSON under `target/atac-results/`
//! (override with `ATAC_RESULTS_DIR`) and are shared across every figure
//! binary. With the parallel executor several workers — and, on a shared
//! checkout, several *processes* — can race on the same cache, so this
//! layer provides three guarantees:
//!
//! 1. **Atomic publication** — a record is written to a temp file in the
//!    cache directory and then `rename`d into place, so a reader sees
//!    either no file or a complete record, never a torn prefix. A crash
//!    mid-write leaves only a stray temp file, not a poisoned record
//!    every later run re-pays to reject.
//! 2. **In-process single-flight** — two callers needing the same run key
//!    concurrently simulate it once: the first becomes the leader, the
//!    rest block on a condvar and clone the leader's record. A leader
//!    that panics marks the flight failed so joiners fail loudly instead
//!    of hanging.
//! 3. **Cross-process tolerance** — there is no inter-process lock, by
//!    design: a concurrent writer in another process publishes the same
//!    bytes (runs are deterministic), and `rename` makes the last
//!    publication win wholesale. A truncated or stale record decodes to
//!    `None` and is simply re-simulated.
//!
//! Determinism contract: a given `(config, benchmark)` key always encodes
//! to the same bytes, whichever worker or process produced it — asserted
//! by `tests/executor.rs` and re-checked in CI against a serial run.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

use atac::prelude::*;
use atac::trace::flight::{CacheOutcome, FlightHandle, SpanKind};
use atac::trace::{HostPhase, HostProfile, HostProfiler, NetObsHandle, NetProfile, TraceCollector};
use atac::workloads::BuiltWorkload;

use crate::{run_key, runjson, RunRecord};

/// Whether simulated runs carry a host self-profile (`ATAC_PROFILE`,
/// default on; set `ATAC_PROFILE=0` to disable). Profiles are observers
/// of the *host* clock only — they never enter the published run record,
/// whose bytes stay governed by the determinism contract.
pub fn profiling_enabled() -> bool {
    std::env::var("ATAC_PROFILE").as_deref() != Ok("0")
}

/// Whether simulated runs carry the network microscope (`ATAC_NETPROF`,
/// default **off**; set `ATAC_NETPROF=1` to enable). This attaches an
/// [`atac::trace::NetProfile`] observer (per-router/link cycle-domain
/// counters plus skip-ahead efficacy) and, when [`profiling_enabled`],
/// network sub-phase host attribution. Like the profiler, the observer
/// never enters the published run record — instrumented runs stay
/// bit-identical.
pub fn netprof_enabled() -> bool {
    matches!(std::env::var("ATAC_NETPROF").as_deref(), Ok(v) if v != "0")
}

/// Network sub-phase lap sampling period for bench runs, as a power of
/// two (`ATAC_NETPROF_SAMPLE_LOG2`, default 6 = clock one tick in 64 and
/// scale up). Sampling eliminates nearly all of the netprof host-clock
/// overhead; even paper-scale keys run millions of network ticks, so
/// tens of thousands of sampled ticks remain and the renormalized
/// sub-phase split is stable. Set to `0` to time every tick exactly.
/// Sampling only affects the host-side sub-phase seconds — the integer
/// cycle-domain counters stay exact either way.
pub fn netprof_sample_log2() -> u32 {
    std::env::var("ATAC_NETPROF_SAMPLE_LOG2")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
        .min(16)
}

/// Whether the sweep records a flight journal (`ATAC_FLIGHT`, default
/// **off**; set `ATAC_FLIGHT=1` to enable). The journal captures the
/// *executor's* behavior — worker lifecycle spans, cache outcomes,
/// queue depth, RSS — against the host clock only; like the profiler
/// and network microscope, it never enters the published run record,
/// so a recorded sweep is byte-identical to an unrecorded one.
pub fn flight_enabled() -> bool {
    matches!(std::env::var("ATAC_FLIGHT").as_deref(), Ok(v) if v != "0")
}

/// How a requested run record was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Decoded from a published cache file.
    CacheHit,
    /// Simulated by this caller (and published).
    Simulated,
    /// Cloned from a concurrent in-process simulation of the same key.
    Joined,
}

impl RunSource {
    /// Stable lower-case name used in `BENCH_sweep.json`.
    pub fn name(self) -> &'static str {
        match self {
            RunSource::CacheHit => "cache-hit",
            RunSource::Simulated => "simulated",
            RunSource::Joined => "joined",
        }
    }
}

/// Handle to one cache directory. Cheap to clone; safe to share across
/// the executor's worker threads.
#[derive(Debug, Clone)]
pub struct RunCache {
    dir: PathBuf,
}

impl RunCache {
    /// The default cache: `ATAC_RESULTS_DIR` or `target/atac-results`.
    pub fn from_env() -> Self {
        let root =
            std::env::var("ATAC_RESULTS_DIR").unwrap_or_else(|_| "target/atac-results".into());
        RunCache {
            dir: PathBuf::from(root),
        }
    }

    /// A cache rooted at an explicit directory (tests, scratch checks).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        RunCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Published location of one run key's record.
    pub fn record_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{}.json", key.replace(['|', '[', ']'], "_")))
    }

    /// Decode the published record for `key`, if present and current.
    pub fn load(&self, key: &str) -> Option<RunRecord> {
        load_path(&self.record_path(key))
    }

    /// Run (or load, or join an in-flight simulation of) one benchmark
    /// under one configuration. Builds the workload itself on a miss.
    pub fn get_or_run(&self, cfg: &SimConfig, bench: Benchmark) -> (RunRecord, RunSource) {
        self.get_or_run_with(cfg, bench, None)
    }

    /// [`Self::get_or_run`] with an optionally pre-built workload, so a
    /// sweep builds each `(benchmark, core-count)` script set once and
    /// shares it immutably across workers instead of rebuilding per run.
    pub fn get_or_run_with(
        &self,
        cfg: &SimConfig,
        bench: Benchmark,
        workload: Option<&BuiltWorkload>,
    ) -> (RunRecord, RunSource) {
        let (rec, source, _, _) = self.get_or_run_profiled(cfg, bench, workload);
        (rec, source)
    }

    /// [`Self::get_or_run_with`], additionally returning the host
    /// self-profile and network microscope profile of the simulation.
    /// The host profile is `Some` only when this call actually simulated
    /// *and* [`profiling_enabled`] — cache hits and joins do no
    /// attributable host work — and covers workload build through record
    /// publication (`setup` … `export` laps). The network profile is
    /// `Some` only for simulated runs with [`netprof_enabled`].
    pub fn get_or_run_profiled(
        &self,
        cfg: &SimConfig,
        bench: Benchmark,
        workload: Option<&BuiltWorkload>,
    ) -> (
        RunRecord,
        RunSource,
        Option<HostProfile>,
        Option<NetProfile>,
    ) {
        self.get_or_run_observed(cfg, bench, workload, &FlightHandle::disabled(), 0)
    }

    /// [`Self::get_or_run_profiled`] with the sweep flight recorder
    /// attached: emits this call's lifecycle spans (`claim` — cache
    /// probe, single-flight race, or condvar wait — then `simulate` and
    /// `publish` on the leader path) under worker index `worker`, plus
    /// exactly one cache-outcome event (`hit`/`miss`/`wait`, with the
    /// `torn` flag when a miss recovered a truncated record). With a
    /// disabled handle this is [`Self::get_or_run_profiled`]: one
    /// branch per would-be event, nothing recorded.
    pub fn get_or_run_observed(
        &self,
        cfg: &SimConfig,
        bench: Benchmark,
        workload: Option<&BuiltWorkload>,
        flight: &FlightHandle,
        worker: u64,
    ) -> (
        RunRecord,
        RunSource,
        Option<HostProfile>,
        Option<NetProfile>,
    ) {
        let key = run_key(cfg, bench);
        let path = self.record_path(&key);
        let t_enter = flight.now();
        if let Some(rec) = load_path(&path) {
            flight.span(worker, SpanKind::Claim, Some(&key), t_enter, flight.now());
            flight.cache(&key, CacheOutcome::Hit, false);
            return (rec, RunSource::CacheHit, None, None);
        }

        // Single-flight: first requester of a key becomes the leader and
        // simulates; concurrent requesters block and clone its result.
        // The table is keyed by (dir, key) so distinct caches never
        // dedup against each other.
        let flights = flight_table();
        let flight_key = format!("{}::{key}", self.dir.display());
        let (inflight, leader) = {
            let mut map = lock_ok(flights);
            match map.get(&flight_key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::default());
                    map.insert(flight_key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            let mut state = lock_ok(&inflight.state);
            while matches!(*state, FlightState::Pending) {
                state = inflight
                    .done
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            return match &*state {
                FlightState::Done(rec) => {
                    flight.span(worker, SpanKind::Claim, Some(&key), t_enter, flight.now());
                    flight.cache(&key, CacheOutcome::Wait, false);
                    ((**rec).clone(), RunSource::Joined, None, None)
                }
                FlightState::Failed => panic!("concurrent simulation of `{key}` failed"),
                FlightState::Pending => unreachable!("condvar loop exits only when settled"),
            };
        }

        // Leader path. The guard settles the flight as Failed if the
        // simulation panics, so joiners propagate the failure instead of
        // waiting forever.
        let guard = FlightGuard {
            flights,
            flight_key,
            flight: &inflight,
            settled: false,
        };
        // Re-check under flight ownership: another *process* may have
        // published while this one raced to the table.
        let (rec, source, profile, netprof) = match probe_path(&path) {
            RecordProbe::Ready(rec) => {
                flight.span(worker, SpanKind::Claim, Some(&key), t_enter, flight.now());
                flight.cache(&key, CacheOutcome::Hit, false);
                (*rec, RunSource::CacheHit, None, None)
            }
            probe => {
                // A torn probe (file present, record undecodable —
                // truncated write or stale schema) recovers by
                // re-simulating; the journal keeps the recovery visible.
                let torn = matches!(probe, RecordProbe::Torn);
                let t_sim = flight.now();
                flight.span(worker, SpanKind::Claim, Some(&key), t_enter, t_sim);
                let prof = if profiling_enabled() {
                    HostProfiler::enabled_with_netprof(netprof_enabled())
                        .with_net_sampling(netprof_sample_log2())
                } else {
                    HostProfiler::disabled()
                };
                let (rec, netprof) = simulate(cfg, bench, workload, &key, &prof);
                let t_pub = flight.now();
                flight.span(worker, SpanKind::Simulate, Some(&key), t_sim, t_pub);
                publish_atomic(&path, &runjson::encode(&rec))
                    .unwrap_or_else(|e| panic!("cannot publish run cache {}: {e}", path.display()));
                prof.lap(HostPhase::Export);
                flight.span(worker, SpanKind::Publish, Some(&key), t_pub, flight.now());
                flight.cache(&key, CacheOutcome::Miss, torn);
                (rec, RunSource::Simulated, prof.finish(), netprof)
            }
        };
        guard.finish(rec.clone());
        (rec, source, profile, netprof)
    }
}

/// Write `contents` to `path` atomically: a temp file in the target
/// directory, then a same-filesystem `rename`. Concurrent readers see
/// the old bytes, the new bytes, or no file — never a torn record; a
/// crash mid-write leaves a stray `.tmp` file, not a truncated record.
pub fn publish_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let dir = dir.unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let name = path
        .file_name()
        .map_or_else(|| "record".into(), |n| n.to_string_lossy().into_owned());
    // The pid suffix keeps concurrent *processes* off each other's temp
    // files; within one process the single-flight table already
    // guarantees one writer per key.
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// What a cache-file probe found. Distinguishing *absent* from *torn*
/// (file reads but the record does not decode — truncated write from a
/// crashed process, or a stale schema) exists purely for the flight
/// journal: both recover identically by re-simulating.
enum RecordProbe {
    Absent,
    Torn,
    Ready(Box<RunRecord>),
}

fn probe_path(path: &Path) -> RecordProbe {
    match fs::read_to_string(path) {
        Err(_) => RecordProbe::Absent,
        Ok(text) => match runjson::decode(&text) {
            Some(rec) => RecordProbe::Ready(Box::new(rec)),
            None => RecordProbe::Torn,
        },
    }
}

fn load_path(path: &Path) -> Option<RunRecord> {
    match probe_path(path) {
        RecordProbe::Ready(rec) => Some(*rec),
        RecordProbe::Absent | RecordProbe::Torn => None,
    }
}

/// Simulate one run, observing per-class latency histograms through a
/// worker-local collector and host phase time through `prof` (which
/// shares its lap timeline with the engine; the caller laps `export`
/// after publishing and snapshots the profile).
fn simulate(
    cfg: &SimConfig,
    bench: Benchmark,
    shared: Option<&BuiltWorkload>,
    key: &str,
    prof: &HostProfiler,
) -> (RunRecord, Option<NetProfile>) {
    eprintln!("  [sim] {key}");
    let start = std::time::Instant::now();
    let built;
    let workload = match shared {
        Some(w) => w,
        None => {
            built = bench.build(cfg.topo.cores(), Scale::Paper);
            &built
        }
    };
    // Per-worker collector: `ProbeHandle` is `Rc`-based and `!Send`, so
    // each pool worker constructs its own pair inside its thread — two
    // workers can never interleave events into one collector. The same
    // confinement applies to the `HostProfiler` clone handed down here
    // and to the `NetProfile` observer below: cross-worker aggregation
    // happens by `NetProfile::merge` after the fact, in run-key order.
    let (collector, probe) = TraceCollector::metrics_worker();
    let netobs =
        netprof_enabled().then(|| std::rc::Rc::new(std::cell::RefCell::new(NetProfile::new())));
    let obs = netobs.as_ref().map_or_else(NetObsHandle::disabled, |c| {
        NetObsHandle::attach(std::rc::Rc::clone(c))
    });
    prof.lap(HostPhase::Setup);
    let result = atac::sim::run_observed(cfg, workload, probe, None, prof.clone(), obs);
    eprintln!(
        "  [sim] {key} done in {:.1}s ({} cycles)",
        start.elapsed().as_secs_f64(),
        result.cycles
    );
    let latency = collector
        .borrow()
        .net_histograms()
        .into_iter()
        .map(|(s, k, h)| (format!("{}/{}", s.name(), k.name()), h.clone()))
        .collect();
    prof.lap(HostPhase::Export);
    // All observer clones died with the engine's network object, so the
    // worker holds the sole reference to its collected profile.
    let netprof = netobs.map(|c| {
        std::rc::Rc::try_unwrap(c)
            .expect("network observer handle leaked past the run")
            .into_inner()
    });
    let rec = RunRecord {
        cycles: result.cycles,
        instructions: result.instructions,
        ipc: result.ipc,
        net: result.net,
        coh: result.coh,
        latency,
    };
    (rec, netprof)
}

// ----------------------------------------------------------------------
// Single-flight machinery
// ----------------------------------------------------------------------

#[derive(Debug)]
enum FlightState {
    Pending,
    Done(Box<RunRecord>),
    Failed,
}

#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Default for Flight {
    fn default() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }
}

fn flight_table() -> &'static Mutex<HashMap<String, Arc<Flight>>> {
    static FLIGHTS: OnceLock<Mutex<HashMap<String, Arc<Flight>>>> = OnceLock::new();
    FLIGHTS.get_or_init(Mutex::default)
}

/// Recover from mutex poisoning: every guarded section here performs a
/// single whole-value assignment or map mutation, so the data is
/// consistent even if a holder panicked.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Settles the leader's flight exactly once: `finish` on success, `Drop`
/// (unwind) marks it failed. Either way the flight leaves the table and
/// waiters wake.
struct FlightGuard<'a> {
    flights: &'static Mutex<HashMap<String, Arc<Flight>>>,
    flight_key: String,
    flight: &'a Arc<Flight>,
    settled: bool,
}

impl FlightGuard<'_> {
    fn finish(mut self, rec: RunRecord) {
        self.settle(FlightState::Done(Box::new(rec)));
        self.settled = true;
    }

    fn settle(&self, state: FlightState) {
        *lock_ok(&self.flight.state) = state;
        self.flight.done.notify_all();
        lock_ok(self.flights).remove(&self.flight_key);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.settled {
            self.settle(FlightState::Failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_paths_sanitize_key_punctuation() {
        let cache = RunCache::at("/tmp/x");
        let p = cache.record_path("8x8|atac[distance-15]|flit64");
        let name = p.file_name().expect("file name").to_string_lossy();
        assert_eq!(name, "8x8_atac_distance-15__flit64.json");
    }

    #[test]
    fn publish_atomic_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("atac-publish-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("rec.json");
        publish_atomic(&path, "{\"k\": 1}").expect("publish");
        assert_eq!(fs::read_to_string(&path).expect("read back"), "{\"k\": 1}");
        let names: Vec<String> = fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["rec.json"], "temp file must be renamed away");
        // Overwrite goes through the same protocol.
        publish_atomic(&path, "{\"k\": 2}").expect("republish");
        assert_eq!(fs::read_to_string(&path).expect("read back"), "{\"k\": 2}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_names_are_stable() {
        assert_eq!(RunSource::CacheHit.name(), "cache-hit");
        assert_eq!(RunSource::Simulated.name(), "simulated");
        assert_eq!(RunSource::Joined.name(), "joined");
    }
}
