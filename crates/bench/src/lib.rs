//! Support library for the figure/table regeneration harness.
//!
//! Each `src/bin/figNN_*.rs` binary regenerates one table or figure of
//! the paper. Full-system runs at 1024 cores take seconds each and many
//! figures share the same underlying runs (e.g. the photonic scenarios of
//! Fig. 7 differ only in *energy integration*, not timing), so runs are
//! cached: completed run records (event counters + completion time) are
//! persisted as JSON under `target/atac-results/` and reused across
//! binaries. Delete that directory to force re-simulation.
//!
//! The cache files are JSON (justified in DESIGN.md: the cache is what
//! makes regenerating all ~20 figures tractable on one machine; JSON
//! keeps it human-inspectable), written and parsed by the in-tree
//! [`runjson`] module — the workspace builds offline with no external
//! crates.

use std::collections::BTreeMap;

use atac::coherence::{CoherenceStats, ProtocolKind};
use atac::net::NetStats;
use atac::phys::units::{JouleSeconds, Joules, Seconds};
use atac::prelude::*;
use atac::sim::energy::integrate;

pub mod cache;
pub mod costs;
pub mod executor;
pub mod plans;
pub mod runjson;

pub use cache::{
    flight_enabled, netprof_enabled, netprof_sample_log2, profiling_enabled, publish_atomic,
    RunCache, RunSource,
};
pub use costs::CostModel;
pub use executor::{
    jobs_from_env, write_flight, ExecOptions, ExecutorStats, RunPlan, RunTiming, SweepLog,
    SweepReport,
};

/// A cached full-system run: everything needed to recompute energy under
/// any photonic scenario / receive-net flavor without re-simulating.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Completion time in cycles.
    pub cycles: u64,
    /// Total instructions executed.
    pub instructions: u64,
    /// Average per-core IPC.
    pub ipc: f64,
    /// Network event counters.
    pub net: NetStats,
    /// Memory-subsystem event counters.
    pub coh: CoherenceStats,
    /// Per-class message-latency distributions, keyed
    /// `"<subnet>/<kind>"` (e.g. `"onet/broadcast"`), in the collector's
    /// display order. Histograms merge across runs, so records can be
    /// aggregated without the raw samples.
    pub latency: Vec<(String, atac::trace::Histogram)>,
}

impl RunRecord {
    /// Recompute the energy breakdown for this run under `cfg` (which
    /// must describe the same *timing* configuration, but may vary the
    /// photonic scenario, receive net, or core NDD fraction — none of
    /// which affect timing).
    pub fn energy(&self, cfg: &SimConfig) -> EnergyBreakdown {
        integrate(cfg, &self.net, &self.coh, self.cycles, self.ipc)
    }

    /// Runtime under `cfg`'s clock.
    pub fn runtime(&self, cfg: &SimConfig) -> Seconds {
        cfg.cycle_time() * self.cycles as f64
    }

    /// Energy-delay product under `cfg`.
    pub fn edp(&self, cfg: &SimConfig) -> JouleSeconds {
        self.energy(cfg).total() * self.runtime(cfg)
    }

    /// All message classes' latency histograms merged into one
    /// distribution (histograms are mergeable without raw samples).
    pub fn merged_latency(&self) -> atac::trace::Histogram {
        let mut all = atac::trace::Histogram::new();
        for (_, h) in &self.latency {
            all.merge(h);
        }
        all
    }
}

/// The figure-level metrics of one run, as recorded into the run-history
/// registry (`BENCH_history.jsonl` via `atac-report`): everything a
/// cross-PR regression gate compares, detached from the full counter set.
///
/// Simulated metrics (`cycles` … `edp`) are deterministic per the cache's
/// contract and gate by exact match; the latency percentiles come from
/// the merged per-class histograms and are equally exact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The run key (see [`run_key`]).
    pub key: String,
    /// Benchmark name (the trailing run-key component, kept parsed).
    pub bench: String,
    /// Completion time in cycles.
    pub cycles: u64,
    /// Total instructions executed.
    pub instructions: u64,
    /// Average per-core IPC.
    pub ipc: f64,
    /// Runtime under the run's clock.
    pub runtime: Seconds,
    /// Total energy under the run's configuration.
    pub energy: Joules,
    /// Energy-delay product.
    pub edp: JouleSeconds,
    /// Median message latency in cycles (merged across classes).
    pub latency_p50: u64,
    /// 95th-percentile message latency in cycles.
    pub latency_p95: u64,
    /// 99th-percentile message latency in cycles.
    pub latency_p99: u64,
    /// Exact maximum message latency in cycles.
    pub latency_max: u64,
    /// Messages across every class histogram.
    pub latency_count: u64,
}

impl RunSummary {
    /// Summarize one cached record under the configuration it ran with.
    pub fn from_record(cfg: &SimConfig, bench: Benchmark, rec: &RunRecord) -> Self {
        let lat = rec.merged_latency();
        RunSummary {
            key: run_key(cfg, bench),
            bench: bench.name().to_string(),
            cycles: rec.cycles,
            instructions: rec.instructions,
            ipc: rec.ipc,
            runtime: rec.runtime(cfg),
            energy: rec.energy(cfg).total(),
            edp: rec.edp(cfg),
            latency_p50: lat.p50(),
            latency_p95: lat.p95(),
            latency_p99: lat.p99(),
            latency_max: lat.max(),
            latency_count: lat.count(),
        }
    }
}

/// Stable identifier for a (timing-relevant) configuration × benchmark.
pub fn run_key(cfg: &SimConfig, bench: Benchmark) -> String {
    let arch = match cfg.arch {
        Arch::EMeshPure => "emesh-pure".to_string(),
        Arch::EMeshBcast => "emesh-bcast".to_string(),
        Arch::Atac(policy, _) => format!("atac[{}]", policy.name()),
    };
    let proto = match cfg.protocol {
        ProtocolKind::AckWise { k } => format!("ackwise{k}"),
        ProtocolKind::DirB { k } => format!("dir{k}b"),
    };
    format!(
        "{}x{}|{}|flit{}|buf{}|{}|{}",
        cfg.topo.width,
        cfg.topo.height,
        arch,
        cfg.flit_width,
        cfg.buffer_depth,
        proto,
        bench.name(),
    )
}

/// Run (or load from cache) one benchmark under one configuration, via
/// the default [`RunCache`]. Safe to call from concurrent workers: the
/// cache layer deduplicates in-flight keys and publishes atomically.
pub fn run_cached(cfg: &SimConfig, bench: Benchmark) -> RunRecord {
    RunCache::from_env().get_or_run(cfg, bench).0
}

/// The benchmark subset to evaluate: all eight by default, overridable
/// with `ATAC_BENCHES=radix,barnes` for quick passes.
pub fn benchmarks() -> Vec<Benchmark> {
    match std::env::var("ATAC_BENCHES") {
        Ok(list) => {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            Benchmark::ALL
                .into_iter()
                .filter(|b| wanted.contains(&b.name()))
                .collect()
        }
        Err(_) => Benchmark::ALL.to_vec(),
    }
}

/// The chip size to evaluate: the paper's 1024 cores by default,
/// `ATAC_CORES=64|256` for quick passes.
pub fn topology() -> Topology {
    match std::env::var("ATAC_CORES").as_deref() {
        Ok("64") => Topology::small(8, 4),
        Ok("256") => Topology::small(16, 4),
        _ => Topology::atac_1024(),
    }
}

/// Default configuration for the evaluated chip (Table I + ATAC+).
pub fn base_config() -> SimConfig {
    SimConfig {
        topo: topology(),
        ..SimConfig::default()
    }
}

// ----------------------------------------------------------------------
// Output formatting
// ----------------------------------------------------------------------

/// Print a figure/table header with provenance.
pub fn header(id: &str, caption: &str) {
    println!("\n=== {id} — {caption} ===");
}

/// A simple aligned table printer: rows of (label, values).
#[derive(Debug)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl Table {
    /// Create a table with the given value-column names.
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Set decimal places for values.
    pub fn precision(mut self, p: usize) -> Self {
        self.precision = p;
        self
    }

    /// Append a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        let v = values;
        assert_eq!(v.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), v));
    }

    /// Render to stdout.
    pub fn print(&self) {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(9))
            .max()
            .unwrap_or(9);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(self.precision + 6))
            .collect::<Vec<_>>();
        print!("{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&col_w) {
            print!("  {c:>w$}");
        }
        println!();
        for (label, values) in &self.rows {
            print!("{label:label_w$}");
            for (v, w) in values.iter().zip(&col_w) {
                print!("  {v:>w$.p$}", p = self.precision);
            }
            println!();
        }
    }

    /// Access rows (for tests).
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }
}

/// Geometric mean (the paper's cross-benchmark summary statistic for
/// ratios like EDP).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Sum per-key values across benchmarks into an average breakdown map.
pub fn average_maps(maps: &[BTreeMap<String, f64>]) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for m in maps {
        for (k, v) in m {
            *out.entry(k.clone()).or_insert(0.0) += v / maps.len() as f64;
        }
    }
    out
}

/// Decompose an [`EnergyBreakdown`] into the Fig. 7 stack categories.
pub fn fig7_categories(e: &EnergyBreakdown) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    m.insert("laser".into(), e.laser.value());
    m.insert("ring_tuning".into(), e.ring_tuning.value());
    m.insert("optical_other".into(), e.optical_other.value());
    m.insert("emesh".into(), (e.emesh_dynamic + e.emesh_static).value());
    m.insert("receive_net+hub".into(), (e.receive_net + e.hub).value());
    m.insert("l1i".into(), (e.l1i_dynamic + e.l1i_static).value());
    m.insert("l1d".into(), (e.l1d_dynamic + e.l1d_static).value());
    m.insert("l2".into(), (e.l2_dynamic + e.l2_static).value());
    m.insert("directory".into(), (e.dir_dynamic + e.dir_static).value());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_key_distinguishes_configs() {
        let a = run_key(&base_config(), Benchmark::Radix);
        let b = run_key(
            &SimConfig {
                flit_width: 128,
                ..base_config()
            },
            Benchmark::Radix,
        );
        let c = run_key(&base_config(), Benchmark::Barnes);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row("x", vec![1.0, 2.0]);
        assert_eq!(t.rows().len(), 1);
        t.print();
    }

    /// One combined test so the env-var manipulation cannot race across
    /// parallel test threads.
    #[test]
    fn cache_roundtrip_and_scenario_reintegration() {
        std::env::set_var("ATAC_RESULTS_DIR", "/tmp/atac-test-results");
        let _ = std::fs::remove_dir_all("/tmp/atac-test-results");
        let cfg = SimConfig {
            topo: Topology::small(8, 4),
            ..SimConfig::default()
        };
        // Scale::Paper on 64 cores is small; second call must hit cache.
        let a = run_cached(&cfg, Benchmark::LuContig);
        let b = run_cached(&cfg, Benchmark::LuContig);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.net, b.net);

        // Scenario changes re-integrate without re-simulating.
        let practical = a.energy(&cfg).network().value();
        let cons = a
            .energy(&SimConfig {
                scenario: PhotonicScenario::Conservative,
                ..cfg.clone()
            })
            .network()
            .value();
        assert!(cons > practical);
        std::env::remove_var("ATAC_RESULTS_DIR");
    }
}
