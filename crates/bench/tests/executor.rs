//! Executor + cache semantics under concurrency — the determinism
//! contract (parallel sweep ⇒ byte-identical records to a serial one),
//! single-flight dedup, and torn-record recovery.
//!
//! All caches live under `CARGO_TARGET_TMPDIR` via [`RunCache::at`];
//! nothing here touches `ATAC_RESULTS_DIR`, so these tests cannot race
//! the env-var-mutating unit test in the library.

use std::path::PathBuf;

use atac::prelude::*;
use atac_bench::{run_key, RunCache, RunPlan, RunSource};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 64-core chip (the `ATAC_CORES=64` smoke size), independent of the
/// environment.
fn small_config() -> SimConfig {
    SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    }
}

fn small_plan() -> RunPlan {
    let mut plan = RunPlan::new();
    for b in [Benchmark::LuContig, Benchmark::Barnes] {
        plan.add(small_config(), b);
        plan.add(
            SimConfig {
                arch: Arch::EMeshBcast,
                ..small_config()
            },
            b,
        );
    }
    plan
}

#[test]
fn parallel_and_serial_sweeps_produce_byte_identical_records() {
    let plan = small_plan();
    assert_eq!(plan.len(), 4);

    let serial_cache = RunCache::at(scratch("exec-serial"));
    let serial = plan.execute_on(&serial_cache, 1);
    assert_eq!(serial.simulated(), 4);

    let parallel_cache = RunCache::at(scratch("exec-parallel"));
    let parallel = plan.execute_on(&parallel_cache, 4);
    assert_eq!(parallel.jobs, 4);
    assert_eq!(
        parallel.simulated() + parallel.cached_hits,
        4,
        "every key obtained exactly once"
    );

    for (cfg, bench) in plan.entries() {
        let key = run_key(cfg, *bench);
        let a = std::fs::read(serial_cache.record_path(&key)).expect("serial record");
        let b = std::fs::read(parallel_cache.record_path(&key)).expect("parallel record");
        assert!(!a.is_empty());
        assert_eq!(a, b, "records for `{key}` must be byte-identical");
    }

    // Atomic publication must not leave temp files behind.
    for cache in [&serial_cache, &parallel_cache] {
        for entry in std::fs::read_dir(cache.dir()).expect("cache dir") {
            let name = entry
                .expect("entry")
                .file_name()
                .to_string_lossy()
                .into_owned();
            assert!(
                name.ends_with(".json"),
                "stray non-record file in cache: {name}"
            );
        }
    }

    // A second parallel pass over a warm cache simulates nothing.
    let warm = plan.execute_on(&parallel_cache, 4);
    assert_eq!(warm.simulated(), 0);
    assert_eq!(warm.cached_hits, 4);
}

#[test]
fn single_flight_dedups_concurrent_requests_for_one_key() {
    let cache = RunCache::at(scratch("exec-singleflight"));
    let cfg = small_config();
    let barrier = std::sync::Barrier::new(2);

    let sources: Vec<RunSource> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    cache.get_or_run(&cfg, Benchmark::LuContig).1
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    let simulated = sources
        .iter()
        .filter(|&&s| s == RunSource::Simulated)
        .count();
    assert_eq!(
        simulated, 1,
        "exactly one thread simulates; got {sources:?}"
    );
    // The other thread either joined the in-flight run or (if the leader
    // finished inside the race window) read the published record.
    assert!(sources
        .iter()
        .all(|&s| s != RunSource::Simulated || simulated == 1));
}

#[test]
fn truncated_cache_record_is_resimulated_and_replaced() {
    let cache = RunCache::at(scratch("exec-torn"));
    let cfg = small_config();
    let (original, source) = cache.get_or_run(&cfg, Benchmark::LuContig);
    assert_eq!(source, RunSource::Simulated);

    // Tear the published record in half, as a crashed non-atomic writer
    // would have (the bug the temp-file + rename protocol prevents).
    let key = run_key(&cfg, Benchmark::LuContig);
    let path = cache.record_path(&key);
    let text = std::fs::read_to_string(&path).expect("record");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    assert!(
        cache.load(&key).is_none(),
        "a torn record must decode to None, not garbage"
    );
    let (healed, source) = cache.get_or_run(&cfg, Benchmark::LuContig);
    assert_eq!(source, RunSource::Simulated, "torn record re-simulates");
    assert_eq!(healed.cycles, original.cycles, "determinism");
    assert_eq!(
        std::fs::read_to_string(&path).expect("healed record"),
        text,
        "republished record restores the original bytes"
    );
}
