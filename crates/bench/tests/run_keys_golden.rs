//! Golden-file pin of the `run_key` vocabulary.
//!
//! The run-history registry (`BENCH_history.jsonl`) and the regression
//! gate key every record by `run_key` string. A silent change to the
//! key format — a renamed arch label, a reordered component, a new
//! timing-relevant field — would orphan every baseline record without
//! any test noticing: the gate would report all keys as `new`+`missing`
//! instead of comparing them. This test pins the exact key strings of
//! the full figure suite (and of the CI smoke subset the committed
//! baseline holds) against `tests/golden/run_keys.txt`.
//!
//! If the format change is *intentional*, regenerate the golden file
//! from the `actual` dump this test writes on failure, and re-seed
//! `BENCH_history.jsonl` in the same PR — stale baselines are exactly
//! what this pin exists to prevent.
//!
//! One `#[test]` on purpose: the suite depends on `ATAC_CORES` /
//! `ATAC_BENCHES`, and env vars are process-global — a second test in
//! this binary could race the mutations. Integration tests run in their
//! own process, so the mutations cannot leak into other test binaries.

use std::collections::BTreeSet;

use atac_bench::{plans, run_key};

const GOLDEN: &str = include_str!("golden/run_keys.txt");

fn suite_keys() -> BTreeSet<String> {
    plans::full_suite()
        .entries()
        .iter()
        .map(|(cfg, b)| run_key(cfg, *b))
        .collect()
}

#[test]
fn run_key_strings_match_the_golden_file() {
    // Default suite: the paper's 1024-core chip, all eight benchmarks.
    std::env::remove_var("ATAC_CORES");
    std::env::remove_var("ATAC_BENCHES");
    let mut actual: Vec<String> = suite_keys().into_iter().collect();

    // The CI smoke subset — the keys the committed baseline records.
    std::env::set_var("ATAC_CORES", "64");
    std::env::set_var("ATAC_BENCHES", "radix,barnes");
    actual.extend(suite_keys());
    std::env::remove_var("ATAC_CORES");
    std::env::remove_var("ATAC_BENCHES");

    let expected: Vec<String> = GOLDEN
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();

    if actual != expected {
        let dump = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("run_keys_actual.txt");
        let mut text = String::from(
            "# Golden run_key strings: full 1024-core suite, then the CI smoke subset.\n\
             # Regenerated from this dump ONLY for intentional key-format changes —\n\
             # re-seed BENCH_history.jsonl in the same PR, or the gate goes blind.\n",
        );
        for k in &actual {
            text.push_str(k);
            text.push('\n');
        }
        std::fs::write(&dump, &text).expect("write actual dump");
        let missing: Vec<&String> = expected.iter().filter(|k| !actual.contains(k)).collect();
        let added: Vec<&String> = actual.iter().filter(|k| !expected.contains(k)).collect();
        panic!(
            "run_key vocabulary drifted from tests/golden/run_keys.txt\n\
             {} key(s) no longer produced, e.g. {:?}\n\
             {} new key(s), e.g. {:?}\n\
             full actual set dumped to {}",
            missing.len(),
            missing.first(),
            added.len(),
            added.first(),
            dump.display()
        );
    }
}
