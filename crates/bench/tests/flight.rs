//! Flight-recorder reconciliation — the observer-only contract.
//!
//! The journal must *describe* a sweep exactly (spans tile each worker,
//! cache outcomes account for every planned key, the JSONL round-trips
//! bit-exactly) while *changing nothing*: a sweep recorded under
//! `ATAC_FLIGHT` — and reordered by the cost-aware scheduler — publishes
//! records byte-identical to a bare serial pass.
//!
//! All caches live under `CARGO_TARGET_TMPDIR` via [`RunCache::at`];
//! nothing here touches `ATAC_RESULTS_DIR` or the environment knobs, so
//! these tests cannot race the env-var-mutating unit tests.

use std::path::PathBuf;

use atac::prelude::*;
use atac::trace::{parse_flight, reconcile, validate_flight_jsonl, CacheOutcome, SpanKind};
use atac_bench::{run_key, CostModel, ExecOptions, RunCache, RunPlan};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config() -> SimConfig {
    SimConfig {
        topo: Topology::small(8, 4),
        ..SimConfig::default()
    }
}

fn small_plan() -> RunPlan {
    let mut plan = RunPlan::new();
    for b in [Benchmark::LuContig, Benchmark::Barnes] {
        plan.add(small_config(), b);
        plan.add(
            SimConfig {
                arch: Arch::EMeshBcast,
                ..small_config()
            },
            b,
        );
    }
    plan
}

/// Recording options: flight on, no progress line, no cost model.
fn flight_opts() -> ExecOptions {
    ExecOptions {
        flight: true,
        costs: CostModel::default(),
        progress: false,
    }
}

#[test]
fn cold_sweep_journal_reconciles_and_roundtrips() {
    let plan = small_plan();
    let cache = RunCache::at(scratch("flight-cold"));
    let report = plan.execute_with(&cache, 3, &flight_opts());
    let log = report.flight.as_ref().expect("flight journal recorded");

    // Framing matches the pass.
    assert_eq!(log.jobs, 3);
    assert_eq!(log.planned, plan.len() as u64);
    assert_eq!(log.runs, report.simulated() as u64, "all four simulated");
    assert!(log.wall_s > 0.0);

    // Every structural invariant holds, by the library's own check…
    reconcile(log).expect("journal reconciles");

    // …and by direct count: simulate spans == runs executed, and the
    // cache settled every planned key exactly once.
    let sims = log
        .spans()
        .filter(|&(_, kind, ..)| kind == SpanKind::Simulate)
        .count() as u64;
    assert_eq!(sims, log.runs);
    let outcomes = log.outcome_count(CacheOutcome::Hit)
        + log.outcome_count(CacheOutcome::Miss)
        + log.outcome_count(CacheOutcome::Wait);
    assert_eq!(outcomes, log.planned);
    assert_eq!(log.outcome_count(CacheOutcome::Miss), log.runs);

    // Per-worker spans tile without overlap.
    for w in 0..log.jobs {
        let mut spans: Vec<(f64, f64)> = log
            .spans()
            .filter(|&(worker, ..)| worker == w)
            .map(|(_, _, _, start, end)| (start, end))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in spans.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0 + 1e-9,
                "worker {w} spans overlap: {pair:?}"
            );
        }
    }

    // The journal validates and round-trips bit-exactly through JSONL.
    let jsonl = log.to_jsonl();
    let summary = validate_flight_jsonl(&jsonl).expect("journal validates");
    assert_eq!(summary.jobs, 3);
    assert_eq!(summary.misses, log.runs);
    let back = parse_flight(&jsonl).expect("parses back");
    assert_eq!(&back, log, "bit-exact journal round-trip");

    // RSS sampling observed a live process.
    assert!(log.peak_rss_bytes > 0, "peak RSS sampled from /proc");
    assert_eq!(report.peak_rss_bytes, log.peak_rss_bytes);
}

#[test]
fn warm_rerun_journal_is_all_hits_and_still_reconciles() {
    let plan = small_plan();
    let cache = RunCache::at(scratch("flight-warm"));
    let cold = plan.execute_with(&cache, 2, &ExecOptions::default());
    assert!(cold.flight.is_none(), "flight off records no journal");
    assert_eq!(cold.simulated(), plan.len());

    let warm = plan.execute_with(&cache, 2, &flight_opts());
    let log = warm.flight.as_ref().expect("journal recorded");
    assert_eq!(log.runs, 0, "warm cache simulates nothing");
    assert_eq!(log.outcome_count(CacheOutcome::Hit), log.planned);
    reconcile(log).expect("an all-hit journal still reconciles");
}

#[test]
fn recorded_and_cost_ordered_sweep_is_byte_identical_to_a_bare_one() {
    let plan = small_plan();

    // Reference: a bare serial pass, no observer, declared order.
    let bare_cache = RunCache::at(scratch("flight-bare"));
    let bare = plan.execute_on(&bare_cache, 1);
    assert_eq!(bare.simulated(), plan.len());

    // Observed: parallel, flight journal on, and a cost model that
    // inverts the declared order (later keys priced longest).
    let mut opts = flight_opts();
    for (i, (cfg, bench)) in plan.entries().iter().enumerate() {
        opts.costs.insert(run_key(cfg, *bench), (i + 1) as f64);
    }
    let observed_cache = RunCache::at(scratch("flight-observed"));
    let observed = plan.execute_with(&observed_cache, 4, &opts);
    let log = observed.flight.as_ref().expect("journal recorded");
    reconcile(log).expect("reconciles under reordering");

    for (cfg, bench) in plan.entries() {
        let key = run_key(cfg, *bench);
        let a = std::fs::read(bare_cache.record_path(&key)).expect("bare record");
        let b = std::fs::read(observed_cache.record_path(&key)).expect("observed record");
        assert_eq!(a, b, "flight+scheduling must not change `{key}` bytes");
    }

    // The sweep summaries (what lands in BENCH_sweep.json and feeds the
    // gate) are identical too — observer data stays out of metrics.
    let mut a = bare.summaries.clone();
    let mut b = observed.summaries.clone();
    a.sort_by(|x, y| x.key.cmp(&y.key));
    b.sort_by(|x, y| x.key.cmp(&y.key));
    assert_eq!(a, b, "run summaries are independent of observation");
}
