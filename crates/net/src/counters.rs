//! A declaration macro for event-counter structs.
//!
//! Counter structs ([`crate::NetStats`], `atac_coherence::CoherenceStats`)
//! are flat bags of `u64` event counts that need three behaviors kept in
//! lock-step with the field list: accumulation (`merge`), name/value
//! enumeration (the bench harness's JSON run cache), and name-directed
//! assignment (cache loading). Declaring the struct through this macro
//! makes the field list exist exactly once, so adding a counter can never
//! silently miss one of those — the drift class the `atac-audit` linter
//! hunts elsewhere.

/// Declare an event-counter struct plus `merge`, `FIELD_NAMES`,
/// `fields()` and `set_field()` from one field list.
#[macro_export]
macro_rules! counters_struct {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                pub $field:ident: u64,
            )*
        }
    ) => {
        $(#[$meta])*
        pub struct $name {
            $(
                $(#[$fmeta])*
                pub $field: u64,
            )*
        }

        impl $name {
            /// Every counter field, in declaration order.
            pub const FIELD_NAMES: &'static [&'static str] = &[
                $( stringify!($field), )*
            ];

            /// Name/value pairs for every counter, in declaration order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($field), self.$field), )* ]
            }

            /// Assign a counter by name; `false` if the name is unknown
            /// (callers treat that as a stale serialized record).
            pub fn set_field(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $( stringify!($field) => { self.$field = value; true } )*
                    _ => false,
                }
            }

            /// Accumulate another run's counters into this one.
            pub fn merge(&mut self, other: &Self) {
                $( self.$field += other.$field; )*
            }
        }
    };
}
