//! Open-loop synthetic-traffic harness.
//!
//! Drives any [`Network`] with the workload of the paper's Fig. 3:
//! uniform-random unicast traffic plus a configurable broadcast fraction
//! (0.1 % in the figure), swept over offered load, measuring average
//! packet latency *including source queueing* — the quantity that blows up
//! at saturation.
//!
//! Open-loop means generation is independent of acceptance: messages the
//! network refuses (back-pressure) wait in an unbounded source queue, and
//! their latency clock starts at *generation* time. Saturation therefore
//! shows up as unbounded latency growth, exactly as in the paper's plot.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::atac::Network;
use crate::types::{CoreId, Cycle, Delivery, Dest, Message, MessageClass};
use atac_trace::{Histogram, HostPhase, HostProfiler};

/// Configuration of one synthetic run.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Offered load in flits per cycle per core.
    pub load: f64,
    /// Fraction of generated messages that are broadcasts (0.001 in Fig. 3).
    pub broadcast_fraction: f64,
    /// Message class for generated traffic (sets flit count).
    pub class: MessageClass,
    /// Warm-up cycles (not measured).
    pub warmup: Cycle,
    /// Measurement window in cycles.
    pub measure: Cycle,
    /// Max additional cycles to wait for measured packets to drain.
    pub drain: Cycle,
    /// PRNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            load: 0.05,
            broadcast_fraction: 0.001,
            class: MessageClass::Synthetic,
            warmup: 1_000,
            measure: 4_000,
            drain: 20_000,
            seed: 0xA7AC,
        }
    }
}

/// Result of one synthetic run.
#[derive(Debug, Clone)]
pub struct SyntheticResult {
    /// Mean generation→delivery latency of packets generated in the
    /// measurement window, in cycles (exact: tracked as a running sum).
    pub avg_latency: f64,
    /// Median latency (log-bucket resolution).
    pub p50_latency: u64,
    /// 95th-percentile latency (log-bucket resolution).
    pub p95_latency: u64,
    /// 99th-percentile latency (log-bucket resolution).
    pub p99_latency: u64,
    /// Exact maximum observed latency.
    pub max_latency: u64,
    /// The full generation→delivery latency distribution.
    pub latency: Histogram,
    /// Packets generated during measurement.
    pub generated: u64,
    /// Deliveries observed for measured packets.
    pub delivered: u64,
    /// Whether the run saturated (measured packets still undelivered at
    /// the drain limit, or source queues grew without bound).
    pub saturated: bool,
    /// Measured throughput: delivered flits / cycle / core over the window.
    pub throughput: f64,
}

/// Run synthetic traffic through a network.
pub fn run_synthetic<N: Network + ?Sized>(net: &mut N, cfg: &SyntheticConfig) -> SyntheticResult {
    run_synthetic_profiled(net, cfg, HostProfiler::default())
}

/// [`run_synthetic`] with host self-profiling: traffic generation and
/// source-queue drain lap as [`HostPhase::Inject`], fabric advancement
/// and delivery accounting as [`HostPhase::Network`], and final result
/// assembly as [`HostPhase::Integrate`]. The profiler only reads the
/// host clock, so the synthetic result is bit-identical to an
/// unprofiled run with the same seed.
pub fn run_synthetic_profiled<N: Network + ?Sized>(
    net: &mut N,
    cfg: &SyntheticConfig,
    prof: HostProfiler,
) -> SyntheticResult {
    let cores = net.cores();
    let flits_per_msg = f64::from(cfg.class.flits(net.flit_width()));
    let gen_prob = (cfg.load / flits_per_msg).min(1.0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Per-message generation times, indexed by token.
    let mut gen_time: Vec<Cycle> = Vec::new();
    // Expected delivery count per token (1 for unicast, cores-1 for bcast).
    let mut expected: Vec<u32> = Vec::new();
    let mut pending: Vec<std::collections::VecDeque<Message>> =
        (0..cores).map(|_| Default::default()).collect();

    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut latency = Histogram::new();
    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut delivered_flits = 0u64;
    let mut outstanding = 0u64; // deliveries still expected for measured pkts

    let total = cfg.warmup + cfg.measure;
    let mut now: Cycle = 0;
    while now < total || (outstanding > 0 && now < total + cfg.drain) {
        if now < total {
            #[allow(clippy::needless_range_loop)] // index is also the CoreId
            for c in 0..cores {
                if rng.gen_bool(gen_prob) {
                    let measured = now >= cfg.warmup;
                    let dest = if rng.gen_bool(cfg.broadcast_fraction) {
                        Dest::Broadcast
                    } else {
                        // uniform random, excluding self
                        let mut d = rng.gen_range(0..cores - 1);
                        if d >= c {
                            d += 1;
                        }
                        Dest::Unicast(CoreId(d as u16))
                    };
                    let token = if measured {
                        gen_time.push(now);
                        expected.push(match dest {
                            Dest::Unicast(_) => 1,
                            Dest::Broadcast => (cores - 1) as u32,
                        });
                        generated += 1;
                        outstanding += u64::from(*expected.last().unwrap());
                        gen_time.len() as u64 // token 0 = unmeasured
                    } else {
                        0
                    };
                    pending[c].push_back(Message {
                        src: CoreId(c as u16),
                        dest,
                        class: cfg.class,
                        token,
                    });
                }
            }
        }
        // Drain source queues into the network.
        #[allow(clippy::needless_range_loop)] // index is also the CoreId
        for c in 0..cores {
            while let Some(&m) = pending[c].front() {
                if net.try_send(m, now) {
                    pending[c].pop_front();
                } else {
                    break;
                }
            }
        }
        prof.lap(HostPhase::Inject);
        net.tick(now);
        net.drain_deliveries(&mut deliveries);
        for d in deliveries.drain(..) {
            if d.msg.token != 0 {
                let t = (d.msg.token - 1) as usize;
                latency.record(d.at - gen_time[t]);
                delivered += 1;
                delivered_flits += u64::from(cfg.class.flits(net.flit_width()));
                outstanding -= 1;
            }
        }
        prof.lap(HostPhase::Network);
        now += 1;
    }

    let saturated = outstanding > 0;
    prof.lap(HostPhase::Integrate);
    SyntheticResult {
        avg_latency: latency.mean(),
        p50_latency: latency.p50(),
        p95_latency: latency.p95(),
        p99_latency: latency.p99(),
        max_latency: latency.max(),
        latency,
        generated,
        delivered,
        saturated,
        throughput: delivered_flits as f64 / cfg.measure as f64 / cores as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atac::AtacNet;
    use crate::mesh::{Mesh, MeshKind};
    use crate::topology::Topology;

    fn small_cfg(load: f64) -> SyntheticConfig {
        SyntheticConfig {
            load,
            warmup: 200,
            measure: 800,
            drain: 30_000,
            ..Default::default()
        }
    }

    #[test]
    fn low_load_low_latency() {
        let mut net = Mesh::new(Topology::small(8, 4), MeshKind::BcastTree, 64, 4);
        let r = run_synthetic(&mut net, &small_cfg(0.01));
        assert!(!r.saturated);
        assert!(r.generated > 0);
        // zero-load mesh latency on an 8×8 mesh ≈ avg 10–25 cycles.
        assert!(r.avg_latency < 40.0, "latency {}", r.avg_latency);
    }

    #[test]
    fn latency_rises_with_load() {
        let t = Topology::small(8, 4);
        let lat = |load: f64| {
            let mut net = Mesh::new(t, MeshKind::BcastTree, 64, 4);
            run_synthetic(&mut net, &small_cfg(load)).avg_latency
        };
        let low = lat(0.01);
        let high = lat(0.30);
        assert!(
            high > low * 1.3,
            "latency should rise with load: {low} → {high}"
        );
    }

    #[test]
    fn saturation_detected_at_extreme_load() {
        let t = Topology::small(8, 4);
        let mut net = Mesh::new(t, MeshKind::Pure, 64, 4);
        let mut cfg = small_cfg(0.9);
        cfg.broadcast_fraction = 0.05; // pure mesh + broadcasts = meltdown
        cfg.drain = 2_000;
        let r = run_synthetic(&mut net, &cfg);
        assert!(r.saturated || r.avg_latency > 200.0);
    }

    #[test]
    fn atac_runs_synthetic() {
        let mut net = AtacNet::atac_plus(Topology::small(8, 4));
        let r = run_synthetic(&mut net, &small_cfg(0.05));
        assert!(!r.saturated);
        assert!(r.avg_latency > 0.0);
        assert!(net.stats().onet_flits_sent > 0 || net.stats().link_traversals > 0);
    }

    #[test]
    fn percentiles_accompany_the_mean() {
        let mut net = Mesh::new(Topology::small(8, 4), MeshKind::BcastTree, 64, 4);
        let r = run_synthetic(&mut net, &small_cfg(0.05));
        assert_eq!(r.latency.count(), r.delivered);
        assert!(r.p50_latency <= r.p95_latency);
        assert!(r.p95_latency <= r.p99_latency);
        assert!(r.p99_latency <= r.max_latency);
        assert!(r.avg_latency <= r.max_latency as f64);
        assert!((r.avg_latency - r.latency.mean()).abs() < 1e-12);
    }

    #[test]
    fn profiled_synthetic_run_is_bit_identical() {
        let t = Topology::small(8, 4);
        let plain = {
            let mut net = AtacNet::atac_plus(t);
            run_synthetic(&mut net, &small_cfg(0.05))
        };
        let prof = HostProfiler::enabled();
        let profiled = {
            let mut net = AtacNet::atac_plus(t);
            run_synthetic_profiled(&mut net, &small_cfg(0.05), prof.clone())
        };
        assert_eq!(plain.generated, profiled.generated);
        assert_eq!(plain.delivered, profiled.delivered);
        assert_eq!(plain.avg_latency.to_bits(), profiled.avg_latency.to_bits());
        let profile = prof.finish().expect("enabled");
        assert!(profile.phase_secs(HostPhase::Inject) > 0.0);
        assert!(profile.phase_secs(HostPhase::Network) > 0.0);
        assert!(profile.coverage() >= 0.9, "coverage {}", profile.coverage());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = Topology::small(8, 4);
        let go = || {
            let mut net = AtacNet::atac_plus(t);
            let r = run_synthetic(&mut net, &small_cfg(0.05));
            (r.generated, r.delivered, r.avg_latency.to_bits())
        };
        assert_eq!(go(), go());
    }
}
