//! The composite ATAC / ATAC+ network: ENet mesh + ONet SWMR links +
//! per-cluster receive networks, under a configurable unicast routing
//! policy.
//!
//! Routing rules (§III-A, §IV-C):
//!
//! * broadcasts always go core →(ENet)→ local hub →(ONet)→ every hub
//!   →(BNet/StarNet)→ cores;
//! * intra-cluster unicasts always use only the ENet;
//! * inter-cluster unicasts depend on the policy:
//!   - **Cluster** (baseline ATAC): always via the ONet;
//!   - **Distance-i** (ATAC+): via the ENet when the sender–receiver
//!     manhattan distance is *below* `i` hops, via the ONet otherwise;
//!   - **Distance-All**: always via the ENet (ONet reserved for
//!     broadcasts).
//!
//! The choice of BNet vs StarNet affects *energy only* (both are 1-cycle,
//! Table I); the network records receive-net flit counters and the energy
//! integration in `atac-sim` applies the per-flit energies of whichever
//! receive net the configuration selects.

use crate::mesh::{Mesh, MeshKind};
use crate::onet::Onet;
use crate::stats::NetStats;
use crate::topology::Topology;
use crate::types::{Cycle, Delivery, Dest, Message};
use atac_trace::{HostProfiler, NetObsHandle, NetSubPhase, ProbeHandle, Subnet};

/// Unicast routing policy for inter-cluster traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Baseline ATAC: all inter-cluster unicasts over the ONet.
    Cluster,
    /// ATAC+ Distance-i: ENet below `i` hops, ONet at or above.
    Distance(u32),
    /// All unicasts over the ENet; ONet only for broadcasts.
    DistanceAll,
}

impl RoutingPolicy {
    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            RoutingPolicy::Cluster => "Cluster".to_string(),
            RoutingPolicy::Distance(i) => format!("Distance-{i}"),
            RoutingPolicy::DistanceAll => "Distance-All".to_string(),
        }
    }
}

/// The per-cluster receive network flavor (energy model selector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveNet {
    /// ATAC's broadcast fan-out tree (always drives all 16 cores).
    BNet,
    /// ATAC+'s 1:16 demux + point-to-point links.
    StarNet,
}

/// A unified interface over all four evaluated networks, letting the
/// full-system simulator and harnesses swap architectures freely.
pub trait Network {
    /// Inject a message; `false` = back-pressure, retry later.
    fn try_send(&mut self, msg: Message, now: Cycle) -> bool;
    /// Advance one cycle.
    fn tick(&mut self, now: Cycle);
    /// Move accumulated deliveries into `out`.
    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>);
    /// No traffic anywhere in the network.
    fn is_idle(&self) -> bool;
    /// Earliest future cycle (> `now`) at which ticking this network
    /// could change its state, or `None` when idle. Returning an early
    /// cycle only costs a no-op tick; returning a *late* one would let
    /// the engine skip over state evolution, so implementations must be
    /// conservative. The default is maximally conservative: every cycle
    /// while any traffic is in flight.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle() {
            None
        } else {
            Some(now + 1)
        }
    }
    /// Flush batched observer counters to the attached observer
    /// (default: nothing batched). Called once per run, after the final
    /// tick and before the observer is read.
    fn flush_obs(&mut self) {}
    /// Flit width in bits.
    fn flit_width(&self) -> u32;
    /// Number of cores the network connects.
    fn cores(&self) -> usize;
    /// Snapshot of the merged event counters.
    fn stats(&self) -> NetStats;
    /// Architecture name for reports.
    fn name(&self) -> &'static str;
    /// Attach an observability probe (default: ignored). Probes observe
    /// deliveries and transmissions; they never affect timing.
    fn set_probe(&mut self, probe: ProbeHandle) {
        let _ = probe;
    }
    /// Attach a host profiler for network sub-phase attribution
    /// (default: ignored). Sub-laps are inert unless the profiler was
    /// created with netprof on (the `ATAC_NETPROF` knob); like probes,
    /// they never affect timing.
    fn set_profiler(&mut self, prof: HostProfiler) {
        let _ = prof;
    }
    /// Attach a cycle-domain network observer (default: ignored).
    /// Observers receive per-router/link/hub counter events; they never
    /// affect timing.
    fn set_observer(&mut self, obs: NetObsHandle) {
        let _ = obs;
    }
}

impl Network for Mesh {
    fn try_send(&mut self, msg: Message, now: Cycle) -> bool {
        Mesh::try_send(self, msg, now)
    }
    fn tick(&mut self, now: Cycle) {
        Mesh::tick(self, now);
    }
    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        Mesh::drain_deliveries(self, out);
    }
    fn is_idle(&self) -> bool {
        Mesh::is_idle(self)
    }
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Mesh::next_event(self, now)
    }
    fn flush_obs(&mut self) {
        Mesh::flush_obs(self);
    }
    fn flit_width(&self) -> u32 {
        Mesh::flit_width(self)
    }
    fn cores(&self) -> usize {
        self.topology().cores()
    }
    fn stats(&self) -> NetStats {
        self.stats.clone()
    }
    fn name(&self) -> &'static str {
        match self.kind() {
            MeshKind::Pure => "EMesh-Pure",
            MeshKind::BcastTree => "EMesh-BCast",
        }
    }
    fn set_probe(&mut self, probe: ProbeHandle) {
        Mesh::set_probe(self, probe);
    }
    fn set_profiler(&mut self, prof: HostProfiler) {
        Mesh::set_profiler(self, prof);
    }
    fn set_observer(&mut self, obs: NetObsHandle) {
        Mesh::set_observer(self, obs);
    }
}

/// The ATAC / ATAC+ network.
#[derive(Debug)]
pub struct AtacNet {
    topo: Topology,
    enet: Mesh,
    onet: Onet,
    policy: RoutingPolicy,
    receive_net: ReceiveNet,
    /// Host profiler for the optical-hub stretch of `tick` (the ENet
    /// laps its own sub-phases internally).
    prof: HostProfiler,
}

impl AtacNet {
    /// Build an ATAC-family network.
    ///
    /// * baseline ATAC: `RoutingPolicy::Cluster` + `ReceiveNet::BNet`
    /// * ATAC+: `RoutingPolicy::Distance(15)` + `ReceiveNet::StarNet`
    ///   (the configuration §V-E settles on)
    pub fn new(
        topo: Topology,
        flit_width: u32,
        buffer_depth: usize,
        policy: RoutingPolicy,
        receive_net: ReceiveNet,
    ) -> Self {
        AtacNet {
            topo,
            enet: Mesh::new(topo, MeshKind::Pure, flit_width, buffer_depth),
            onet: Onet::new(topo, flit_width),
            policy,
            receive_net,
            prof: HostProfiler::disabled(),
        }
    }

    /// The paper's ATAC+ default (Distance-15, StarNet, 64-bit flits).
    pub fn atac_plus(topo: Topology) -> Self {
        Self::new(
            topo,
            64,
            4,
            RoutingPolicy::Distance(15),
            ReceiveNet::StarNet,
        )
    }

    /// The baseline ATAC (Cluster routing, BNet, 64-bit flits).
    pub fn atac_baseline(topo: Topology) -> Self {
        Self::new(topo, 64, 4, RoutingPolicy::Cluster, ReceiveNet::BNet)
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configured receive network flavor (for energy integration).
    pub fn receive_net(&self) -> ReceiveNet {
        self.receive_net
    }

    /// The routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Should this unicast use the ONet?
    fn via_onet(&self, msg: &Message) -> bool {
        match msg.dest {
            Dest::Broadcast => true,
            Dest::Unicast(dst) => {
                if self.topo.cluster_of(msg.src) == self.topo.cluster_of(dst) {
                    return false; // intra-cluster: always pure ENet
                }
                match self.policy {
                    RoutingPolicy::Cluster => true,
                    RoutingPolicy::Distance(r) => self.topo.manhattan(msg.src, dst) >= r,
                    RoutingPolicy::DistanceAll => false,
                }
            }
        }
    }
}

impl Network for AtacNet {
    fn try_send(&mut self, msg: Message, now: Cycle) -> bool {
        if self.via_onet(&msg) {
            let ok = self.enet.try_send_to_hub(msg, now);
            if ok {
                // Count the message at its true injection point.
                match msg.dest {
                    Dest::Unicast(_) => self.enet.stats.unicast_messages += 1,
                    Dest::Broadcast => self.enet.stats.broadcast_messages += 1,
                }
            }
            ok
        } else {
            self.enet.try_send(msg, now)
        }
    }

    fn tick(&mut self, now: Cycle) {
        self.enet.tick(now);
        // Hub: move completed ENet ejections onto the SWMR links. The
        // per-cluster sweep only runs when the ENet's O(1) hub counter
        // says some cluster has a completed message — on hubless ticks
        // (the vast majority) the hand-off costs one branch, not an
        // O(clusters) scan.
        if self.enet.has_hub_out() {
            for cl in 0..self.topo.clusters() {
                let cl = crate::types::ClusterId(cl as u8); // audit: allow(cast) cluster count ≤ 64 fits u8
                while self.onet.can_accept(cl) && self.enet.hub_out_ready(cl) {
                    let (msg, inject) = self.enet.pop_hub_out(cl).expect("ready"); // audit: allow(expect) readiness checked by hub_out_ready above
                    self.onet.stats.hub_buffer_reads += 1;
                    self.onet.accept(cl, msg, inject);
                }
            }
        }
        self.onet.tick(now);
        // Everything after the ENet's own laps — hub hand-off and the
        // SWMR link schedule — is the optical-hub arbitration stretch.
        self.prof.net_lap(NetSubPhase::HubArb);
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        self.enet.drain_deliveries(out);
        self.onet.drain_deliveries(out);
    }

    fn is_idle(&self) -> bool {
        self.enet.is_idle() && self.onet.is_idle()
    }
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // A ready hub-out flit must transfer into the ONet on the very
        // next tick, and both sub-networks evolve independently — take
        // the earliest of the two horizons.
        let e = self.enet.next_event(now);
        let o = self.onet.next_event(now);
        match (e, o) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) => x,
            (None, y) => y,
        }
    }
    fn flush_obs(&mut self) {
        self.enet.flush_obs();
    }

    fn flit_width(&self) -> u32 {
        self.enet.flit_width()
    }

    fn cores(&self) -> usize {
        self.topo.cores()
    }

    fn stats(&self) -> NetStats {
        let mut s = self.enet.stats.clone();
        let o = &self.onet.stats;
        // Merge, but keep injection-side message counts from the ENet side
        // (they were counted at try_send) and delivery counts from both.
        let cycles = s.cycles;
        s.merge(o);
        s.cycles = cycles.max(o.cycles);
        s
    }

    fn name(&self) -> &'static str {
        match (self.policy, self.receive_net) {
            (RoutingPolicy::Cluster, ReceiveNet::BNet) => "ATAC",
            (RoutingPolicy::Cluster, ReceiveNet::StarNet)
            | (RoutingPolicy::Distance(_) | RoutingPolicy::DistanceAll, _) => "ATAC+",
        }
    }

    fn set_probe(&mut self, probe: ProbeHandle) {
        self.enet.set_probe(probe.clone());
        let recv = match self.receive_net {
            ReceiveNet::BNet => Subnet::BNet,
            ReceiveNet::StarNet => Subnet::StarNet,
        };
        self.onet.set_probe(probe, recv);
    }

    fn set_profiler(&mut self, prof: HostProfiler) {
        self.enet.set_profiler(prof.clone());
        self.prof = prof;
    }

    fn set_observer(&mut self, obs: NetObsHandle) {
        self.enet.set_observer(obs.clone());
        self.onet.set_observer(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CoreId, MessageClass};

    fn topo() -> Topology {
        Topology::small(8, 4)
    }

    fn msg(src: u16, dest: Dest) -> Message {
        Message {
            src: CoreId(src),
            dest,
            class: MessageClass::Control,
            token: 0,
        }
    }

    fn run<N: Network + ?Sized>(net: &mut N, start: Cycle, max: u64) -> (Vec<Delivery>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while !net.is_idle() {
            net.tick(now);
            net.drain_deliveries(&mut out);
            now += 1;
            assert!(now - start < max, "network did not drain");
        }
        (out, now)
    }

    #[test]
    fn intra_cluster_unicast_stays_on_enet() {
        let mut net = AtacNet::atac_plus(topo());
        // cores 0 and 1 are both in cluster 0.
        assert!(net.try_send(msg(0, Dest::Unicast(CoreId(1))), 0));
        let (out, _) = run(&mut net, 0, 200);
        assert_eq!(out.len(), 1);
        let s = net.stats();
        assert_eq!(s.onet_flits_sent, 0, "no optical traffic");
        assert!(s.link_traversals > 0, "went over the mesh");
    }

    #[test]
    fn cluster_policy_sends_intercluster_over_onet() {
        let t = topo();
        let mut net = AtacNet::atac_baseline(t);
        // core 0 (cluster 0) to core 63 (cluster 3): inter-cluster.
        assert!(net.try_send(msg(0, Dest::Unicast(CoreId(63))), 0));
        let (out, _) = run(&mut net, 0, 500);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].receiver, CoreId(63));
        let s = net.stats();
        assert!(s.onet_flits_sent > 0, "used the ONet");
        assert_eq!(s.unicast_received, 1);
    }

    #[test]
    fn distance_policy_splits_by_hops() {
        let t = topo();
        // distance core 0 -> core 63 is (7+7)=14 hops.
        let mut far = AtacNet::new(t, 64, 4, RoutingPolicy::Distance(10), ReceiveNet::StarNet);
        assert!(far.try_send(msg(0, Dest::Unicast(CoreId(63))), 0));
        let _ = run(&mut far, 0, 500);
        assert!(far.stats().onet_flits_sent > 0, "14 ≥ 10 → ONet");

        let mut near = AtacNet::new(t, 64, 4, RoutingPolicy::Distance(20), ReceiveNet::StarNet);
        assert!(near.try_send(msg(0, Dest::Unicast(CoreId(63))), 0));
        let _ = run(&mut near, 0, 500);
        assert_eq!(near.stats().onet_flits_sent, 0, "14 < 20 → ENet");
    }

    #[test]
    fn distance_all_keeps_onet_for_broadcasts() {
        let t = topo();
        let mut net = AtacNet::new(t, 64, 4, RoutingPolicy::DistanceAll, ReceiveNet::StarNet);
        assert!(net.try_send(msg(0, Dest::Unicast(CoreId(63))), 0));
        assert!(net.try_send(msg(0, Dest::Broadcast), 0));
        let (out, _) = run(&mut net, 0, 2000);
        assert_eq!(out.len(), 1 + 63);
        let s = net.stats();
        assert!(s.onet_flits_sent > 0, "broadcast used ONet");
        assert_eq!(s.laser_unicast_cycles, 0, "no optical unicasts");
    }

    #[test]
    fn broadcast_reaches_all_cores() {
        let mut net = AtacNet::atac_plus(topo());
        assert!(net.try_send(msg(13, Dest::Broadcast), 0));
        let (out, _) = run(&mut net, 0, 2000);
        assert_eq!(out.len(), 63);
        let mut seen = [false; 64];
        for d in &out {
            assert!(!seen[d.receiver.idx()]);
            seen[d.receiver.idx()] = true;
        }
        assert!(!seen[13]);
    }

    #[test]
    fn onet_beats_enet_latency_at_long_distance() {
        let t = topo();
        // ONet path: ENet to local hub (short) + optical + StarNet.
        let mut onet_route = AtacNet::new(t, 64, 4, RoutingPolicy::Cluster, ReceiveNet::StarNet);
        let mut enet_route =
            AtacNet::new(t, 64, 4, RoutingPolicy::DistanceAll, ReceiveNet::StarNet);
        // choose a sender adjacent to its hub: hub of cluster 0 is (0,0);
        // send from (0,0)'s neighbour... core 0 IS the hub tile.
        let m = msg(0, Dest::Unicast(CoreId(63)));
        assert!(onet_route.try_send(m, 0));
        assert!(enet_route.try_send(m, 0));
        let (o, _) = run(&mut onet_route, 0, 500);
        let (e, _) = run(&mut enet_route, 0, 500);
        assert!(
            o[0].at < e[0].at,
            "optical {} should beat 14-hop electrical {}",
            o[0].at,
            e[0].at
        );
    }

    #[test]
    fn network_trait_objects_work() {
        let t = topo();
        let mut nets: Vec<Box<dyn Network>> = vec![
            Box::new(Mesh::new(t, MeshKind::Pure, 64, 4)),
            Box::new(Mesh::new(t, MeshKind::BcastTree, 64, 4)),
            Box::new(AtacNet::atac_plus(t)),
            Box::new(AtacNet::atac_baseline(t)),
        ];
        let names: Vec<_> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(names, ["EMesh-Pure", "EMesh-BCast", "ATAC+", "ATAC"]);
        for net in &mut nets {
            assert!(net.try_send(msg(3, Dest::Unicast(CoreId(60))), 0));
            let (out, _) = run(net.as_mut(), 0, 1000);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn deterministic_composite() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let t = topo();
        let run_once = || {
            let mut net = AtacNet::atac_plus(t);
            let mut rng = SmallRng::seed_from_u64(7);
            let mut out = Vec::new();
            for now in 0..500u64 {
                for c in 0..64u16 {
                    if rng.gen_bool(0.03) {
                        let dest = if rng.gen_bool(0.02) {
                            Dest::Broadcast
                        } else {
                            Dest::Unicast(CoreId(rng.gen_range(0..64)))
                        };
                        let _ = net.try_send(msg(c, dest), now);
                    }
                }
                net.tick(now);
                net.drain_deliveries(&mut out);
            }
            let mut now = 500;
            while !net.is_idle() {
                net.tick(now);
                net.drain_deliveries(&mut out);
                now += 1;
                assert!(now < 1_000_000);
            }
            out.sort_by_key(|d| (d.at, d.receiver.0, d.msg.src.0));
            (out.len(), net.stats())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn every_message_delivered_under_load() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let t = topo();
        let mut net = AtacNet::atac_plus(t);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut out = Vec::new();
        let mut uc = 0u64;
        let mut bc = 0u64;
        for now in 0..3000u64 {
            for c in 0..64u16 {
                if rng.gen_bool(0.04) {
                    let dest = if rng.gen_bool(0.01) {
                        Dest::Broadcast
                    } else {
                        Dest::Unicast(CoreId(rng.gen_range(0..64)))
                    };
                    if net.try_send(msg(c, dest), now) {
                        match dest {
                            Dest::Unicast(_) => uc += 1,
                            Dest::Broadcast => bc += 1,
                        }
                    }
                }
            }
            net.tick(now);
            net.drain_deliveries(&mut out);
        }
        let mut now = 3000;
        while !net.is_idle() {
            net.tick(now);
            net.drain_deliveries(&mut out);
            now += 1;
            assert!(now < 2_000_000, "did not drain");
        }
        assert_eq!(out.len() as u64, uc + bc * 63);
        let s = net.stats();
        assert_eq!(s.unicast_received, uc);
        assert_eq!(s.broadcast_received, bc * 63);
    }
}
