//! # atac-net — cycle-level on-chip network simulator
//!
//! The network substrate of the ATAC+ reproduction: a flit-level,
//! cycle-driven simulator of all four interconnects the paper evaluates,
//! under one [`atac::Network`] trait:
//!
//! | Architecture | Composition |
//! |---|---|
//! | `EMesh-Pure` | [`mesh::Mesh`] (`Pure`): wormhole XY mesh; broadcasts expand to serialized unicasts |
//! | `EMesh-BCast` | [`mesh::Mesh`] (`BcastTree`): + XY-tree router multicast |
//! | `ATAC` | [`atac::AtacNet`]: ENet mesh + [`onet::Onet`] WDM ring + BNet, Cluster routing |
//! | `ATAC+` | [`atac::AtacNet`]: ENet + adaptive-SWMR ONet + StarNet, Distance-15 routing |
//!
//! Timing parameters are the paper's Table I (1-cycle routers and links,
//! 3-cycle ONet propagation, 1-cycle select→data lag, 1-cycle receive
//! nets, 64-bit flits, wormhole flow control with a single VC). Every
//! model counts the events ([`stats::NetStats`]) that the `atac-sim`
//! energy integration multiplies with the per-event energies of
//! `atac-phys`.
//!
//! The [`harness`] module provides the open-loop synthetic-traffic driver
//! used to regenerate the paper's Fig. 3 (latency vs. offered load per
//! routing policy).
//!
//! Every network holds an `atac_trace::ProbeHandle` (disabled by
//! default — one branch per probe point) and reports message deliveries
//! and optical transmissions through it; attach one via
//! [`atac::Network::set_probe`].

pub mod atac;
pub mod counters;
pub mod harness;
pub mod mesh;
pub mod onet;
pub mod stats;
pub mod topology;
pub mod types;

pub use atac::{AtacNet, Network, ReceiveNet, RoutingPolicy};
pub use mesh::{Mesh, MeshKind};
pub use onet::Onet;
pub use stats::NetStats;
pub use topology::{Port, Topology};
pub use types::{ClusterId, CoreId, Cycle, Delivery, Dest, Message, MessageClass};

// Re-exported so downstream crates can attach probes, profilers, and
// network observers without naming the trace crate separately.
pub use atac_trace::{
    Histogram, HostPhase, HostProfiler, NetObsHandle, NetObserver, NetProfile, NetSubPhase,
    NullProbe, Probe, ProbeHandle,
};
