//! The ONet: an all-to-all WDM optical ring of adaptive SWMR links.
//!
//! Each of the 64 cluster hubs owns one **adaptive SWMR link** (§IV-A):
//! a data link `flit_width` waveguides wide on the hub's private
//! wavelength, plus a `log2(hubs)`-bit select link whose receivers are
//! permanently tuned in. A message transmission is:
//!
//! 1. **Setup** (1 cycle): the sender turns its laser on at the power for
//!    the intended receiver set and notifies the receiver(s) on the select
//!    link; the notified rings tune in within 1 ns (= 1 cycle at 1 GHz),
//!    so data starts exactly one cycle after the select notification
//!    (Table I: "ONet Select – Data Link Lag: 1 cycle").
//! 2. **Data**: one flit per cycle; each flit propagates to every tuned-in
//!    hub in 3 cycles (Table I: "ONet Link Delay: 3 cycles").
//! 3. **Teardown**: on the tail flit the receivers tune out and the laser
//!    power-gates (idle mode).
//!
//! Wormhole flow control with a single virtual channel (§IV-A): messages
//! from one sender are never interleaved, and the sender reserves receive
//! buffer space at every destination hub for the whole message before the
//! select notification, so a transmission never stalls mid-message — the
//! laser is only ever lit while doing useful work, which is what makes the
//! Table V mode-residency accounting exact.
//!
//! Received messages drain through the cluster's two receive networks
//! (BNet or StarNet, 1 cycle, 1 flit/cycle each — Table I: "Total
//! StarNets per Cluster: 2") to the destination core(s). The receive hub
//! is where broadcast replication contends (§V-F discusses exactly this
//! contention), so the drain budget is modeled per cluster.

use std::collections::VecDeque;

use crate::stats::NetStats;
use crate::topology::Topology;
use crate::types::{ClusterId, Cycle, Delivery, Dest, Message};
use atac_trace::{NetDeliver, NetObsHandle, OnetTx, ProbeHandle, Subnet, TrafficKind};

/// ONet propagation latency in cycles (Table I).
pub const ONET_LINK_DELAY: Cycle = 3;
/// Select-notification to data lag in cycles (Table I).
pub const SELECT_DATA_LAG: Cycle = 1;
/// Receive-network latency in cycles (Table I: BNet/StarNet 1 cycle).
pub const RECEIVE_NET_DELAY: Cycle = 1;
/// Receive networks per cluster (Table I).
pub const RECEIVE_NETS_PER_CLUSTER: u8 = 2;
/// Receive buffer capacity per hub, in flits.
const HUB_RX_CAP: u32 = 64;
/// Sender-side queue capacity per hub, in messages.
const HUB_TX_CAP: usize = 4;

/// Hubs a message must reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestHubs {
    One(ClusterId),
    All,
}

/// A message waiting at a sender hub.
#[derive(Debug, Clone, Copy)]
struct TxMsg {
    msg: Message,
    inject: Cycle,
    len: u8,
    dest: DestHubs,
}

/// Sender-side SWMR link state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    Idle,
    /// Transmitting; data cycles run through `until` (inclusive of the
    /// last flit's send cycle).
    Busy {
        until: Cycle,
    },
}

#[derive(Debug)]
struct SwmrLink {
    q: VecDeque<TxMsg>,
    state: LinkState,
}

/// A message being reassembled at a receive hub.
#[derive(Debug, Clone, Copy)]
struct RxPacket {
    msg: Message,
    inject: Cycle,
    len: u8,
    /// Cycle the first data flit was sent; flit `i` is forwardable to the
    /// receive net at `start + i + ONET_LINK_DELAY`.
    start: Cycle,
    forwarded: u8,
}

#[derive(Debug, Default)]
struct HubRx {
    q: VecDeque<RxPacket>,
    reserved_flits: u32,
}

/// The optical network: one SWMR link per hub plus per-cluster receive
/// pipelines.
#[derive(Debug)]
pub struct Onet {
    topo: Topology,
    flit_width: u32,
    links: Vec<SwmrLink>,
    rx: Vec<HubRx>,
    deliveries: Vec<Delivery>,
    /// Counters (merged into the composite network's stats).
    pub stats: NetStats,
    /// Observability probe (disabled by default; observers only).
    probe: ProbeHandle,
    /// Cycle-domain network observer (disabled by default).
    obs: NetObsHandle,
    /// Which receive-network flavor final deliveries report as.
    recv_subnet: Subnet,
    /// Live work items: queued TX messages + links mid-transmission +
    /// RX packets being reassembled. Zero ⇔ idle, so the per-cycle tick
    /// and the idle/horizon queries early-out in O(1) on a quiet ONet
    /// instead of sweeping every link and receive queue.
    live: u32,
}

impl Onet {
    /// Create the ONet for a topology.
    pub fn new(topo: Topology, flit_width: u32) -> Self {
        let h = topo.clusters();
        Onet {
            topo,
            flit_width,
            links: (0..h)
                .map(|_| SwmrLink {
                    q: VecDeque::new(),
                    state: LinkState::Idle,
                })
                .collect(),
            rx: (0..h).map(|_| HubRx::default()).collect(),
            deliveries: Vec::new(),
            stats: NetStats::default(),
            probe: ProbeHandle::default(),
            obs: NetObsHandle::disabled(),
            recv_subnet: Subnet::StarNet,
            live: 0,
        }
    }

    /// Attach an observability probe. Deliveries report as
    /// `recv_subnet` (BNet or StarNet, the cluster receive network that
    /// performs the final hop); transmissions report as ONet bursts.
    pub fn set_probe(&mut self, probe: ProbeHandle, recv_subnet: Subnet) {
        self.probe = probe;
        self.recv_subnet = recv_subnet;
    }

    /// Attach a cycle-domain network observer (per-hub unicast vs
    /// broadcast occupancy).
    pub fn set_observer(&mut self, obs: NetObsHandle) {
        self.obs = obs;
    }

    /// Number of hubs.
    pub fn hubs(&self) -> usize {
        self.links.len()
    }

    /// Can the sender hub of `cluster` accept another message?
    pub fn can_accept(&self, cluster: ClusterId) -> bool {
        self.links[cluster.idx()].q.len() < HUB_TX_CAP
    }

    /// Hand a message (popped from the ENet's hub ejection buffer) to its
    /// cluster's SWMR link. Panics if called without [`Onet::can_accept`].
    pub fn accept(&mut self, cluster: ClusterId, msg: Message, inject: Cycle) {
        assert!(self.can_accept(cluster), "hub TX queue overflow");
        let len = msg.class.flits(self.flit_width) as u8; // audit: allow(cast) flit count per packet is single-digit
        let dest = match msg.dest {
            Dest::Unicast(d) => {
                let dc = self.topo.cluster_of(d);
                assert_ne!(
                    dc, cluster,
                    "intra-cluster unicasts must use the ENet, not the ONet"
                );
                DestHubs::One(dc)
            }
            Dest::Broadcast => DestHubs::All,
        };
        // audit: allow(alloc) HUB_TX_CAP-bounded queue; capacity is amortized after warm-up
        self.links[cluster.idx()].q.push_back(TxMsg {
            msg,
            inject,
            len,
            dest,
        });
        self.live += 1;
    }

    /// Whether any link or receive pipeline still holds traffic.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.live == 0,
            self.links
                .iter()
                .all(|l| l.q.is_empty() && l.state == LinkState::Idle)
                && self.rx.iter().all(|r| r.q.is_empty()),
            "live counter out of sync with link/rx state"
        );
        self.live == 0
    }

    /// Move deliveries accumulated since the last call into `out`.
    pub fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    /// Earliest future cycle at which ticking the ONet could change its
    /// state, or `None` when idle. Never *later* than the true next
    /// state change (an early return only costs a no-op tick), so the
    /// engine may jump straight to it.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.live == 0 {
            return None; // nothing queued, in flight, or draining
        }
        let mut t = Cycle::MAX;
        for l in &self.links {
            match l.state {
                // The link retires (and the next queued message may
                // start) on the first tick after the last data cycle.
                LinkState::Busy { until } => t = t.min(until + 1),
                LinkState::Idle => {
                    // A queued message starts as soon as its receive
                    // reservations fit; that depends on receiver-side
                    // drain progress, so stay conservative.
                    if !l.q.is_empty() {
                        t = t.min(now + 1);
                    }
                }
            }
        }
        for r in &self.rx {
            if let Some(head) = r.q.front() {
                // Flit `forwarded` becomes forwardable once it has
                // propagated the ring (see `tick_receivers`).
                t = t.min(head.start + ONET_LINK_DELAY + Cycle::from(head.forwarded));
            }
        }
        if t == Cycle::MAX {
            debug_assert!(self.is_idle());
            None
        } else {
            Some(t.max(now + 1))
        }
    }

    /// Advance one cycle: start new transmissions where possible, then
    /// drain receive pipelines into the cluster receive networks.
    pub fn tick(&mut self, now: Cycle) {
        if self.live == 0 {
            return; // O(1) quiet tick instead of the link + rx sweeps
        }
        self.tick_senders(now);
        self.tick_receivers(now);
    }

    fn tick_senders(&mut self, now: Cycle) {
        for h in 0..self.links.len() {
            // Retire finished transmissions.
            if let LinkState::Busy { until } = self.links[h].state {
                if now > until {
                    self.links[h].state = LinkState::Idle;
                    self.live -= 1;
                }
            }
            if self.links[h].state != LinkState::Idle {
                continue;
            }
            let Some(&tx) = self.links[h].q.front() else {
                continue;
            };
            // Reserve receive buffer space for the whole message at every
            // destination hub; without it, wait (laser stays gated).
            let fits = self
                .dest_range(tx.dest)
                .all(|d| self.rx[d].reserved_flits + u32::from(tx.len) <= HUB_RX_CAP);
            if !fits {
                continue;
            }
            self.links[h].q.pop_front();
            // Queue slot (−1) becomes a busy link (+1): `live` is net
            // unchanged here; each RxPacket below adds one.
            // Setup: select notification this cycle, data starts next.
            let start = now + SELECT_DATA_LAG;
            let until = start + Cycle::from(tx.len) - 1;
            self.links[h].state = LinkState::Busy { until };
            self.stats.select_notifications += 1;
            self.stats.laser_transitions += 2; // power up, power down
            self.stats.onet_flits_sent += u64::from(tx.len);
            let external_rx = self.dest_range(tx.dest).filter(|&d| d != h).count() as u64;
            self.stats.onet_flit_receptions += u64::from(tx.len) * external_rx;
            let kind = match tx.dest {
                DestHubs::One(_) => {
                    self.stats.laser_unicast_cycles += u64::from(tx.len);
                    TrafficKind::Unicast
                }
                DestHubs::All => {
                    self.stats.laser_broadcast_cycles += u64::from(tx.len);
                    TrafficKind::Broadcast
                }
            };
            self.obs.hub_tx(h, kind, u64::from(tx.len));
            self.probe.onet_tx(&OnetTx {
                hub: h as u32, // audit: allow(cast) hub index < clusters ≤ 64
                kind,
                start,
                end: until + ONET_LINK_DELAY,
                flits: u64::from(tx.len),
            });
            for d in self.dest_range(tx.dest) {
                self.rx[d].reserved_flits += u32::from(tx.len);
                self.live += 1;
                // audit: allow(alloc) reservation-bounded (≤ HUB_RX_CAP flits); capacity amortized
                self.rx[d].q.push_back(RxPacket {
                    msg: tx.msg,
                    inject: tx.inject,
                    len: tx.len,
                    start,
                    forwarded: 0,
                });
            }
        }
    }

    /// Destination hub index range for a transmission. A broadcast is
    /// received by every hub; the sender's own hub gets its copy via
    /// internal loopback (no extra laser power — `external_rx` above
    /// excludes it). Returning a dense `Range` keeps this per-message
    /// path allocation-free; it is recomputed at each use site rather
    /// than collected.
    fn dest_range(&self, dest: DestHubs) -> std::ops::Range<usize> {
        match dest {
            DestHubs::One(c) => c.idx()..c.idx() + 1,
            DestHubs::All => 0..self.links.len(),
        }
    }

    fn tick_receivers(&mut self, now: Cycle) {
        for cl in 0..self.rx.len() {
            let mut budget = RECEIVE_NETS_PER_CLUSTER;
            while budget > 0 {
                let Some(head) = self.rx[cl].q.front_mut() else {
                    break;
                };
                // Flit i is forwardable once it has propagated the ring.
                let arrived = now
                    .saturating_sub(head.start + ONET_LINK_DELAY)
                    .saturating_add(if now >= head.start + ONET_LINK_DELAY {
                        1
                    } else {
                        0
                    })
                    .min(Cycle::from(head.len)) as u8; // audit: allow(cast) min() with a u8-sized length fits u8
                if head.forwarded >= arrived {
                    break; // in-order pipeline: wait for the head's flits
                }
                head.forwarded += 1;
                budget -= 1;
                let done = head.forwarded == head.len;
                let is_bcast = matches!(head.msg.dest, Dest::Broadcast);
                if is_bcast {
                    self.stats.receive_net_broadcast_flits += 1;
                } else {
                    self.stats.receive_net_unicast_flits += 1;
                }
                if done {
                    let pkt = *head;
                    self.rx[cl].q.pop_front();
                    self.rx[cl].reserved_flits -= u32::from(pkt.len);
                    self.live -= 1;
                    self.deliver(cl, pkt, now);
                }
            }
        }
    }

    fn deliver(&mut self, cl: usize, pkt: RxPacket, now: Cycle) {
        let at = now + RECEIVE_NET_DELAY;
        match pkt.msg.dest {
            Dest::Unicast(d) => {
                debug_assert_eq!(self.topo.cluster_of(d).idx(), cl);
                self.stats.unicast_received += 1;
                self.stats.latency_sum += at - pkt.inject;
                self.stats.latency_count += 1;
                self.probe.net_deliver(&NetDeliver {
                    subnet: self.recv_subnet,
                    kind: TrafficKind::Unicast,
                    src: u32::from(pkt.msg.src.0),
                    dst: u32::from(d.0),
                    inject: pkt.inject,
                    at,
                });
                // audit: allow(alloc) drained every cycle; capacity is amortized
                self.deliveries.push(Delivery {
                    msg: pkt.msg,
                    receiver: d,
                    at,
                });
            }
            Dest::Broadcast => {
                // audit: allow(cast) cluster count ≤ 64 fits u8
                for c in self.topo.cluster_cores(ClusterId(cl as u8)) {
                    if c == pkt.msg.src {
                        continue;
                    }
                    self.stats.broadcast_received += 1;
                    self.stats.latency_sum += at - pkt.inject;
                    self.stats.latency_count += 1;
                    self.probe.net_deliver(&NetDeliver {
                        subnet: self.recv_subnet,
                        kind: TrafficKind::Broadcast,
                        src: u32::from(pkt.msg.src.0),
                        dst: u32::from(c.0),
                        inject: pkt.inject,
                        at,
                    });
                    // audit: allow(alloc) drained every cycle; capacity is amortized
                    self.deliveries.push(Delivery {
                        msg: pkt.msg,
                        receiver: c,
                        at,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CoreId, MessageClass};

    fn topo() -> Topology {
        Topology::small(8, 4) // 64 cores, 4 clusters
    }

    fn msg(src: u16, dest: Dest, class: MessageClass) -> Message {
        Message {
            src: CoreId(src),
            dest,
            class,
            token: 7,
        }
    }

    fn run(onet: &mut Onet, start: Cycle, max: u64) -> (Vec<Delivery>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while !onet.is_idle() {
            onet.tick(now);
            onet.drain_deliveries(&mut out);
            now += 1;
            assert!(now - start < max, "onet did not drain");
        }
        (out, now)
    }

    #[test]
    fn unicast_crosses_clusters() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        // core 0 is in cluster 0; core 63 in cluster 3.
        let m = msg(0, Dest::Unicast(CoreId(63)), MessageClass::Control);
        onet.accept(ClusterId(0), m, 0);
        let (out, _) = run(&mut onet, 0, 100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].receiver, CoreId(63));
        // latency: select(1) + 2 flits + 3 propagation + 1 receive-net ≈ 7
        assert!(out[0].at >= 6 && out[0].at <= 9, "at {}", out[0].at);
    }

    #[test]
    fn zero_load_latency_breakdown() {
        // 1-flit message (256-bit flits), select at cycle 0: select lag 1
        // (data sent during cycle 1), 3-cycle ring propagation (receive
        // hub forwards during cycle 4), receive net 1 cycle → core at 5.
        let t = topo();
        let mut onet = Onet::new(t, 256);
        let m = msg(0, Dest::Unicast(CoreId(63)), MessageClass::Control);
        onet.accept(ClusterId(0), m, 0);
        let (out, _) = run(&mut onet, 0, 100);
        assert_eq!(
            out[0].at,
            SELECT_DATA_LAG + 1 + ONET_LINK_DELAY + RECEIVE_NET_DELAY - 1
        );
    }

    #[test]
    fn broadcast_reaches_all_cores_except_source() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        let m = msg(17, Dest::Broadcast, MessageClass::Control);
        onet.accept(t.cluster_of(CoreId(17)), m, 0);
        let (out, _) = run(&mut onet, 0, 200);
        assert_eq!(out.len(), 63);
        assert!(out.iter().all(|d| d.receiver != CoreId(17)));
        assert_eq!(onet.stats.broadcast_received, 63);
    }

    #[test]
    fn mode_cycle_accounting() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        onet.accept(
            ClusterId(0),
            msg(0, Dest::Unicast(CoreId(63)), MessageClass::Data),
            0,
        );
        onet.accept(
            ClusterId(0),
            msg(1, Dest::Broadcast, MessageClass::Control),
            0,
        );
        let _ = run(&mut onet, 0, 200);
        assert_eq!(onet.stats.laser_unicast_cycles, 10); // data msg = 10 flits
        assert_eq!(onet.stats.laser_broadcast_cycles, 2); // control = 2 flits
        assert_eq!(onet.stats.select_notifications, 2);
        assert_eq!(onet.stats.laser_transitions, 4);
        // 3 external hubs receive the broadcast; 1 hub the unicast.
        assert_eq!(onet.stats.onet_flit_receptions, 10 + 2 * 3);
    }

    #[test]
    fn serialization_on_one_link() {
        // Two messages from the same hub cannot interleave (single VC).
        let t = topo();
        let mut onet = Onet::new(t, 64);
        for i in 0..2 {
            onet.accept(
                ClusterId(0),
                msg(i, Dest::Unicast(CoreId(63)), MessageClass::Data),
                0,
            );
        }
        let (out, _) = run(&mut onet, 0, 300);
        assert_eq!(out.len(), 2);
        let mut ats: Vec<_> = out.iter().map(|d| d.at).collect();
        ats.sort_unstable();
        // second message starts after the first's 10 data cycles.
        assert!(ats[1] >= ats[0] + 10, "ats {ats:?}");
    }

    #[test]
    fn parallel_links_do_not_serialize() {
        // Different senders own different wavelengths: no contention.
        let t = topo();
        let mut onet = Onet::new(t, 64);
        onet.accept(
            ClusterId(0),
            msg(0, Dest::Unicast(CoreId(63)), MessageClass::Control),
            0,
        );
        // core 56 is at (0,7) → cluster 2, distinct from core 63's
        // cluster 3, so the two transfers share nothing.
        onet.accept(
            ClusterId(1),
            msg(4, Dest::Unicast(CoreId(56)), MessageClass::Control),
            0,
        );
        let (out, _) = run(&mut onet, 0, 100);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].at, out[1].at, "independent links run in parallel");
    }

    #[test]
    fn receive_hub_contention_two_flits_per_cycle() {
        // All 3 other hubs send a 10-flit data message to cluster 0
        // simultaneously: 30 flits drain at 2/cycle at the receive hub.
        let t = topo();
        let mut onet = Onet::new(t, 64);
        for (i, src) in [(1u8, 4u16), (2, 8), (3, 12)] {
            onet.accept(
                ClusterId(i),
                msg(src, Dest::Unicast(CoreId(0)), MessageClass::Data),
                0,
            );
        }
        let (out, end) = run(&mut onet, 0, 300);
        assert_eq!(out.len(), 3);
        // lower bound: 30 flits / 2 per cycle = 15 cycles of drain.
        assert!(end >= 15, "end {end}");
    }

    #[test]
    fn back_pressure_via_reservation() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        // Fill cluster 0's receive buffer: HUB_RX_CAP=64 flits; 7 data
        // messages (70 flits) cannot all reserve at once.
        for i in 0..4 {
            onet.accept(
                ClusterId(1),
                msg(4 + i, Dest::Unicast(CoreId(i)), MessageClass::Data),
                0,
            );
        }
        for i in 0..3 {
            onet.accept(
                ClusterId(2),
                msg(8 + i, Dest::Unicast(CoreId(i)), MessageClass::Data),
                0,
            );
        }
        // tick a few cycles: senders must not over-reserve.
        for now in 0..5 {
            onet.tick(now);
            assert!(onet.rx[0].reserved_flits <= HUB_RX_CAP);
        }
        let (out, _) = run(&mut onet, 5, 500);
        assert_eq!(out.len(), 7, "all messages eventually delivered");
    }

    #[test]
    fn tx_queue_capacity_respected() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        for i in 0..HUB_TX_CAP as u16 {
            assert!(onet.can_accept(ClusterId(0)));
            onet.accept(
                ClusterId(0),
                msg(i, Dest::Unicast(CoreId(63)), MessageClass::Control),
                0,
            );
        }
        assert!(!onet.can_accept(ClusterId(0)));
    }

    #[test]
    #[should_panic(expected = "intra-cluster")]
    fn intra_cluster_unicast_rejected() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        // cores 0 and 1 share cluster 0.
        onet.accept(
            ClusterId(0),
            msg(0, Dest::Unicast(CoreId(1)), MessageClass::Control),
            0,
        );
    }

    #[test]
    fn latency_accounts_injection_time() {
        let t = topo();
        let mut onet = Onet::new(t, 64);
        let m = msg(0, Dest::Unicast(CoreId(63)), MessageClass::Control);
        // injected at cycle 100 (e.g. after an ENet trip), accepted now.
        onet.accept(ClusterId(0), m, 100);
        let mut out = Vec::new();
        let mut now = 200;
        while !onet.is_idle() {
            onet.tick(now);
            onet.drain_deliveries(&mut out);
            now += 1;
        }
        // latency includes the 100.. wait before acceptance
        assert!(out[0].at - 100 >= 100, "latency measured from injection");
        assert_eq!(onet.stats.latency_sum, out[0].at - 100);
    }
}
