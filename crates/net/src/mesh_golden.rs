//! Differential golden model for [`super::Mesh`] (test-only).
//!
//! `RefMesh` is the wormhole mesh semantics written as naively as
//! possible: every router ticked every cycle, positional round-robin
//! arbitration, strictly one flit per source per grant. None of the
//! production fast paths exist here — no active-set bitmap, no
//! `next_ready` horizons, no `busy_until` bulk-run seals, no
//! continuation caches, no bitset arbitration. The production mesh
//! claims bit-identical behaviour to this per-flit model; the
//! differential tests below drive both with the same seeded traffic and
//! compare every delivery, every hub pop and every back-pressure
//! decision, cycle for cycle.

use super::*;
use crate::types::MessageClass;

/// Per-flit reference mesh. Same externally observable contract as
/// [`Mesh`] (`try_send` / `try_send_to_hub` / `tick` / deliveries / hub
/// pops), none of the optimisations.
struct RefMesh {
    topo: Topology,
    kind: MeshKind,
    flit_width: u32,
    depth: usize,
    packets: Vec<Option<Packet>>,
    free: Vec<u32>,
    /// Input buffer per `q = r*4 + port` — a plain `VecDeque`, no slab.
    bufs: Vec<VecDeque<Flit>>,
    nicq: Vec<VecDeque<u32>>,
    nic_sent: Vec<u8>,
    repq: Vec<VecDeque<Flow>>,
    out_owner: Vec<u32>,
    hub_out: Vec<VecDeque<(Message, Cycle)>>,
    hub_used: Vec<u32>,
    deliveries: Vec<Delivery>,
}

impl RefMesh {
    fn new(topo: Topology, kind: MeshKind, flit_width: u32, depth: usize) -> Self {
        let n = topo.cores();
        RefMesh {
            topo,
            kind,
            flit_width,
            depth,
            packets: Vec::new(),
            free: Vec::new(),
            bufs: (0..n * 4).map(|_| VecDeque::new()).collect(),
            nicq: (0..n).map(|_| VecDeque::new()).collect(),
            nic_sent: vec![0; n],
            repq: (0..n).map(|_| VecDeque::new()).collect(),
            out_owner: vec![NO_OWNER; n * 6],
            hub_out: (0..topo.clusters()).map(|_| VecDeque::new()).collect(),
            hub_used: vec![0; topo.clusters()],
            deliveries: Vec::new(),
        }
    }

    fn coords(&self, r: usize) -> (u16, u16) {
        self.topo.xy(CoreId(r as u16))
    }

    fn flits_of(&self, msg: &Message) -> u8 {
        msg.class.flits(self.flit_width) as u8
    }

    fn alloc_packet(&mut self, p: Packet) -> u32 {
        if let Some(id) = self.free.pop() {
            self.packets[id as usize] = Some(p);
            id
        } else {
            self.packets.push(Some(p));
            (self.packets.len() - 1) as u32
        }
    }

    fn free_packet(&mut self, id: u32) {
        self.packets[id as usize] = None;
        self.free.push(id);
    }

    fn dest_xy(&self, route: Route) -> (u16, u16) {
        match route {
            Route::ToCore(d) | Route::ToHub(d) => self.topo.xy(d),
            Route::McastRow(_) | Route::McastCol(_) => (0, 0),
        }
    }

    fn xy_toward(&self, r: usize, dx: u16, dy: u16) -> Port {
        let (x, y) = self.coords(r);
        if dx > x {
            Port::East
        } else if dx < x {
            Port::West
        } else if dy > y {
            Port::South
        } else if dy < y {
            Port::North
        } else {
            Port::Local
        }
    }

    fn route_port(&self, pkt: &Packet, r: usize) -> Port {
        match pkt.route {
            Route::ToCore(_) => self.xy_toward(r, pkt.dest_x, pkt.dest_y),
            Route::ToHub(_) => {
                if self.coords(r) == (pkt.dest_x, pkt.dest_y) {
                    Port::Hub
                } else {
                    self.xy_toward(r, pkt.dest_x, pkt.dest_y)
                }
            }
            Route::McastRow(d) | Route::McastCol(d) => d.port(),
        }
    }

    fn continues_at(&self, pkt: &Packet, at: usize) -> bool {
        let (x, y) = self.coords(at);
        match pkt.route {
            Route::ToCore(_) | Route::ToHub(_) => true,
            Route::McastRow(Dir::East) => x + 1 < self.topo.width,
            Route::McastRow(Dir::West) => x > 0,
            Route::McastCol(Dir::North) => y > 0,
            Route::McastCol(Dir::South) => y + 1 < self.topo.height,
            Route::McastRow(Dir::North | Dir::South) | Route::McastCol(Dir::East | Dir::West) => {
                unreachable!("invalid multicast direction")
            }
        }
    }

    fn inject(&mut self, msg: Message, route: Route, now: Cycle) {
        let len = self.flits_of(&msg);
        let (dest_x, dest_y) = self.dest_xy(route);
        let id = self.alloc_packet(Packet {
            msg,
            route,
            len,
            dest_x,
            dest_y,
            inject: now,
        });
        self.nicq[msg.src.idx()].push_back(id);
    }

    fn try_send(&mut self, msg: Message, now: Cycle) -> bool {
        match msg.dest {
            Dest::Unicast(dst) if dst == msg.src => {
                self.deliveries.push(Delivery {
                    msg,
                    receiver: dst,
                    at: now + 1,
                });
                true
            }
            Dest::Unicast(dst) => {
                if self.nicq[msg.src.idx()].len() >= NIC_CAP {
                    return false;
                }
                self.inject(msg, Route::ToCore(dst), now);
                true
            }
            Dest::Broadcast => match self.kind {
                MeshKind::Pure => {
                    // NIC-expanded broadcast bypasses the cap (protocol
                    // obligation), exactly like the production mesh.
                    for c in 0..self.topo.cores() as u16 {
                        if CoreId(c) != msg.src {
                            self.inject(msg, Route::ToCore(CoreId(c)), now);
                        }
                    }
                    true
                }
                MeshKind::BcastTree => {
                    if self.nicq[msg.src.idx()].len() >= NIC_CAP {
                        return false;
                    }
                    let (x, y) = self.coords(msg.src.idx());
                    let len = self.flits_of(&msg);
                    let branches: [Option<Route>; 4] = [
                        (x + 1 < self.topo.width).then_some(Route::McastRow(Dir::East)),
                        (x > 0).then_some(Route::McastRow(Dir::West)),
                        (y > 0).then_some(Route::McastCol(Dir::North)),
                        (y + 1 < self.topo.height).then_some(Route::McastCol(Dir::South)),
                    ];
                    for route in branches.into_iter().flatten() {
                        let id = self.alloc_packet(Packet {
                            msg,
                            route,
                            len,
                            dest_x: 0,
                            dest_y: 0,
                            inject: now,
                        });
                        self.repq[msg.src.idx()].push_back(Flow {
                            pkt: id,
                            sent: 0,
                            ready: now,
                        });
                    }
                    true
                }
            },
        }
    }

    fn try_send_to_hub(&mut self, msg: Message, now: Cycle) -> bool {
        if self.nicq[msg.src.idx()].len() >= NIC_CAP {
            return false;
        }
        let hub_tile = self.topo.hub_core(self.topo.cluster_of(msg.src));
        self.inject(msg, Route::ToHub(hub_tile), now);
        true
    }

    fn pop_hub_out(&mut self, cluster: ClusterId) -> Option<(Message, Cycle)> {
        let m = self.hub_out[cluster.idx()].pop_front();
        if let Some((ref msg, _)) = m {
            self.hub_used[cluster.idx()] -= u32::from(self.flits_of(msg));
        }
        m
    }

    fn is_idle(&self) -> bool {
        self.bufs.iter().all(VecDeque::is_empty)
            && self.nicq.iter().all(VecDeque::is_empty)
            && self.repq.iter().all(VecDeque::is_empty)
    }

    fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    /// Tick every router, ascending index, per-flit positional
    /// round-robin — the naive transcription of the arbitration spec.
    fn tick(&mut self, now: Cycle) {
        for r in 0..self.topo.cores() {
            self.tick_router(r, now);
        }
    }

    fn tick_router(&mut self, r: usize, now: Cycle) {
        let mut occupied = [false; 4];
        for (p, o) in occupied.iter_mut().enumerate() {
            *o = !self.bufs[r * 4 + p].is_empty();
        }
        let has_nic = !self.nicq[r].is_empty();
        let nrep = self.repq[r].len();
        let total = occupied.iter().filter(|&&o| o).count() + usize::from(has_nic) + nrep;
        if total == 0 {
            return;
        }
        let rot = if total == 1 {
            0
        } else {
            (now as usize + r) % total
        };
        let mut out_used = [false; 6];
        let mut rep_done: Vec<usize> = Vec::new();
        // Canonical candidate order In(0..4), Nic, Rep(0..n), rotated
        // left by `rot`: pass 0 serves positions rot.., pass 1 the rest.
        for pass in 0..2u8 {
            let serve_from = pass == 0;
            let mut pos = 0usize;
            for (p, &occ) in occupied.iter().enumerate() {
                if occ {
                    if (pos >= rot) == serve_from {
                        self.service(r, Src::In(p), now, &mut out_used, &mut rep_done);
                    }
                    pos += 1;
                }
            }
            if has_nic {
                if (pos >= rot) == serve_from {
                    self.service(r, Src::Nic, now, &mut out_used, &mut rep_done);
                }
                pos += 1;
            }
            for i in 0..nrep {
                if (pos >= rot) == serve_from {
                    self.service(r, Src::Rep(i), now, &mut out_used, &mut rep_done);
                }
                pos += 1;
            }
        }
        rep_done.sort_unstable_by(|a, b| b.cmp(a));
        for i in rep_done {
            self.repq[r].remove(i);
        }
    }

    fn peek(&self, r: usize, src: Src, now: Cycle) -> Option<(u32, u8, u8, bool, Port)> {
        match src {
            Src::In(i) => {
                let f = self.bufs[r * 4 + i].front()?;
                if f.arrival > now {
                    return None;
                }
                Some((f.pkt, f.idx, f.len, f.idx == 0, f.port))
            }
            Src::Nic => {
                let &pkt = self.nicq[r].front()?;
                let p = self.packets[pkt as usize].as_ref()?;
                let idx = self.nic_sent[r];
                Some((pkt, idx, p.len, idx == 0, self.route_port(p, r)))
            }
            Src::Rep(i) => {
                let flow = self.repq[r].get(i)?;
                if flow.ready > now {
                    return None;
                }
                let p = self.packets[flow.pkt as usize].as_ref()?;
                Some((
                    flow.pkt,
                    flow.sent,
                    p.len,
                    flow.sent == 0,
                    self.route_port(p, r),
                ))
            }
        }
    }

    fn service(
        &mut self,
        r: usize,
        src: Src,
        now: Cycle,
        out_used: &mut [bool; 6],
        rep_done: &mut Vec<usize>,
    ) {
        let Some((pkt_id, idx, len, is_head, out)) = self.peek(r, src, now) else {
            return;
        };
        let is_tail = idx + 1 == len;
        let oi = out.idx();
        if out_used[oi] {
            return;
        }
        let owner = self.out_owner[r * 6 + oi];
        if owner == pkt_id {
            // streaming an owned port
        } else if owner != NO_OWNER {
            return;
        } else {
            if !is_head {
                return;
            }
            self.out_owner[r * 6 + oi] = pkt_id;
        }
        let moved = match out {
            Port::Local => {
                if is_tail {
                    let pkt = self.packets[pkt_id as usize].expect("live packet");
                    let Route::ToCore(receiver) = pkt.route else {
                        unreachable!("only ToCore ejects locally")
                    };
                    self.deliveries.push(Delivery {
                        msg: pkt.msg,
                        receiver,
                        at: now + 1,
                    });
                    self.free_packet(pkt_id);
                }
                true
            }
            Port::Hub => self.eject_to_hub(pkt_id, r, is_tail),
            Port::North | Port::South | Port::East | Port::West => {
                self.forward_flit(r, out, pkt_id, idx, len, is_tail, now)
            }
        };
        if !moved {
            return;
        }
        out_used[oi] = true;
        match src {
            Src::In(i) => {
                self.bufs[r * 4 + i].pop_front();
            }
            Src::Nic => {
                if is_tail {
                    self.nicq[r].pop_front();
                    self.nic_sent[r] = 0;
                } else {
                    self.nic_sent[r] += 1;
                }
            }
            Src::Rep(i) => {
                if is_tail {
                    rep_done.push(i);
                } else {
                    self.repq[r][i].sent += 1;
                }
            }
        }
        if is_tail {
            self.out_owner[r * 6 + oi] = NO_OWNER;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_flit(
        &mut self,
        r: usize,
        out: Port,
        pkt_id: u32,
        idx: u8,
        len: u8,
        is_tail: bool,
        now: Cycle,
    ) -> bool {
        let (x, y) = self.coords(r);
        let (nx, ny) = match out {
            Port::North => (x, y - 1),
            Port::South => (x, y + 1),
            Port::East => (x + 1, y),
            Port::West => (x - 1, y),
            Port::Local | Port::Hub => unreachable!("not a link port"),
        };
        let nri = self.topo.core_at(nx, ny).idx();
        let q = nri * 4 + (out.idx() ^ 1);
        let pkt = self.packets[pkt_id as usize].expect("live packet");
        let continues = self.continues_at(&pkt, nri);
        if continues && self.bufs[q].len() >= self.depth {
            return false;
        }
        if continues {
            let port = self.route_port(&pkt, nri);
            self.bufs[q].push_back(Flit {
                pkt: pkt_id,
                idx,
                len,
                port,
                arrival: now + 2,
            });
        }
        if is_tail {
            self.on_tail_arrival(pkt_id, nri, continues, now + 2);
        }
        true
    }

    fn on_tail_arrival(&mut self, pkt_id: u32, at: usize, continues: bool, ready: Cycle) {
        let pkt = self.packets[pkt_id as usize].expect("live packet");
        let (_, y) = self.coords(at);
        match pkt.route {
            Route::ToCore(_) | Route::ToHub(_) => {}
            Route::McastRow(_) => {
                let here = CoreId(at as u16);
                self.spawn(pkt_id, at, Route::ToCore(here), ready);
                if y > 0 {
                    self.spawn(pkt_id, at, Route::McastCol(Dir::North), ready);
                }
                if y + 1 < self.topo.height {
                    self.spawn(pkt_id, at, Route::McastCol(Dir::South), ready);
                }
                if !continues {
                    self.free_packet(pkt_id);
                }
            }
            Route::McastCol(_) => {
                let here = CoreId(at as u16);
                self.spawn(pkt_id, at, Route::ToCore(here), ready);
                if !continues {
                    self.free_packet(pkt_id);
                }
            }
        }
    }

    fn spawn(&mut self, parent: u32, at: usize, route: Route, ready: Cycle) {
        let p = self.packets[parent as usize].expect("live packet");
        let (dest_x, dest_y) = self.dest_xy(route);
        let id = self.alloc_packet(Packet {
            route,
            dest_x,
            dest_y,
            ..p
        });
        self.repq[at].push_back(Flow {
            pkt: id,
            sent: 0,
            ready,
        });
    }

    fn eject_to_hub(&mut self, pkt_id: u32, r: usize, is_tail: bool) -> bool {
        let cl = self.topo.cluster_of(CoreId(r as u16)).idx();
        if self.hub_used[cl] >= HUB_BUF_FLITS {
            return false;
        }
        self.hub_used[cl] += 1;
        if is_tail {
            let pkt = self.packets[pkt_id as usize].expect("live packet");
            self.hub_out[cl].push_back((pkt.msg, pkt.inject));
            self.free_packet(pkt_id);
        }
        true
    }
}

// ---------------------------------------------------------------------
// Differential drivers
// ---------------------------------------------------------------------

/// Deterministic 64-bit LCG (Knuth MMIX constants); tests may not rely
/// on ambient randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn msg(src: u16, dest: Dest, class: MessageClass, token: u64) -> Message {
    Message {
        src: CoreId(src),
        dest,
        class,
        token,
    }
}

/// Drive the production mesh and the per-flit reference with identical
/// seeded traffic; compare every back-pressure decision and every
/// delivery (content, receiver, cycle, order), then require both to
/// drain on the same cycle.
fn differential_run(
    kind: MeshKind,
    flit_width: u32,
    depth: usize,
    seed: u64,
    inject_cycles: u64,
    bcast_one_in: u64,
) {
    let topo = Topology::small(8, 4);
    let cores = topo.cores() as u64;
    let mut fast = Mesh::new(topo, kind, flit_width, depth);
    let mut gold = RefMesh::new(topo, kind, flit_width, depth);
    let mut rng = Lcg(seed);
    let mut fast_out = Vec::new();
    let mut gold_out = Vec::new();
    let mut now: Cycle = 0;
    let mut token = 0u64;
    let mut delivered = 0usize;
    loop {
        if now < inject_cycles && rng.below(2) == 0 {
            let src = rng.below(cores) as u16;
            let class = if rng.below(2) == 0 {
                MessageClass::Control
            } else {
                MessageClass::Data
            };
            let dest = if bcast_one_in > 0 && rng.below(bcast_one_in) == 0 {
                Dest::Broadcast
            } else {
                Dest::Unicast(CoreId(rng.below(cores) as u16))
            };
            token += 1;
            let m = msg(src, dest, class, token);
            let a = fast.try_send(m, now);
            let b = gold.try_send(m, now);
            assert_eq!(a, b, "back-pressure diverged at cycle {now} for {m:?}");
        }
        fast.tick(now);
        gold.tick(now);
        fast.drain_deliveries(&mut fast_out);
        gold.drain_deliveries(&mut gold_out);
        assert_eq!(
            fast_out, gold_out,
            "deliveries diverged at cycle {now} (seed {seed})"
        );
        delivered += fast_out.len();
        fast_out.clear();
        gold_out.clear();
        now += 1;
        if now >= inject_cycles {
            let fi = fast.is_idle();
            let gi = gold.is_idle();
            assert_eq!(fi, gi, "idle state diverged at cycle {now} (seed {seed})");
            if fi {
                break;
            }
        }
        assert!(
            now < inject_cycles + 100_000,
            "mesh did not drain (seed {seed})"
        );
    }
    assert!(delivered > 0, "degenerate run: nothing delivered");
}

#[test]
fn golden_unicast_pure_flit64() {
    differential_run(MeshKind::Pure, 64, 4, 0x5eed_0001, 300, 0);
}

#[test]
fn golden_unicast_data_heavy_flit16() {
    // 39-flit data packets: long worms, deep contention, bulk runs.
    differential_run(MeshKind::Pure, 16, 4, 0x5eed_0002, 200, 0);
}

#[test]
fn golden_broadcast_tree_flit64() {
    differential_run(MeshKind::BcastTree, 64, 4, 0x5eed_0003, 200, 16);
}

#[test]
fn golden_pure_expanded_broadcast() {
    differential_run(MeshKind::Pure, 64, 4, 0x5eed_0004, 120, 24);
}

#[test]
fn golden_shallow_buffers_flit32() {
    // depth 2 disables the bulk-run window entirely (limit = k−1 ≤ 1);
    // the fast path must degrade to per-flit without timing drift.
    differential_run(MeshKind::Pure, 32, 2, 0x5eed_0005, 250, 0);
}

#[test]
fn golden_hub_traffic_matches() {
    let topo = Topology::small(8, 4);
    let mut fast = Mesh::new(topo, MeshKind::Pure, 64, 4);
    let mut gold = RefMesh::new(topo, MeshKind::Pure, 64, 4);
    let mut rng = Lcg(0x5eed_0006);
    let cores = topo.cores() as u64;
    let mut now: Cycle = 0;
    let mut pops = 0usize;
    while now < 2_000 {
        if now < 400 && rng.below(3) == 0 {
            let m = msg(
                rng.below(cores) as u16,
                Dest::Unicast(CoreId(0)), // dest field unused for hub sends
                MessageClass::Control,
                now,
            );
            let a = fast.try_send_to_hub(m, now);
            let b = gold.try_send_to_hub(m, now);
            assert_eq!(a, b, "hub back-pressure diverged at cycle {now}");
        }
        fast.tick(now);
        gold.tick(now);
        for c in 0..topo.clusters() {
            let cl = ClusterId(c as u8);
            let a = fast.pop_hub_out(cl);
            let b = gold.pop_hub_out(cl);
            assert_eq!(a, b, "hub pop diverged at cycle {now} cluster {c}");
            pops += usize::from(a.is_some());
        }
        now += 1;
    }
    assert!(pops > 0, "degenerate run: no hub ejections");
    assert!(fast.is_idle() && gold.is_idle());
}

// ---------------------------------------------------------------------
// Wormhole edge cases (production mesh only)
// ---------------------------------------------------------------------

fn drain(mesh: &mut Mesh, start: Cycle, max: u64) -> (Vec<Delivery>, Cycle) {
    let mut out = Vec::new();
    let mut now = start;
    while !mesh.is_idle() {
        mesh.tick(now);
        mesh.drain_deliveries(&mut out);
        now += 1;
        assert!(now - start < max, "mesh did not drain in {max} cycles");
    }
    (out, now)
}

#[test]
fn single_flit_packets_claim_and_release_same_grant() {
    // Control at 128-bit flits = 1 flit: every flit is head AND tail, so
    // the switch claims and releases the output in the same grant and
    // the bulk-run path (body flits only) never engages.
    assert_eq!(MessageClass::Control.flits(128), 1);
    let topo = Topology::small(8, 4);
    let mut mesh = Mesh::new(topo, MeshKind::Pure, 128, 4);
    for i in 0..8u16 {
        assert!(mesh.try_send(
            msg(
                i,
                Dest::Unicast(CoreId(63 - i)),
                MessageClass::Control,
                u64::from(i)
            ),
            0
        ));
    }
    let (out, _) = drain(&mut mesh, 0, 2_000);
    assert_eq!(out.len(), 8);
    let mut tokens: Vec<u64> = out.iter().map(|d| d.msg.token).collect();
    tokens.sort_unstable();
    assert_eq!(tokens, (0..8).collect::<Vec<_>>());
}

#[test]
fn ring_wraparound_under_sustained_stream() {
    // A long stream of 39-flit packets across one row forces every
    // intermediate input ring through many head-pointer wraps (depth 4,
    // so the ring index wraps every 4 pops) while bulk runs move the
    // head by more than one slot at a time.
    let topo = Topology::small(8, 4);
    let mut mesh = Mesh::new(topo, MeshKind::Pure, 16, 4);
    let src = topo.core_at(0, 2);
    let dst = topo.core_at(7, 2);
    let n = 12u64;
    for t in 0..n {
        assert!(mesh.try_send(msg(src.0, Dest::Unicast(dst), MessageClass::Data, t), 0));
    }
    let (out, end) = drain(&mut mesh, 0, 50_000);
    assert_eq!(out.len(), n as usize);
    for d in &out {
        assert_eq!(d.receiver, dst);
    }
    // Wormhole serialization floor: n packets × 39 flits through one NIC.
    assert!(end >= n * 39, "drained impossibly fast: {end}");
}

#[test]
fn interleaved_packets_stay_whole_with_two_flit_buffers() {
    // Two multi-flit packets from opposite sides converge on the same
    // output port of a middle router with depth-2 buffers (minimum
    // credit). Wormhole ownership must serialize them packet-by-packet:
    // both arrive intact, and the switch never interleaves their flits
    // (an interleave would strand a body flit without an owned port and
    // trip the mesh's internal debug assertions).
    let topo = Topology::small(8, 4);
    let mut mesh = Mesh::new(topo, MeshKind::Pure, 16, 2);
    let west = topo.core_at(0, 1);
    let east = topo.core_at(7, 1);
    let dst = topo.core_at(4, 3); // both cross (4,1) then turn south
    assert!(mesh.try_send(msg(west.0, Dest::Unicast(dst), MessageClass::Data, 1), 0));
    assert!(mesh.try_send(msg(east.0, Dest::Unicast(dst), MessageClass::Data, 2), 0));
    let (out, _) = drain(&mut mesh, 0, 20_000);
    assert_eq!(out.len(), 2);
    let mut tokens: Vec<u64> = out.iter().map(|d| d.msg.token).collect();
    tokens.sort_unstable();
    assert_eq!(tokens, vec![1, 2]);
}

#[test]
fn full_backpressure_hotspot_drains_without_deadlock() {
    // Every core floods the same hotspot with data packets through
    // depth-2 buffers: sustained credit exhaustion on every approach
    // path. XY routing is deadlock-free by construction; the mesh must
    // drain every packet once injection stops.
    let topo = Topology::small(8, 4);
    let mut mesh = Mesh::new(topo, MeshKind::Pure, 32, 2);
    let hotspot = topo.core_at(3, 1);
    let mut sent = 0u64;
    let mut now: Cycle = 0;
    let mut out = Vec::new();
    while now < 600 {
        for c in 0..topo.cores() as u16 {
            if CoreId(c) != hotspot && now % 7 == u64::from(c) % 7 {
                // try_send may refuse under NIC back-pressure; that IS
                // the back-pressure path being exercised.
                if mesh.try_send(
                    msg(c, Dest::Unicast(hotspot), MessageClass::Data, sent),
                    now,
                ) {
                    sent += 1;
                }
            }
        }
        mesh.tick(now);
        mesh.drain_deliveries(&mut out);
        now += 1;
    }
    assert!(sent > 100, "hotspot run injected too little: {sent}");
    let (rest, _) = drain(&mut mesh, now, 200_000);
    out.extend(rest);
    assert_eq!(out.len() as u64, sent, "every injected packet must arrive");
    assert!(out.iter().all(|d| d.receiver == hotspot));
}
