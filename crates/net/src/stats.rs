//! Event counters collected by every network model.
//!
//! These are the quantities the paper's energy methodology needs: the
//! simulator produces *event counters and completion time*, which are then
//! combined with per-event energies and static powers from `atac-phys`
//! (paper §V-A "overall toolflow"). Latency statistics feed Fig. 3, the
//! traffic mix feeds Fig. 5, injected flit counts feed Fig. 6, and the
//! SWMR mode cycles feed Table V and the laser energy model.
//!
//! Counter-coverage contract (enforced by `atac-audit`): every field
//! below must either be folded into `crates/sim/src/energy.rs` or carry
//! an `// audit: non-energy` waiver explaining why it is performance-only.

use crate::counters_struct;

counters_struct! {
    /// All event counters for one simulation run of one network.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct NetStats {
        // ---- Traffic accounting ------------------------------------------
        /// Messages accepted for injection (unicast).
        // audit: non-energy — traffic-mix statistic (Table V); flit-level
        // energy is charged via buffer/xbar/link counters below.
        pub unicast_messages: u64,
        /// Messages accepted for injection (broadcast).
        // audit: non-energy — traffic-mix statistic (Table V / Fig. 5).
        pub broadcast_messages: u64,
        /// Flits injected into the network (after any source expansion).
        // audit: non-energy — offered-load metric (Fig. 6); per-flit energy
        // is charged at each buffer/crossbar/link event, not at injection.
        pub flits_injected: u64,
        /// Message deliveries whose original message was a unicast
        /// (measured at the receiver, as in Fig. 5).
        // audit: non-energy — receiver-side traffic mix (Fig. 5).
        pub unicast_received: u64,
        /// Message deliveries whose original message was a broadcast.
        // audit: non-energy — receiver-side traffic mix (Fig. 5).
        pub broadcast_received: u64,
        /// Sum of per-delivery latencies (inject cycle → tail arrival).
        // audit: non-energy — latency statistic (Fig. 3).
        pub latency_sum: u64,
        /// Number of deliveries contributing to `latency_sum`.
        // audit: non-energy — latency statistic (Fig. 3).
        pub latency_count: u64,

        // ---- Electrical mesh (ENet / EMesh) events -----------------------
        /// Flit writes into router input buffers.
        pub buffer_writes: u64,
        /// Flit reads out of router input buffers.
        pub buffer_reads: u64,
        /// Flit crossbar traversals.
        pub xbar_traversals: u64,
        /// Switch-allocation decisions (per head flit per router).
        pub arbitrations: u64,
        /// Flit link traversals (per hop).
        pub link_traversals: u64,

        // ---- Hub (cluster interface) events ------------------------------
        /// Flits buffered at a hub (either direction).
        pub hub_buffer_writes: u64,
        /// Flits drained from a hub buffer.
        pub hub_buffer_reads: u64,

        // ---- ONet (optical) events ----------------------------------------
        /// Flits modulated onto the optical data link.
        pub onet_flits_sent: u64,
        /// Flit receptions, summed over receiving hubs (a broadcast flit
        /// received by 63 hubs counts 63).
        pub onet_flit_receptions: u64,
        /// Select-link notifications sent (one per message setup).
        pub select_notifications: u64,
        /// Cycles the data-link lasers spent in unicast mode, summed over all
        /// sender hubs.
        pub laser_unicast_cycles: u64,
        /// Cycles in broadcast mode, summed over all sender hubs.
        pub laser_broadcast_cycles: u64,
        /// Laser on/off (or power-level) transitions, summed over hubs.
        pub laser_transitions: u64,

        // ---- Cluster receive networks (BNet / StarNet) --------------------
        /// Unicast flits delivered through a receive network.
        pub receive_net_unicast_flits: u64,
        /// Broadcast flits delivered through a receive network (one count per
        /// flit per cluster, regardless of fan-out; fan-out cost is in the
        /// energy model).
        pub receive_net_broadcast_flits: u64,

        // ---- Run bookkeeping ----------------------------------------------
        /// Cycles simulated (set by the owner at the end of a run).
        // audit: non-energy — completion time enters the energy integration
        // as the `cycles` argument of `integrate`, not through this copy.
        pub cycles: u64,
    }
}

impl NetStats {
    /// Mean end-to-end packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.latency_count == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.latency_count as f64
        }
    }

    /// Fraction of received messages that were broadcasts (Fig. 5's
    /// receiver-measured traffic mix).
    pub fn broadcast_fraction_received(&self) -> f64 {
        let total = self.unicast_received + self.broadcast_received;
        if total == 0 {
            0.0
        } else {
            self.broadcast_received as f64 / total as f64
        }
    }

    /// Offered load in flits/cycle/core (Fig. 6's metric).
    pub fn offered_load(&self, cores: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flits_injected as f64 / self.cycles as f64 / cores as f64
        }
    }

    /// SWMR link utilization: fraction of link-cycles spent in unicast or
    /// broadcast mode (Table V), given the number of sender links.
    pub fn swmr_utilization(&self, links: usize) -> f64 {
        if self.cycles == 0 || links == 0 {
            0.0
        } else {
            (self.laser_unicast_cycles + self.laser_broadcast_cycles) as f64
                / (self.cycles as f64 * links as f64)
        }
    }

    /// Average number of unicast messages between successive broadcasts
    /// (Table V's second column).
    pub fn unicasts_per_broadcast(&self) -> f64 {
        if self.broadcast_messages == 0 {
            f64::INFINITY
        } else {
            self.unicast_messages as f64 / self.broadcast_messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_empty() {
        assert_eq!(NetStats::default().avg_latency(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = NetStats {
            unicast_received: 75,
            broadcast_received: 25,
            flits_injected: 2000,
            cycles: 100,
            laser_unicast_cycles: 30,
            laser_broadcast_cycles: 10,
            unicast_messages: 500,
            broadcast_messages: 5,
            latency_sum: 400,
            latency_count: 100,
            ..Default::default()
        };
        assert!((s.broadcast_fraction_received() - 0.25).abs() < 1e-12);
        assert!((s.offered_load(4) - 5.0).abs() < 1e-12);
        assert!((s.swmr_utilization(2) - 0.2).abs() < 1e-12);
        assert!((s.unicasts_per_broadcast() - 100.0).abs() < 1e-12);
        assert!((s.avg_latency() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = NetStats {
            flits_injected: 10,
            laser_transitions: 3,
            ..Default::default()
        };
        let b = NetStats {
            flits_injected: 5,
            laser_transitions: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flits_injected, 15);
        assert_eq!(a.laser_transitions, 7);
    }

    #[test]
    fn no_broadcasts_means_infinite_ratio() {
        let s = NetStats {
            unicast_messages: 10,
            ..Default::default()
        };
        assert!(s.unicasts_per_broadcast().is_infinite());
    }

    #[test]
    fn field_roundtrip_by_name() {
        let mut a = NetStats::default();
        let b = NetStats {
            xbar_traversals: 9,
            laser_transitions: 2,
            cycles: 77,
            ..Default::default()
        };
        for (name, value) in b.fields() {
            assert!(a.set_field(name, value), "unknown field {name}");
        }
        assert_eq!(a, b);
        assert!(!a.set_field("no_such_counter", 1));
        assert_eq!(NetStats::FIELD_NAMES.len(), b.fields().len());
    }
}
