//! Cycle-level wormhole electrical mesh.
//!
//! One implementation serves three roles, selected by [`MeshKind`] and by
//! whether hub ports are used:
//!
//! * **EMesh-Pure** — the paper's plain electrical mesh baseline. It has
//!   no multicast hardware: a broadcast is expanded at the source NIC into
//!   `N−1` serialized unicasts (paper §V-B: "EMesh-Pure performs
//!   broadcasts by sending multiple unicast messages in succession").
//! * **EMesh-BCast** — mesh with *router multicast*: a broadcast travels
//!   as XY dimension-order tree: row packets east/west from the source
//!   spawn column packets (and a local copy) at every router they pass;
//!   column packets deliver a local copy at every hop.
//! * **ENet** — the electrical component of ATAC/ATAC+: same mesh, plus a
//!   bounded ejection port into each cluster's hub for ONet-bound traffic.
//!
//! Mechanics (paper Table I): 1-cycle router + 1-cycle link per hop
//! (a forwarded flit becomes visible at the next router 2 cycles later),
//! wormhole flow control with a single virtual channel, XY routing,
//! 4-flit input buffers with credit back-pressure, round-robin switch
//! arbitration. Multicast forks replicate through a per-router
//! *replication queue* — the documented stand-in for the replication VCs
//! real multicast routers provision (it is unbounded, but replica flits
//! still compete cycle-by-cycle for output ports, so contention is
//! modeled; only fork-induced deadlock is excluded by construction).
//!
//! ## Hot-path layout (DESIGN.md §14)
//!
//! Router state is struct-of-arrays: the four input buffers of every
//! router are fixed-capacity rings over one contiguous flit slab
//! (`buf_slab` + `buf_head`/`buf_len` words), and output ownership is a
//! flat `out_owner` word array — the per-cycle inner loop walks small
//! integer arrays instead of chasing `VecDeque` allocations. Route
//! decisions are static under XY routing, so they are made once per flit
//! per hop when the flit crosses the link (stored in the flit) and once
//! per packet at injection (destination coordinates stored in the
//! packet); the arbitration loop never divides. Round-robin candidate
//! order is enumerated arithmetically from the occupancy words — the old
//! per-cycle `src_scratch` rebuild is gone. Each router also maintains a
//! `next_ready` horizon (earliest cycle any of its sources could emit a
//! flit) so [`Mesh::next_event`] can hand the engine a skip-ahead target
//! covering quiet stretches.

use std::collections::VecDeque;

use crate::stats::NetStats;
use crate::topology::{Port, Topology};
use crate::types::{ClusterId, CoreId, Cycle, Delivery, Dest, Message};
use atac_trace::{
    occ_bucket, HostProfiler, NetDeliver, NetObsHandle, NetProfile, NetSubPhase, ProbeHandle,
    Subnet, TrafficKind,
};

/// Mesh behaviour for broadcast traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshKind {
    /// No multicast hardware; broadcasts become serialized unicasts.
    Pure,
    /// Router multicast via an XY spanning tree.
    BcastTree,
}

/// Travel direction of a multicast branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    North,
    South,
    East,
    West,
}

impl Dir {
    fn port(self) -> Port {
        match self {
            Dir::North => Port::North,
            Dir::South => Port::South,
            Dir::East => Port::East,
            Dir::West => Port::West,
        }
    }
}

/// How a packet is being steered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// XY to a core, eject at its Local port.
    ToCore(CoreId),
    /// XY to a hub tile, eject at its Hub port into the hub buffer.
    ToHub(CoreId),
    /// Multicast branch sweeping a row; spawns column branches + local
    /// copies at every router it reaches.
    McastRow(Dir),
    /// Multicast branch sweeping a column; spawns a local copy at every
    /// router it reaches.
    McastCol(Dir),
}

/// One packet (the wormhole routing unit).
#[derive(Debug, Clone, Copy)]
struct Packet {
    msg: Message,
    route: Route,
    len: u8,
    /// Destination tile, precomputed at injection so the per-cycle route
    /// decision is a pair of comparisons instead of div/mod. Multicast
    /// branches steer by fixed direction and leave this (0, 0).
    dest_x: u16,
    dest_y: u16,
    inject: Cycle,
}

/// A flit buffered at a router input. Carries everything the arbitration
/// loop needs — packet length and the static output port at *this*
/// router — so servicing a buffered flit touches no other memory.
#[derive(Debug, Clone, Copy)]
struct Flit {
    pkt: u32,
    idx: u8,
    len: u8,
    /// Output port at the router this flit is buffered at: the XY
    /// decision is static, so it is made once when the flit crosses the
    /// link, not re-derived every arbitration cycle.
    port: Port,
    arrival: Cycle,
}

const NO_FLIT: Flit = Flit {
    pkt: 0,
    idx: 0,
    len: 0,
    port: Port::Local,
    arrival: 0,
};

/// A replica or injected flow originating *inside* a router (replication
/// queue / NIC), which emits its packet's flits one per cycle starting at
/// `ready` (the cycle the forking tail actually arrives at this router).
#[derive(Debug, Clone, Copy)]
struct Flow {
    pkt: u32,
    sent: u8,
    ready: Cycle,
}

/// Per-cycle "output port already used" scoreboard (one slot per port).
type OutUsed = [bool; 6];

/// Identifies which source inside a router a candidate flit comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Input buffer for direction port (index 0..4).
    In(usize),
    /// NIC queue head.
    Nic,
    /// Replication queue entry at this index.
    Rep(usize),
}

/// Maximum packets queued at a NIC before `try_send` exerts back-pressure.
const NIC_CAP: usize = 16;
/// Hub ejection buffer capacity in flits.
const HUB_BUF_FLITS: u32 = 64;
/// `out_owner` word meaning "no packet holds this output port".
const NO_OWNER: u32 = u32::MAX;
/// `neighbor` word meaning "mesh edge — no router in that direction".
const NO_NEIGHBOR: u32 = u32::MAX;

/// The cycle-level mesh.
#[derive(Debug)]
pub struct Mesh {
    topo: Topology,
    kind: MeshKind,
    flit_width: u32,
    buffer_depth: usize,
    /// Slab stride per queue: `buffer_depth.next_power_of_two()`, so all
    /// ring slot arithmetic is an AND with [`Mesh::buf_mask`] instead of
    /// a division by the runtime depth. Occupancy is still capped at
    /// `buffer_depth`; the (at most `depth - 1`) surplus slots merely
    /// rotate through the ring unused.
    buf_stride: usize,
    /// `buf_stride - 1` (stride is a power of two).
    buf_mask: usize,

    // ---- struct-of-arrays router state ----
    /// Input-buffer flit slab: queue `q = r*4 + port` rings over slots
    /// `[q*buf_stride, (q+1)*buf_stride)`.
    buf_slab: Vec<Flit>,
    /// Ring head offset per input queue (`r*4 + port`).
    buf_head: Vec<u8>,
    /// Ring occupancy per input queue — this word *is* the credit count
    /// and the arbitration candidate census, maintained on every
    /// enqueue/dequeue rather than rebuilt per cycle.
    buf_len: Vec<u8>,
    /// Output-port ownership words (`r*6 + port`); [`NO_OWNER`] when free
    /// (wormhole allocation).
    out_owner: Vec<u32>,
    /// Replication queues: multicast forks awaiting switch access.
    repq: Vec<VecDeque<Flow>>,
    /// NIC injection queues (packet ids) and head-of-queue progress.
    nicq: Vec<VecDeque<u32>>,
    nic_sent: Vec<u8>,
    /// Per-router next-event horizon: the earliest cycle any source at
    /// this router could emit a flit (buffer-front arrival, NIC
    /// occupancy, replication readiness). Exactly recomputed at the end
    /// of each `tick_router` and min-merged on every deposit, so it is
    /// never late — the skip-ahead contract.
    next_ready: Vec<Cycle>,
    /// Per input queue (`r*4 + port`): first cycle the queue may be
    /// serviced again after a bulk run transfer. A bulk grant moves the
    /// flits the per-cycle switch would have moved over the next `m`
    /// cycles, so the queue is sealed for exactly that window — it stays
    /// in the candidate census (rotation parity) but peeks as empty.
    busy_until: Vec<Cycle>,
    /// Per input queue: packet id whose output port at *this* router is
    /// cached in `run_port` ([`NO_OWNER`] when empty). The head flit of
    /// every packet computes the XY decision once as it crosses the
    /// link; body and tail flits of the same wormhole run reuse it with
    /// zero route recomputation.
    run_port_pkt: Vec<u32>,
    /// Cached output port per input queue (valid iff `run_port_pkt`
    /// matches the packet being pushed).
    run_port: Vec<Port>,
    /// Cached continuation decision per input queue (valid iff
    /// `run_port_pkt` matches): whether the packet continues past this
    /// router. Body and tail flits use it to skip the packet-slab load
    /// entirely — the one random-access read on the per-flit path.
    run_cont: Vec<bool>,
    /// Messages currently queued across all hub ejection buffers —
    /// maintained on push/pop so `is_idle`/`next_event` never scan the
    /// per-cluster queues (O(active), not O(clusters)).
    hub_out_msgs: u64,

    // ---- precomputed geometry (all per-cycle div/mod hoisted here) ----
    /// Tile coordinates per router.
    coords: Vec<(u16, u16)>,
    /// Neighbouring router per (router, direction port): `r*4 + port`,
    /// [`NO_NEIGHBOR`] at the mesh edge.
    neighbor: Vec<u32>,
    /// Cluster index per router (hub ejection lookup).
    cluster: Vec<u16>,

    packets: Vec<Option<Packet>>,
    free: Vec<u32>,
    /// Routers that may have work this tick, as a bitmap (one bit per
    /// router). Draining set bits word-by-word visits routers in
    /// ascending index order, so deterministic processing order falls
    /// out of the representation — no sort, no dedup flag array.
    active_bits: Vec<u64>,
    deliveries: Vec<Delivery>,
    /// Per-cluster hub ejection: assembled messages (with their original
    /// injection cycle, for end-to-end latency) + flit occupancy.
    hub_out: Vec<VecDeque<(Message, Cycle)>>,
    hub_used: Vec<u32>,
    pub stats: NetStats,
    /// Observability probe (disabled by default; observers only, never
    /// feeds back into routing or timing).
    probe: ProbeHandle,
    /// Host self-profiler; network sub-phase laps fire only under the
    /// `ATAC_NETPROF` knob (one bool branch otherwise).
    prof: HostProfiler,
    /// Cycle-domain network observer (disabled by default; observers
    /// only, never feeds back into routing or timing).
    obs: NetObsHandle,
    /// Whether `obs` is attached — cached so hot-path counter updates are
    /// one local branch instead of a handle query.
    obs_on: bool,
    /// Locally-batched observer counters: the per-router-tick and
    /// per-flit events accumulate into this plain struct (no `RefCell`,
    /// no dynamic dispatch) and cross the observer boundary once per run
    /// via [`Mesh::flush_obs`].
    lobs: NetProfile,
    /// Double buffer for `active_bits`: swapped in each tick, so
    /// deposits during processing land in the *next* tick's set.
    work_bits: Vec<u64>,
    /// Reused completed-replication-index scratch for `tick_router`.
    rep_done_scratch: Vec<usize>,
}

impl Mesh {
    /// Create a mesh network.
    pub fn new(topo: Topology, kind: MeshKind, flit_width: u32, buffer_depth: usize) -> Self {
        let n = topo.cores();
        let mut coords = Vec::with_capacity(n);
        let mut neighbor = vec![NO_NEIGHBOR; n * 4];
        let mut cluster = Vec::with_capacity(n);
        for r in 0..n {
            let c = CoreId(r as u16); // audit: allow(cast) router index < cores ≤ 1024
            let (x, y) = topo.xy(c);
            coords.push((x, y));
            cluster.push(topo.cluster_of(c).idx() as u16); // audit: allow(cast) cluster count ≤ 64
            if y > 0 {
                neighbor[r * 4 + Port::North.idx()] = u32::from(topo.core_at(x, y - 1).0);
            }
            if y + 1 < topo.height {
                neighbor[r * 4 + Port::South.idx()] = u32::from(topo.core_at(x, y + 1).0);
            }
            if x + 1 < topo.width {
                neighbor[r * 4 + Port::East.idx()] = u32::from(topo.core_at(x + 1, y).0);
            }
            if x > 0 {
                neighbor[r * 4 + Port::West.idx()] = u32::from(topo.core_at(x - 1, y).0);
            }
        }
        let buf_stride = buffer_depth.next_power_of_two();
        Mesh {
            topo,
            kind,
            flit_width,
            buffer_depth,
            buf_stride,
            buf_mask: buf_stride - 1,
            buf_slab: vec![NO_FLIT; n * 4 * buf_stride],
            buf_head: vec![0; n * 4],
            buf_len: vec![0; n * 4],
            out_owner: vec![NO_OWNER; n * 6],
            repq: (0..n).map(|_| VecDeque::new()).collect(),
            nicq: (0..n).map(|_| VecDeque::new()).collect(),
            nic_sent: vec![0; n],
            next_ready: vec![Cycle::MAX; n],
            busy_until: vec![0; n * 4],
            run_port_pkt: vec![NO_OWNER; n * 4],
            run_port: vec![Port::Local; n * 4],
            run_cont: vec![false; n * 4],
            hub_out_msgs: 0,
            coords,
            neighbor,
            cluster,
            packets: Vec::new(),
            free: Vec::new(),
            active_bits: vec![0; n.div_ceil(64)],
            deliveries: Vec::new(),
            hub_out: (0..topo.clusters()).map(|_| VecDeque::new()).collect(),
            hub_used: vec![0; topo.clusters()],
            stats: NetStats::default(),
            probe: ProbeHandle::default(),
            prof: HostProfiler::disabled(),
            obs: NetObsHandle::disabled(),
            obs_on: false,
            lobs: NetProfile::new(),
            work_bits: vec![0; n.div_ceil(64)],
            rep_done_scratch: Vec::new(),
        }
    }

    /// Attach an observability probe; mesh deliveries report as
    /// [`Subnet::ENet`].
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// Attach a host profiler for network sub-phase attribution
    /// (sub-laps are inert unless it was created with netprof on).
    pub fn set_profiler(&mut self, prof: HostProfiler) {
        self.prof = prof;
    }

    /// Attach a cycle-domain network observer. Per-router/link counters
    /// accumulate locally and reach the observer in one batch per run
    /// ([`Mesh::flush_obs`]); pre-sizing the local arrays here keeps the
    /// hot-path updates plain indexed increments.
    pub fn set_observer(&mut self, obs: NetObsHandle) {
        self.obs_on = obs.is_enabled();
        self.obs = obs;
        if self.obs_on {
            self.lobs = Self::sized_profile(self.topo.cores());
        }
    }

    /// An empty local counter batch with per-router arrays pre-sized.
    fn sized_profile(n: usize) -> NetProfile {
        let mut p = NetProfile::new();
        p.routers.resize(n, atac_trace::RouterObs::default());
        p.link_flits.resize(n * 4, 0);
        p
    }

    /// Hand the locally-batched counters to the attached observer and
    /// reset the batch. Called once per run by the engine, after the
    /// last tick.
    pub fn flush_obs(&mut self) {
        if self.obs_on {
            let part = std::mem::replace(&mut self.lobs, Self::sized_profile(self.topo.cores()));
            self.obs.profile_part(&part);
        }
    }

    /// The topology this mesh spans.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Flit width in bits.
    pub fn flit_width(&self) -> u32 {
        self.flit_width
    }

    /// The mesh flavor (broadcast handling).
    pub fn kind(&self) -> MeshKind {
        self.kind
    }

    fn alloc_packet(&mut self, p: Packet) -> u32 {
        if let Some(id) = self.free.pop() {
            self.packets[id as usize] = Some(p);
            id
        } else {
            // audit: allow(alloc) amortized: packet slab grows to the in-flight high-water mark, then recycles via `free`
            self.packets.push(Some(p));
            (self.packets.len() - 1) as u32 // audit: allow(cast) slab index bounded by in-flight packet cap
        }
    }

    fn free_packet(&mut self, id: u32) {
        self.packets[id as usize] = None;
        // audit: allow(alloc) amortized: free list capacity tracks the packet slab high-water mark
        self.free.push(id);
    }

    fn activate(&mut self, r: usize) {
        // Branchless and idempotent: setting an already-set bit is a
        // no-op, so deposits need no `is_active` dedup check.
        self.active_bits[r >> 6] |= 1u64 << (r & 63);
    }

    /// Lower `r`'s next-event horizon to `at` (deposits only move it
    /// earlier; `tick_router` recomputes it exactly).
    #[inline]
    fn note_ready(&mut self, r: usize, at: Cycle) {
        if at < self.next_ready[r] {
            self.next_ready[r] = at;
        }
    }

    /// Number of flits a message occupies.
    fn flits_of(&self, msg: &Message) -> u8 {
        msg.class.flits(self.flit_width) as u8 // audit: allow(cast) flit count per packet is single-digit
    }

    /// Packet constructor helper: destination coordinates for routed
    /// packets, (0, 0) for direction-steered multicast branches.
    #[inline]
    fn dest_xy(&self, route: Route) -> (u16, u16) {
        match route {
            Route::ToCore(d) | Route::ToHub(d) => self.coords[d.idx()],
            Route::McastRow(_) | Route::McastCol(_) => (0, 0),
        }
    }

    /// Inject a message. Returns `false` (back-pressure) if the source NIC
    /// queue is full; the caller must retry later.
    ///
    /// Self-sends (unicast to the sending core) bypass the network with a
    /// 1-cycle latency, as a real NIC loopback would.
    pub fn try_send(&mut self, msg: Message, now: Cycle) -> bool {
        match msg.dest {
            Dest::Unicast(dst) if dst == msg.src => {
                self.stats.unicast_messages += 1;
                self.stats.unicast_received += 1;
                self.stats.latency_sum += 1;
                self.stats.latency_count += 1;
                self.probe.net_deliver(&NetDeliver {
                    subnet: Subnet::ENet,
                    kind: TrafficKind::Unicast,
                    src: u32::from(msg.src.0),
                    dst: u32::from(dst.0),
                    inject: now,
                    at: now + 1,
                });
                // audit: allow(alloc) consumer-drained: `drain_deliveries` hands the buffer back every cycle
                self.deliveries.push(Delivery {
                    msg,
                    receiver: dst,
                    at: now + 1,
                });
                true
            }
            Dest::Unicast(dst) => {
                if self.nicq[msg.src.idx()].len() >= NIC_CAP {
                    return false;
                }
                let len = self.flits_of(&msg);
                let route = Route::ToCore(dst);
                let (dest_x, dest_y) = self.dest_xy(route);
                let id = self.alloc_packet(Packet {
                    msg,
                    route,
                    len,
                    dest_x,
                    dest_y,
                    inject: now,
                });
                // audit: allow(alloc) bounded: NIC queue capped at NIC_CAP by the check above
                self.nicq[msg.src.idx()].push_back(id);
                self.note_ready(msg.src.idx(), now);
                self.activate(msg.src.idx());
                self.stats.unicast_messages += 1;
                self.stats.flits_injected += u64::from(len);
                true
            }
            Dest::Broadcast => match self.kind {
                MeshKind::Pure => self.inject_expanded_broadcast(msg, now),
                MeshKind::BcastTree => self.inject_tree_broadcast(msg, now),
            },
        }
    }

    /// Inject a message destined for the *hub* of the sender's cluster
    /// (ENet role inside ATAC). Same back-pressure contract as
    /// [`Mesh::try_send`].
    pub fn try_send_to_hub(&mut self, msg: Message, now: Cycle) -> bool {
        let cluster = self.topo.cluster_of(msg.src);
        let hub_tile = self.topo.hub_core(cluster);
        if self.nicq[msg.src.idx()].len() >= NIC_CAP {
            return false;
        }
        let len = self.flits_of(&msg);
        let route = Route::ToHub(hub_tile);
        let (dest_x, dest_y) = self.dest_xy(route);
        let id = self.alloc_packet(Packet {
            msg,
            route,
            len,
            dest_x,
            dest_y,
            inject: now,
        });
        // audit: allow(alloc) bounded: NIC queue capped at NIC_CAP by the check above
        self.nicq[msg.src.idx()].push_back(id);
        self.note_ready(msg.src.idx(), now);
        self.activate(msg.src.idx());
        self.stats.flits_injected += u64::from(len);
        true
    }

    /// Pop a message that finished ejecting into a cluster's hub buffer,
    /// along with its original injection cycle.
    pub fn pop_hub_out(&mut self, cluster: ClusterId) -> Option<(Message, Cycle)> {
        let m = self.hub_out[cluster.idx()].pop_front();
        if let Some((ref msg, _)) = m {
            let len = u32::from(self.flits_of(msg));
            self.hub_used[cluster.idx()] -= len;
            self.hub_out_msgs -= 1;
        }
        m
    }

    /// Peek whether a hub buffer holds a completed message.
    pub fn hub_out_ready(&self, cluster: ClusterId) -> bool {
        !self.hub_out[cluster.idx()].is_empty()
    }

    /// Whether *any* hub ejection buffer holds a completed message — an
    /// O(1) counter read, so the hub arbiter can skip its per-cluster
    /// hand-off sweep entirely on hubless ticks.
    pub fn has_hub_out(&self) -> bool {
        self.hub_out_msgs > 0
    }

    /// EMesh-Pure: a broadcast becomes `N−1` unicast packets queued at the
    /// source NIC (bypassing the NIC cap — the expansion is a protocol
    /// obligation, and back-pressure still applies to all later sends).
    fn inject_expanded_broadcast(&mut self, msg: Message, now: Cycle) -> bool {
        self.stats.broadcast_messages += 1;
        let len = self.flits_of(&msg);
        // audit: allow(cast) core count ≤ 1024 fits u16
        for c in 0..self.topo.cores() as u16 {
            let dst = CoreId(c);
            if dst == msg.src {
                continue;
            }
            let route = Route::ToCore(dst);
            let (dest_x, dest_y) = self.dest_xy(route);
            let id = self.alloc_packet(Packet {
                msg,
                route,
                len,
                dest_x,
                dest_y,
                inject: now,
            });
            // audit: allow(alloc) bounded: broadcast expansion is a protocol obligation capped at cores−1 packets
            self.nicq[msg.src.idx()].push_back(id);
            self.stats.flits_injected += u64::from(len);
        }
        self.note_ready(msg.src.idx(), now);
        self.activate(msg.src.idx());
        true
    }

    /// EMesh-BCast: seed the XY multicast tree (≤ 4 branch packets placed
    /// in the source router's replication queue, as source-router
    /// replication hardware would).
    fn inject_tree_broadcast(&mut self, msg: Message, now: Cycle) -> bool {
        // Broadcast replication happens in the router, but the message
        // still enters through the single NIC port; apply the same cap.
        if self.nicq[msg.src.idx()].len() >= NIC_CAP {
            return false;
        }
        self.stats.broadcast_messages += 1;
        let len = self.flits_of(&msg);
        let (x, y) = self.coords[msg.src.idx()];
        // At most one branch per compass direction: a fixed array keeps
        // this per-broadcast path allocation-free.
        let branches: [Option<Route>; 4] = [
            (x + 1 < self.topo.width).then_some(Route::McastRow(Dir::East)),
            (x > 0).then_some(Route::McastRow(Dir::West)),
            (y > 0).then_some(Route::McastCol(Dir::North)),
            (y + 1 < self.topo.height).then_some(Route::McastCol(Dir::South)),
        ];
        for route in branches.into_iter().flatten() {
            let id = self.alloc_packet(Packet {
                msg,
                route,
                len,
                dest_x: 0,
                dest_y: 0,
                inject: now,
            });
            // audit: allow(alloc) bounded: replication queue fan-out ≤ 4 branches per broadcast
            self.repq[msg.src.idx()].push_back(Flow {
                pkt: id,
                sent: 0,
                ready: now,
            });
            self.stats.flits_injected += u64::from(len);
        }
        self.note_ready(msg.src.idx(), now);
        self.activate(msg.src.idx());
        true
    }

    /// XY dimension-order step from router `r` toward precomputed
    /// destination tile `(dx, dy)` — X first, then Y, `Local` on arrival.
    /// Pure comparisons over the coordinate table; matches
    /// [`crate::topology::xy_route`] decision-for-decision.
    #[inline]
    fn xy_toward(&self, r: usize, dx: u16, dy: u16) -> Port {
        let (x, y) = self.coords[r];
        if dx > x {
            Port::East
        } else if dx < x {
            Port::West
        } else if dy > y {
            Port::South
        } else if dy < y {
            Port::North
        } else {
            Port::Local
        }
    }

    /// The output port a packet wants at router `r`.
    fn route_port(&self, pkt: &Packet, r: usize) -> Port {
        match pkt.route {
            Route::ToCore(_) => self.xy_toward(r, pkt.dest_x, pkt.dest_y),
            Route::ToHub(_) => {
                if self.coords[r] == (pkt.dest_x, pkt.dest_y) {
                    Port::Hub
                } else {
                    self.xy_toward(r, pkt.dest_x, pkt.dest_y)
                }
            }
            Route::McastRow(d) | Route::McastCol(d) => d.port(),
        }
    }

    /// Whether the network holds any traffic.
    pub fn is_idle(&self) -> bool {
        self.hub_out_msgs == 0 && self.active_bits.iter().all(|&w| w == 0)
    }

    /// Earliest future cycle at which this mesh could move a flit, change
    /// observable state, or surface hub output — or `None` when idle.
    ///
    /// The per-router `next_ready` horizons are exact after each
    /// `tick_router` and only ever lowered by deposits, so the returned
    /// cycle is never *later* than the true next event; an early return
    /// merely costs a no-op tick. A ready-but-blocked flit keeps its
    /// router's horizon at `now`, so the mesh never skips over cycles in
    /// which arbitration or credit state could evolve.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.hub_out_msgs > 0 {
            return Some(now + 1); // the hub consumer may pop any cycle
        }
        let mut t = Cycle::MAX;
        let mut any = false;
        for (wi, &word) in self.active_bits.iter().enumerate() {
            let mut w = word;
            any |= w != 0;
            while w != 0 {
                let r = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                t = t.min(self.next_ready[r]);
            }
        }
        if t == Cycle::MAX {
            // Routers activated by an edge-terminating multicast flit may
            // hold no work; one conservative tick retires them.
            return if any { Some(now + 1) } else { None };
        }
        Some(t.max(now + 1))
    }

    /// Move deliveries accumulated since the last call into `out`.
    pub fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    /// Does router `r` hold any flits, replicas or queued injections?
    #[inline]
    fn has_work(&self, r: usize) -> bool {
        !self.repq[r].is_empty()
            || !self.nicq[r].is_empty()
            || self.buf_len[r * 4..r * 4 + 4].iter().any(|&l| l != 0)
    }

    /// Advance the mesh by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // Swap the live bitmap into the `work_bits` double buffer:
        // draining its set bits word-by-word visits routers in ascending
        // index order (deterministic), while deposits made during
        // processing — including into routers earlier in this very pass
        // — land in the fresh `active_bits` for the next tick.
        std::mem::swap(&mut self.active_bits, &mut self.work_bits);
        self.prof.net_lap(NetSubPhase::SkipScan);
        for wi in 0..self.work_bits.len() {
            let mut w = self.work_bits[wi];
            self.work_bits[wi] = 0;
            while w != 0 {
                let r = (wi << 6) + w.trailing_zeros() as usize;
                w &= w - 1;
                // Horizon gate: a router whose every source is strictly
                // in the future would tick as a pure no-op (`next_ready`
                // is never late), so skip the whole service pass; the
                // reactivation check below keeps it on the active set.
                if self.next_ready[r] <= now {
                    self.tick_router(r, now);
                }
                // `next_ready[r] != MAX` ⇔ `has_work(r)` at this point:
                // a ticked router just recomputed its horizon exactly, a
                // gated router kept its work (only a router's own tick
                // consumes it), and every deposit path min-merges a
                // finite horizon via `note_ready`. Checking right after
                // the router's own slot is equivalent to a separate
                // post-pass sweep: later routers can only *lower* this
                // horizon, and any deposit they make calls `activate`
                // itself.
                debug_assert_eq!(self.next_ready[r] != Cycle::MAX, self.has_work(r));
                if self.next_ready[r] != Cycle::MAX {
                    self.activate(r);
                }
            }
        }
        self.prof.net_lap(NetSubPhase::SkipScan);
    }

    /// Front flit of input queue `q = r*4 + port`, if any.
    #[inline]
    fn buf_front(&self, q: usize) -> Option<&Flit> {
        if self.buf_len[q] == 0 {
            None
        } else {
            Some(&self.buf_slab[q * self.buf_stride + self.buf_head[q] as usize])
        }
    }

    /// Enqueue a flit on input queue `q`; the caller holds the credit
    /// (checked `buf_len < buffer_depth`).
    #[inline]
    fn buf_push(&mut self, q: usize, f: Flit) {
        let len = self.buf_len[q] as usize;
        debug_assert!(len < self.buffer_depth, "credit check precedes enqueue");
        let slot = (self.buf_head[q] as usize + len) & self.buf_mask;
        self.buf_slab[q * self.buf_stride + slot] = f;
        self.buf_len[q] = (len + 1) as u8; // audit: allow(cast) buffer depth ≤ 255
    }

    /// Dequeue the front flit of input queue `q`.
    #[inline]
    fn buf_pop(&mut self, q: usize) {
        debug_assert!(self.buf_len[q] > 0);
        // audit: allow(cast) buffer depth ≤ 255
        self.buf_head[q] = ((self.buf_head[q] as usize + 1) & self.buf_mask) as u8;
        self.buf_len[q] -= 1;
    }

    /// Peek the next flit a source would emit: (pkt, idx, len, head, out
    /// port). Buffered flits carry their own length and port; NIC and
    /// replication flows route through the coordinate tables.
    fn peek(&self, r: usize, src: Src, now: Cycle) -> Option<(u32, u8, u8, bool, Port)> {
        match src {
            Src::In(i) => {
                let q = r * 4 + i;
                // A queue inside a bulk-run window has already moved the
                // flits the per-cycle switch would move before
                // `busy_until`; it stays in the census but emits nothing.
                if self.busy_until[q] > now {
                    return None;
                }
                let f = self.buf_front(q)?;
                if f.arrival > now {
                    return None;
                }
                Some((f.pkt, f.idx, f.len, f.idx == 0, f.port))
            }
            Src::Nic => {
                let &pkt = self.nicq[r].front()?;
                let p = self.packets[pkt as usize].as_ref()?;
                let idx = self.nic_sent[r];
                Some((pkt, idx, p.len, idx == 0, self.route_port(p, r)))
            }
            Src::Rep(i) => {
                let flow = self.repq[r].get(i)?;
                if flow.ready > now {
                    return None;
                }
                let p = self.packets[flow.pkt as usize].as_ref()?;
                Some((
                    flow.pkt,
                    flow.sent,
                    p.len,
                    flow.sent == 0,
                    self.route_port(p, r),
                ))
            }
        }
    }

    fn tick_router(&mut self, r: usize, now: Cycle) {
        // Candidate census straight from the occupancy words (maintained
        // on enqueue/dequeue — no scratch list is ever rebuilt). The
        // snapshot keeps round-robin positions stable while queues drain
        // mid-loop; no source can *appear* at this router during its own
        // service loop (deposits only target neighbours). The occupancy
        // sum for the observer falls out of the same four loads.
        let mut mask: u8 = 0;
        let mut occ = 0usize;
        for p in 0..4 {
            let l = self.buf_len[r * 4 + p];
            occ += l as usize;
            if l != 0 {
                mask |= 1 << p;
            }
        }
        if self.obs_on {
            let ro = &mut self.lobs.routers[r];
            ro.active_cycles += 1;
            ro.occupancy_sum += occ as u64;
            ro.occupancy_hist[occ_bucket(occ)] += 1;
        }
        let has_nic = !self.nicq[r].is_empty();
        let nrep = self.repq[r].len();
        let total = mask.count_ones() as usize + usize::from(has_nic) + nrep;
        self.prof.net_lap(NetSubPhase::SwitchArb);
        if total == 0 {
            self.next_ready[r] = Cycle::MAX;
            self.prof.net_lap(NetSubPhase::QueueOps);
            return;
        }
        // Lone-buffered-candidate fast path — the steady-state of one
        // wormhole stream crossing an otherwise quiet router, and by far
        // the most common census. Rotation over one candidate is the
        // identity and the post-service horizon can only come from that
        // same queue (the other queues, the NIC and the replication list
        // were empty at census, and a router's own service deposits only
        // into neighbours), so the bitset walk and the four-queue
        // horizon scan collapse to a single service call and one
        // buffer-front probe. Bit-identical to the general path below.
        if total == 1 && mask != 0 {
            let i = mask.trailing_zeros() as usize;
            let mut out_used = [false; 6];
            let mut rep_done = std::mem::take(&mut self.rep_done_scratch);
            let granted = self.service(r, Src::In(i), now, &mut out_used, &mut rep_done);
            self.rep_done_scratch = rep_done;
            if granted && self.obs_on {
                self.lobs.bitset_grants += 1;
            }
            let q = r * 4 + i;
            self.next_ready[r] = match self.buf_front(q) {
                Some(f) => f.arrival.max(self.busy_until[q]),
                None => Cycle::MAX,
            };
            self.prof.net_lap(NetSubPhase::QueueOps);
            return;
        }
        // A lone candidate needs no rotation — and it is the common case
        // by far, so it skips the integer division entirely.
        let rot = if total == 1 {
            0
        } else {
            (now as usize + r) % total
        };
        let mut out_used = [false; 6];
        // Track repq entries that completed, to remove after the loop.
        let mut rep_done = std::mem::take(&mut self.rep_done_scratch);
        // Round-robin service order: canonical candidates In(0..4), Nic,
        // Rep(0..n) rotated left by `rot`. The candidates are packed
        // into one request bitset word — bits 0..4 the input queues
        // (straight from the occupancy mask), bit 4 the NIC, bits 5+i
        // the replication flows — and arbitration walks set bits with
        // `trailing_zeros`: first the bits at canonical positions
        // `rot..total` (the word with its `rot` lowest set bits
        // cleared), then the remaining `rot` low bits. Identical order
        // to the old two-pass positional scan, pinned by the
        // determinism tests. Routers whose replication queue overflows
        // the word (nrep > 59, transient broadcast storms) fall back to
        // the positional scan.
        let mut grants = 0u64;
        if nrep <= u64::BITS as usize - 5 {
            let word: u64 =
                u64::from(mask) | (u64::from(has_nic) << 4) | (((1u64 << nrep) - 1) << 5);
            debug_assert_eq!(word.count_ones() as usize, total);
            let mut rest = word;
            for _ in 0..rot {
                rest &= rest - 1; // clear the lowest set bit, rot times
            }
            let head = word ^ rest;
            for bits in [rest, head] {
                let mut w = bits;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let src = if b < 4 {
                        Src::In(b)
                    } else if b == 4 {
                        Src::Nic
                    } else {
                        Src::Rep(b - 5)
                    };
                    if self.service(r, src, now, &mut out_used, &mut rep_done) {
                        grants += 1;
                    }
                }
            }
            if self.obs_on {
                self.lobs.bitset_grants += grants;
            }
        } else {
            // Positional fallback: pass 0 serves canonical positions
            // `rot..total`, pass 1 serves `0..rot`.
            for pass in 0..2u8 {
                let serve_from = pass == 0;
                let mut pos = 0usize;
                for p in 0..4 {
                    if mask & (1 << p) != 0 {
                        if (pos >= rot) == serve_from
                            && self.service(r, Src::In(p), now, &mut out_used, &mut rep_done)
                        {
                            grants += 1;
                        }
                        pos += 1;
                    }
                }
                if has_nic {
                    if (pos >= rot) == serve_from
                        && self.service(r, Src::Nic, now, &mut out_used, &mut rep_done)
                    {
                        grants += 1;
                    }
                    pos += 1;
                }
                for i in 0..nrep {
                    if (pos >= rot) == serve_from
                        && self.service(r, Src::Rep(i), now, &mut out_used, &mut rep_done)
                    {
                        grants += 1;
                    }
                    pos += 1;
                }
            }
            if self.obs_on {
                self.lobs.scalar_grants += grants;
            }
        }

        rep_done.sort_unstable_by(|a, b| b.cmp(a));
        for &i in &rep_done {
            self.repq[r].remove(i);
        }
        rep_done.clear();
        self.rep_done_scratch = rep_done;

        // Exact next-event horizon for this router: earliest buffer-front
        // arrival, NIC readiness (a queued NIC packet is always ready),
        // earliest replication readiness.
        let mut horizon = Cycle::MAX;
        for p in 0..4 {
            let q = r * 4 + p;
            if let Some(f) = self.buf_front(q) {
                // A queue sealed by a bulk run cannot emit before its
                // window closes, whatever its front flit's arrival.
                horizon = horizon.min(f.arrival.max(self.busy_until[q]));
            }
        }
        if !self.nicq[r].is_empty() {
            horizon = horizon.min(now);
        }
        for flow in &self.repq[r] {
            horizon = horizon.min(flow.ready);
        }
        self.next_ready[r] = horizon;
        self.prof.net_lap(NetSubPhase::QueueOps);
    }

    /// Try to move one flit from `src` through router `r`'s switch — one
    /// iteration of the round-robin service loop. Returns whether a
    /// grant moved anything (one bulk run counts once).
    fn service(
        &mut self,
        r: usize,
        src: Src,
        now: Cycle,
        out_used: &mut OutUsed,
        rep_done: &mut Vec<usize>,
    ) -> bool {
        let Some((pkt_id, idx, len, is_head, out)) = self.peek(r, src, now) else {
            return false;
        };
        let is_tail = idx + 1 == len;
        let oi = out.idx();
        self.prof.net_lap(NetSubPhase::RouteCompute);
        if out_used[oi] {
            return false;
        }
        // Switch allocation (wormhole: the head claims the output,
        // the tail releases it).
        let owner = self.out_owner[r * 6 + oi];
        if owner == pkt_id {
            // This packet already holds the port; keep streaming.
        } else if owner != NO_OWNER {
            return false; // output held by another packet
        } else {
            if !is_head {
                // A body flit whose allocation was lost can only
                // happen through a bug; wormhole keeps ownership.
                debug_assert!(false, "body flit without allocation");
                return false;
            }
            self.out_owner[r * 6 + oi] = pkt_id;
            self.stats.arbitrations += 1;
        }
        self.prof.net_lap(NetSubPhase::SwitchArb);

        // Packet-granular fast path: a buffered body flit streaming an
        // owned direction port may pull its whole arrival-eligible run
        // through the switch in this one grant (exactly the flits the
        // per-cycle loop would move over the window it seals).
        if !is_head && !is_tail {
            if let (Src::In(i), Port::North | Port::South | Port::East | Port::West) = (src, out) {
                if self.try_forward_run(r, i, out, pkt_id, len, now).is_some() {
                    out_used[oi] = true;
                    self.prof.net_lap(NetSubPhase::QueueOps);
                    return true;
                }
            }
        }

        // Can the flit actually move?
        let moved = match out {
            Port::Local => {
                self.deliver_flit(pkt_id, is_tail, now);
                true
            }
            Port::Hub => self.eject_to_hub(pkt_id, r, is_tail),
            Port::North | Port::South | Port::East | Port::West => {
                self.forward_flit(r, out, pkt_id, idx, len, is_tail, now)
            }
        };
        if !moved {
            return false;
        }
        out_used[oi] = true;
        self.stats.xbar_traversals += 1;
        if self.obs_on {
            self.lobs.routers[r].flits_routed += 1;
            if oi < 4 {
                self.lobs.link_flits[r * 4 + oi] += 1;
            }
            self.lobs.run_len_hist[0] += 1; // single-flit grant
        }

        // Consume from the source.
        match src {
            Src::In(i) => {
                self.buf_pop(r * 4 + i);
                self.stats.buffer_reads += 1;
            }
            Src::Nic => {
                if is_tail {
                    self.nicq[r].pop_front();
                    self.nic_sent[r] = 0;
                } else {
                    self.nic_sent[r] += 1;
                }
            }
            Src::Rep(i) => {
                if is_tail {
                    // audit: allow(alloc) amortized: reused scratch buffer at steady-state capacity
                    rep_done.push(i);
                } else {
                    self.repq[r][i].sent += 1;
                }
            }
        }
        if is_tail {
            self.out_owner[r * 6 + oi] = NO_OWNER;
        }
        self.prof.net_lap(NetSubPhase::QueueOps);
        true
    }

    /// Bulk body-run transfer: move the arrival-eligible prefix of the
    /// wormhole run at the front of input queue `i` through router `r`'s
    /// switch in one grant — a slab-to-slab copy instead of `m` per-flit
    /// ring pushes across `m` router ticks. Returns the run length, or
    /// `None` when the run is not bulk-eligible (the caller falls back
    /// to the per-flit path).
    ///
    /// Exact per-cycle equivalence, flit by flit: the `j`-th moved flit
    /// would cross the switch at cycle `now + j` (ownership blocks every
    /// competitor for this output; arrival eligibility is checked per
    /// flit; `m` never exceeds the downstream credit in hand, which only
    /// grows), so it is pushed with the arrival stamp `now + j + 2` the
    /// per-cycle loop would give it. The source queue is sealed via
    /// `busy_until` for exactly the window the flits would have occupied
    /// and keeps ≥ 1 flit (`m ≤ len − 1`), so the candidate census —
    /// and with it the round-robin rotation — is unchanged on every
    /// intermediate cycle. Head flits (port claim), tail flits (port
    /// release, multicast spawns) and ejection ports always take the
    /// per-cycle path, so allocation timing is untouched.
    fn try_forward_run(
        &mut self,
        r: usize,
        i: usize,
        out: Port,
        pkt_id: u32,
        len: u8,
        now: Cycle,
    ) -> Option<usize> {
        let oi = out.idx();
        let nri = self.neighbor[r * 4 + oi];
        debug_assert!(nri != NO_NEIGHBOR, "XY routing never walks off the edge");
        let nri = nri as usize;
        let q_src = r * 4 + i;
        let q_dst = nri * 4 + (oi ^ 1);
        // The head of this run already crossed into `q_dst` and cached
        // its continuation + XY decision there (ownership of this output
        // means nothing else touched the entry since), so body flits
        // recompute neither and never load the packet slab.
        let (continues, port) = if self.run_port_pkt[q_dst] == pkt_id {
            (self.run_cont[q_dst], self.run_port[q_dst])
        } else {
            let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
            let cont = self.continues_at(&pkt, nri);
            let p = if cont {
                self.route_port(&pkt, nri)
            } else {
                Port::Local // never read: non-continuing flits are not buffered
            };
            (cont, p)
        };
        if !continues {
            return None; // edge-terminating multicast: per-flit link walk
        }
        let k = usize::from(self.buf_len[q_src]);
        let free = self.buffer_depth - usize::from(self.buf_len[q_dst]);
        // ≥1 flit stays behind (census parity); never outrun the credit
        // in hand; head/tail and not-yet-arrived flits stop the walk.
        let limit = (k - 1).min(free);
        if limit < 2 {
            return None;
        }
        let base = q_src * self.buf_stride;
        let head = usize::from(self.buf_head[q_src]);
        let mut m = 0usize;
        while m < limit {
            let f = &self.buf_slab[base + ((head + m) & self.buf_mask)];
            if f.pkt != pkt_id || f.idx + 1 == f.len || f.arrival > now + m as Cycle {
                break;
            }
            m += 1;
        }
        if m < 2 {
            return None; // a single flit is exactly the per-flit path
        }
        self.prof.net_lap(NetSubPhase::Credit);
        let dst_base = q_dst * self.buf_stride;
        let dst_head = usize::from(self.buf_head[q_dst]);
        let dst_len = usize::from(self.buf_len[q_dst]);
        for j in 0..m {
            let f = self.buf_slab[base + ((head + j) & self.buf_mask)];
            let slot = (dst_head + dst_len + j) & self.buf_mask;
            self.buf_slab[dst_base + slot] = Flit {
                pkt: pkt_id,
                idx: f.idx,
                len,
                port,
                arrival: now + j as Cycle + 2,
            };
        }
        self.buf_head[q_src] = ((head + m) & self.buf_mask) as u8; // audit: allow(cast) buffer depth ≤ 255
        self.buf_len[q_src] -= m as u8; // audit: allow(cast) m ≤ buffer depth ≤ 255
        self.buf_len[q_dst] = (dst_len + m) as u8; // audit: allow(cast) bounded by buffer depth ≤ 255
        self.busy_until[q_src] = now + m as Cycle;
        self.stats.buffer_reads += m as u64;
        self.stats.buffer_writes += m as u64;
        self.stats.link_traversals += m as u64;
        self.stats.xbar_traversals += m as u64;
        self.note_ready(nri, now + 2);
        self.activate(nri);
        if self.obs_on {
            self.lobs.routers[r].flits_routed += m as u64;
            self.lobs.link_flits[r * 4 + oi] += m as u64;
            self.lobs.run_len_hist[atac_trace::run_bucket(m)] += 1;
        }
        Some(m)
    }

    /// Forward a flit out a direction port into the neighbouring router's
    /// opposite input buffer (1-cycle router + 1-cycle link → visible at
    /// `now + 2`). Returns `false` when the downstream buffer is full.
    #[allow(clippy::too_many_arguments)]
    fn forward_flit(
        &mut self,
        r: usize,
        out: Port,
        pkt_id: u32,
        idx: u8,
        len: u8,
        is_tail: bool,
        now: Cycle,
    ) -> bool {
        let oi = out.idx();
        let nri = self.neighbor[r * 4 + oi];
        debug_assert!(nri != NO_NEIGHBOR, "XY routing never walks off the edge");
        let nri = nri as usize;
        // Opposite ports pair by index (N↔S = 0↔1, E↔W = 2↔3).
        let q = nri * 4 + (oi ^ 1);
        // The head flit resolves continuation and the XY decision once
        // per hop and caches both on the downstream queue; body and tail
        // flits of the same wormhole run reuse them and skip the
        // packet-slab load entirely (upstream ownership means no other
        // packet's flits interleave into this queue until the tail
        // passes, and a fresh head always refreshes the cache before its
        // body arrives, so a non-head hit is always this packet's entry).
        let (continues, port) = if idx == 0 {
            let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
            let cont = self.continues_at(&pkt, nri);
            let p = if cont {
                self.route_port(&pkt, nri)
            } else {
                Port::Local // never read: non-continuing flits are not buffered
            };
            self.run_port_pkt[q] = pkt_id;
            self.run_port[q] = p;
            self.run_cont[q] = cont;
            (cont, p)
        } else if self.run_port_pkt[q] == pkt_id {
            (self.run_cont[q], self.run_port[q])
        } else {
            let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
            let cont = self.continues_at(&pkt, nri);
            let p = if cont {
                self.route_port(&pkt, nri)
            } else {
                Port::Local
            };
            (cont, p)
        };
        if continues && usize::from(self.buf_len[q]) >= self.buffer_depth {
            if self.obs_on {
                self.lobs.routers[r].credit_stall_cycles += 1;
            }
            self.prof.net_lap(NetSubPhase::Credit);
            return false;
        }
        self.prof.net_lap(NetSubPhase::Credit);
        self.stats.link_traversals += 1;
        if continues {
            self.buf_push(
                q,
                Flit {
                    pkt: pkt_id,
                    idx,
                    len,
                    port,
                    arrival: now + 2,
                },
            );
            self.stats.buffer_writes += 1;
            self.note_ready(nri, now + 2);
        }
        if is_tail {
            self.on_tail_arrival(pkt_id, nri, continues, now + 2);
        }
        self.activate(nri);
        true
    }

    /// Does this packet continue past router `at` (i.e. should its flits
    /// be buffered there)? Multicast branches die at the mesh edge; their
    /// flits still traverse the final link but are not re-buffered.
    fn continues_at(&self, pkt: &Packet, at: usize) -> bool {
        let (x, y) = self.coords[at];
        match pkt.route {
            Route::ToCore(_) | Route::ToHub(_) => true, // terminate via ejection ports
            Route::McastRow(Dir::East) => x + 1 < self.topo.width,
            Route::McastRow(Dir::West) => x > 0,
            Route::McastCol(Dir::North) => y > 0,
            Route::McastCol(Dir::South) => y + 1 < self.topo.height,
            Route::McastRow(_) | Route::McastCol(_) => unreachable!("invalid multicast direction"),
        }
    }

    /// Handle a multicast tail arriving at router `at` (the arrival takes
    /// effect at `ready`): spawn the local copy (and, for row branches,
    /// the column branches); free the packet if the branch ends here.
    fn on_tail_arrival(&mut self, pkt_id: u32, at: usize, continues: bool, ready: Cycle) {
        let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
        let (_, y) = self.coords[at];
        match pkt.route {
            Route::ToCore(_) | Route::ToHub(_) => {}
            Route::McastRow(_) => {
                let here = CoreId(at as u16); // audit: allow(cast) router index < cores fits u16
                self.spawn(pkt_id, at, Route::ToCore(here), ready);
                if y > 0 {
                    self.spawn(pkt_id, at, Route::McastCol(Dir::North), ready);
                }
                if y + 1 < self.topo.height {
                    self.spawn(pkt_id, at, Route::McastCol(Dir::South), ready);
                }
                if !continues {
                    self.free_packet(pkt_id);
                }
            }
            Route::McastCol(_) => {
                let here = CoreId(at as u16); // audit: allow(cast) router index < cores fits u16
                self.spawn(pkt_id, at, Route::ToCore(here), ready);
                if !continues {
                    self.free_packet(pkt_id);
                }
            }
        }
    }

    fn spawn(&mut self, parent: u32, at: usize, route: Route, ready: Cycle) {
        let p = self.packets[parent as usize].expect("live packet"); // audit: allow(expect) parent held live until children spawn
        let (dest_x, dest_y) = self.dest_xy(route);
        let id = self.alloc_packet(Packet {
            route,
            dest_x,
            dest_y,
            ..p
        });
        // audit: allow(alloc) bounded: replication queue fan-out ≤ 3 spawns per passing tail
        self.repq[at].push_back(Flow {
            pkt: id,
            sent: 0,
            ready,
        });
        self.note_ready(at, ready);
        self.activate(at);
    }

    /// Deliver one flit at the local port; on the tail, record the
    /// delivery and free the packet.
    fn deliver_flit(&mut self, pkt_id: u32, is_tail: bool, now: Cycle) {
        if !is_tail {
            return;
        }
        let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
        let receiver = match pkt.route {
            Route::ToCore(d) => d,
            Route::ToHub(_) | Route::McastRow(_) | Route::McastCol(_) => {
                unreachable!("only ToCore ejects locally")
            }
        };
        let kind = match pkt.msg.dest {
            Dest::Unicast(_) => {
                self.stats.unicast_received += 1;
                TrafficKind::Unicast
            }
            Dest::Broadcast => {
                self.stats.broadcast_received += 1;
                TrafficKind::Broadcast
            }
        };
        self.stats.latency_sum += now + 1 - pkt.inject;
        self.stats.latency_count += 1;
        self.probe.net_deliver(&NetDeliver {
            subnet: Subnet::ENet,
            kind,
            src: u32::from(pkt.msg.src.0),
            dst: u32::from(receiver.0),
            inject: pkt.inject,
            at: now + 1,
        });
        // audit: allow(alloc) consumer-drained: `drain_deliveries` hands the buffer back every cycle
        self.deliveries.push(Delivery {
            msg: pkt.msg,
            receiver,
            at: now + 1,
        });
        self.free_packet(pkt_id);
    }

    /// Eject a flit into the hub buffer of the cluster at router `r`.
    /// Returns `false` when the hub buffer is full (back-pressure).
    fn eject_to_hub(&mut self, pkt_id: u32, r: usize, is_tail: bool) -> bool {
        let cl = usize::from(self.cluster[r]);
        if self.hub_used[cl] >= HUB_BUF_FLITS {
            return false;
        }
        self.hub_used[cl] += 1;
        self.stats.hub_buffer_writes += 1;
        if is_tail {
            let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
                                                                           // audit: allow(alloc) consumer-drained: popped by the hub arbiter every cycle via `pop_hub_out`
            self.hub_out[cl].push_back((pkt.msg, pkt.inject));
            self.hub_out_msgs += 1;
            self.free_packet(pkt_id);
        }
        true
    }
}
#[cfg(test)]
#[path = "mesh_golden.rs"]
mod golden;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MessageClass;

    fn msg(src: u16, dest: Dest) -> Message {
        Message {
            src: CoreId(src),
            dest,
            class: MessageClass::Control,
            token: 0,
        }
    }

    fn run_until_idle(mesh: &mut Mesh, start: Cycle, max: u64) -> (Vec<Delivery>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while !mesh.is_idle() {
            mesh.tick(now);
            mesh.drain_deliveries(&mut out);
            now += 1;
            assert!(now - start < max, "mesh did not drain in {max} cycles");
        }
        (out, now)
    }

    #[test]
    fn unicast_reaches_destination() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let m = msg(0, Dest::Unicast(CoreId(63)));
        assert!(mesh.try_send(m, 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 1000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].receiver, CoreId(63));
        assert_eq!(out[0].msg, m);
    }

    #[test]
    fn unicast_latency_matches_hop_count() {
        // 2 cycles per hop + serialization (2 flits) + ejection.
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let dst = topo.core_at(7, 7); // 14 hops from (0,0)
        assert!(mesh.try_send(msg(0, Dest::Unicast(dst)), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 1000);
        let lat = out[0].at;
        // zero-load: ~2 cycles/hop + flits + eject = 14*2 + 2 + small
        assert!(lat >= 28, "latency {lat}");
        assert!(lat <= 36, "latency {lat}");
    }

    #[test]
    fn self_send_bypasses_network() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        assert!(mesh.try_send(msg(5, Dest::Unicast(CoreId(5))), 10));
        let mut out = Vec::new();
        mesh.drain_deliveries(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, 11);
        assert!(mesh.is_idle());
    }

    #[test]
    fn tree_broadcast_reaches_everyone_once() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        assert!(mesh.try_send(msg(27, Dest::Broadcast), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 5000);
        assert_eq!(out.len(), 63, "every core but the source, exactly once");
        let mut seen = [false; 64];
        for d in &out {
            assert!(!seen[d.receiver.idx()], "duplicate to {:?}", d.receiver);
            seen[d.receiver.idx()] = true;
        }
        assert!(!seen[27]);
    }

    #[test]
    fn tree_broadcast_from_corner() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        assert!(mesh.try_send(msg(0, Dest::Broadcast), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 5000);
        assert_eq!(out.len(), 63);
    }

    #[test]
    fn pure_broadcast_is_serialized_unicasts() {
        let topo = Topology::small(4, 2);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        assert!(mesh.try_send(msg(0, Dest::Broadcast), 0));
        let (out, end) = run_until_idle(&mut mesh, 0, 10_000);
        assert_eq!(out.len(), 15);
        // Serialization: 15 packets × 2 flits from one NIC ≥ 30 cycles.
        assert!(end >= 30, "end {end}");
        assert_eq!(mesh.stats.broadcast_received, 15);
    }

    #[test]
    fn pure_broadcast_much_slower_than_tree() {
        let topo = Topology::small(8, 4);
        let mut pure = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let mut tree = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        pure.try_send(msg(0, Dest::Broadcast), 0);
        tree.try_send(msg(0, Dest::Broadcast), 0);
        let (_, t_pure) = run_until_idle(&mut pure, 0, 10_000);
        let (_, t_tree) = run_until_idle(&mut tree, 0, 10_000);
        assert!(
            t_pure > 2 * t_tree,
            "pure {t_pure} should be ≫ tree {t_tree}"
        );
    }

    #[test]
    fn hub_ejection_and_pop() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let m = msg(10, Dest::Unicast(CoreId(50))); // dest used by upper layer
        assert!(mesh.try_send_to_hub(m, 0));
        let mut now = 0;
        let cl = topo.cluster_of(CoreId(10));
        let mut got = None;
        while got.is_none() && now < 200 {
            mesh.tick(now);
            got = mesh.pop_hub_out(cl);
            now += 1;
        }
        assert_eq!(got, Some((m, 0)));
        assert!(mesh.stats.hub_buffer_writes >= 2);
    }

    #[test]
    fn nic_back_pressure_eventually_refuses() {
        let topo = Topology::small(4, 2);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let mut accepted = 0;
        for _ in 0..100 {
            if mesh.try_send(msg(0, Dest::Unicast(CoreId(15))), 0) {
                accepted += 1;
            }
        }
        assert!(accepted >= NIC_CAP as u32);
        assert!(accepted < 100, "NIC must exert back-pressure");
        // Draining restores capacity.
        let _ = run_until_idle(&mut mesh, 0, 20_000);
        assert!(mesh.try_send(msg(0, Dest::Unicast(CoreId(15))), 1000));
    }

    #[test]
    fn stats_count_flits_and_hops() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let dst = topo.core_at(3, 0); // 3 hops straight east
        assert!(mesh.try_send(msg(0, Dest::Unicast(dst)), 0));
        let _ = run_until_idle(&mut mesh, 0, 1000);
        // control = 2 flits; 3 link hops each.
        assert_eq!(mesh.stats.flits_injected, 2);
        assert_eq!(mesh.stats.link_traversals, 6);
        assert_eq!(mesh.stats.unicast_received, 1);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let topo = Topology::small(8, 4);
        let run = || {
            let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
            for i in 0..32u16 {
                mesh.try_send(msg(i, Dest::Unicast(CoreId(63 - i))), 0);
            }
            mesh.try_send(msg(5, Dest::Broadcast), 0);
            let (mut out, end) = run_until_idle(&mut mesh, 0, 50_000);
            out.sort_by_key(|d| (d.at, d.receiver.0, d.msg.src.0));
            (out, end, mesh.stats.clone())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn heavy_random_traffic_drains() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sent = 0u64;
        let mut out = Vec::new();
        for now in 0..2000u64 {
            for c in 0..64u16 {
                if rng.gen_bool(0.05) {
                    let dest = if rng.gen_bool(0.01) {
                        Dest::Broadcast
                    } else {
                        Dest::Unicast(CoreId(rng.gen_range(0..64)))
                    };
                    if mesh.try_send(msg(c, dest), now) {
                        sent += 1;
                    }
                }
            }
            mesh.tick(now);
            mesh.drain_deliveries(&mut out);
        }
        let (rest, _) = run_until_idle(&mut mesh, 2000, 3_000_000);
        out.extend(rest);
        assert!(sent > 1000);
        // Every unicast delivered exactly once; broadcasts 63× each.
        let bc = mesh.stats.broadcast_messages;
        let uc = mesh.stats.unicast_messages;
        assert_eq!(
            out.len() as u64,
            uc + bc * 63,
            "uc={uc} bc={bc} out={}",
            out.len()
        );
    }

    #[test]
    fn multi_flit_contention_holds_wormhole_ownership() {
        // Two 10-flit Data packets (616 bits / 64-bit flits) from cores 0
        // and 1 both route east to core 4, sharing the r1→E…r3→E links and
        // the r4 ejection port. Wormhole switching means each packet claims
        // each output port exactly once — never per flit — so arbitrations
        // count the routers visited: 5 for core 0's packet (r0..r4) plus 4
        // for core 1's (r1..r4).
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let data = |src: u16| Message {
            src: CoreId(src),
            dest: Dest::Unicast(CoreId(4)),
            class: MessageClass::Data,
            token: 0,
        };
        assert!(mesh.try_send(data(0), 0));
        assert!(mesh.try_send(data(1), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 2000);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.receiver == CoreId(4)));
        assert_eq!(mesh.stats.arbitrations, 9, "one claim per (packet, router)");
        // The shared ejection port serializes the packets: tails are at
        // least one packet length (10 flits) apart.
        let gap = out[1].at.abs_diff(out[0].at);
        assert!(gap >= 10, "tail gap {gap} < packet length");
    }

    #[test]
    fn replication_forks_survive_full_buffers() {
        // A tree broadcast forks in router replication queues while heavy
        // unicast cross-traffic keeps the input buffers at depth. Every
        // fork must still deliver exactly once to every core.
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        let mut out = Vec::new();
        for now in 0..40u64 {
            for c in 0..64u16 {
                mesh.try_send(msg(c, Dest::Unicast(CoreId(63 - c))), now);
            }
            if now == 10 {
                assert!(mesh.try_send(msg(27, Dest::Broadcast), now));
            }
            mesh.tick(now);
            mesh.drain_deliveries(&mut out);
        }
        let (rest, _) = run_until_idle(&mut mesh, 40, 500_000);
        out.extend(rest);
        let mut seen = [0u32; 64];
        for d in out.iter().filter(|d| matches!(d.msg.dest, Dest::Broadcast)) {
            seen[d.receiver.idx()] += 1;
        }
        for (c, &n) in seen.iter().enumerate() {
            let want = u32::from(c != 27);
            assert_eq!(n, want, "core {c} got {n} broadcast copies");
        }
        let uc = mesh.stats.unicast_messages;
        assert_eq!(out.len() as u64, uc + 63);
    }

    #[test]
    fn nic_accepts_exactly_cap_then_refuses_until_a_packet_drains() {
        // Without any ticks the NIC queue admits exactly NIC_CAP packets.
        // Two ticks stream the 2-flit head packet out, freeing one slot.
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let m = msg(0, Dest::Unicast(CoreId(7)));
        let mut accepted = 0usize;
        for _ in 0..NIC_CAP + 8 {
            if mesh.try_send(m, 0) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, NIC_CAP);
        assert!(!mesh.try_send(m, 0));
        mesh.tick(0);
        mesh.tick(1);
        assert!(mesh.try_send(m, 2), "tail left at cycle 1 → one slot free");
        assert!(!mesh.try_send(m, 2), "and only one");
    }

    #[test]
    fn hub_ejection_saturates_at_hub_buf_flits() {
        // Cluster-bound traffic with nobody popping hub_out: the hub
        // buffer fills to exactly HUB_BUF_FLITS flits and ejection credit-
        // stalls. Popping restores flow and every accepted message
        // eventually surfaces.
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let cl = topo.cluster_of(CoreId(0));
        let members: Vec<u16> = (0..64u16)
            .filter(|&c| topo.cluster_of(CoreId(c)) == cl)
            .collect();
        let mut sent = 0u64;
        let mut now = 0u64;
        for _ in 0..100 {
            for &c in &members {
                if mesh.try_send_to_hub(msg(c, Dest::Unicast(CoreId(63))), now) {
                    sent += 1;
                }
            }
            mesh.tick(now);
            now += 1;
        }
        assert_eq!(
            mesh.stats.hub_buffer_writes,
            u64::from(HUB_BUF_FLITS),
            "hub buffer admits exactly HUB_BUF_FLITS flits, then stalls"
        );
        assert!(!mesh.is_idle(), "blocked flits keep the mesh busy");
        // Drain: pop every cycle while ticking until the mesh empties.
        let mut popped = 0u64;
        while !mesh.is_idle() || mesh.hub_out_ready(cl) {
            mesh.tick(now);
            while mesh.pop_hub_out(cl).is_some() {
                popped += 1;
            }
            now += 1;
            assert!(now < 20_000, "hub drain stuck");
        }
        assert_eq!(popped, sent);
    }

    #[test]
    fn wide_flits_reduce_flit_count() {
        let topo = Topology::small(4, 2);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 256, 4);
        let m = Message {
            src: CoreId(0),
            dest: Dest::Unicast(CoreId(15)),
            class: MessageClass::Data,
            token: 0,
        };
        assert!(mesh.try_send(m, 0));
        let _ = run_until_idle(&mut mesh, 0, 1000);
        assert_eq!(mesh.stats.flits_injected, 3); // 616/256 → 3 flits
    }
}
