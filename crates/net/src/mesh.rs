//! Cycle-level wormhole electrical mesh.
//!
//! One implementation serves three roles, selected by [`MeshKind`] and by
//! whether hub ports are used:
//!
//! * **EMesh-Pure** — the paper's plain electrical mesh baseline. It has
//!   no multicast hardware: a broadcast is expanded at the source NIC into
//!   `N−1` serialized unicasts (paper §V-B: "EMesh-Pure performs
//!   broadcasts by sending multiple unicast messages in succession").
//! * **EMesh-BCast** — mesh with *router multicast*: a broadcast travels
//!   as XY dimension-order tree: row packets east/west from the source
//!   spawn column packets (and a local copy) at every router they pass;
//!   column packets deliver a local copy at every hop.
//! * **ENet** — the electrical component of ATAC/ATAC+: same mesh, plus a
//!   bounded ejection port into each cluster's hub for ONet-bound traffic.
//!
//! Mechanics (paper Table I): 1-cycle router + 1-cycle link per hop
//! (a forwarded flit becomes visible at the next router 2 cycles later),
//! wormhole flow control with a single virtual channel, XY routing,
//! 4-flit input buffers with credit back-pressure, round-robin switch
//! arbitration. Multicast forks replicate through a per-router
//! *replication queue* — the documented stand-in for the replication VCs
//! real multicast routers provision (it is unbounded, but replica flits
//! still compete cycle-by-cycle for output ports, so contention is
//! modeled; only fork-induced deadlock is excluded by construction).

use std::collections::VecDeque;

use crate::stats::NetStats;
use crate::topology::{xy_route, Port, Topology};
use crate::types::{ClusterId, CoreId, Cycle, Delivery, Dest, Message};
use atac_trace::{
    HostProfiler, NetDeliver, NetObsHandle, NetSubPhase, ProbeHandle, Subnet, TrafficKind,
};

/// Mesh behaviour for broadcast traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshKind {
    /// No multicast hardware; broadcasts become serialized unicasts.
    Pure,
    /// Router multicast via an XY spanning tree.
    BcastTree,
}

/// Travel direction of a multicast branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    North,
    South,
    East,
    West,
}

impl Dir {
    fn port(self) -> Port {
        match self {
            Dir::North => Port::North,
            Dir::South => Port::South,
            Dir::East => Port::East,
            Dir::West => Port::West,
        }
    }
}

/// How a packet is being steered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// XY to a core, eject at its Local port.
    ToCore(CoreId),
    /// XY to a hub tile, eject at its Hub port into the hub buffer.
    ToHub(CoreId),
    /// Multicast branch sweeping a row; spawns column branches + local
    /// copies at every router it reaches.
    McastRow(Dir),
    /// Multicast branch sweeping a column; spawns a local copy at every
    /// router it reaches.
    McastCol(Dir),
}

/// One packet (the wormhole routing unit).
#[derive(Debug, Clone, Copy)]
struct Packet {
    msg: Message,
    route: Route,
    len: u8,
    inject: Cycle,
}

/// A flit buffered at a router input.
#[derive(Debug, Clone, Copy)]
struct Flit {
    pkt: u32,
    idx: u8,
    arrival: Cycle,
}

/// A replica or injected flow originating *inside* a router (replication
/// queue / NIC), which emits its packet's flits one per cycle starting at
/// `ready` (the cycle the forking tail actually arrives at this router).
#[derive(Debug, Clone, Copy)]
struct Flow {
    pkt: u32,
    sent: u8,
    ready: Cycle,
}

/// Per-router state.
#[derive(Debug, Default)]
struct Router {
    /// Input buffers for the four direction ports (N, S, E, W order).
    buf: [VecDeque<Flit>; 4],
    /// Which packet currently owns each output port (wormhole allocation).
    out_owner: [Option<u32>; 6],
    /// Replication queue: multicast forks awaiting switch access.
    repq: VecDeque<Flow>,
    /// NIC injection queue (packet ids) and head-of-queue progress.
    nicq: VecDeque<u32>,
    nic_sent: u8,
}

impl Router {
    fn has_work(&self) -> bool {
        !self.repq.is_empty() || !self.nicq.is_empty() || self.buf.iter().any(|b| !b.is_empty())
    }
}

/// Identifies which source inside a router a candidate flit comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Input buffer for direction port (index 0..4).
    In(usize),
    /// NIC queue head.
    Nic,
    /// Replication queue entry at this index.
    Rep(usize),
}

/// Maximum packets queued at a NIC before `try_send` exerts back-pressure.
const NIC_CAP: usize = 16;
/// Hub ejection buffer capacity in flits.
const HUB_BUF_FLITS: u32 = 64;

/// The cycle-level mesh.
#[derive(Debug)]
pub struct Mesh {
    topo: Topology,
    kind: MeshKind,
    flit_width: u32,
    buffer_depth: usize,
    routers: Vec<Router>,
    packets: Vec<Option<Packet>>,
    free: Vec<u32>,
    /// Routers that may have work this tick (sorted before processing for
    /// determinism).
    active: Vec<u32>,
    is_active: Vec<bool>,
    deliveries: Vec<Delivery>,
    /// Per-cluster hub ejection: assembled messages (with their original
    /// injection cycle, for end-to-end latency) + flit occupancy.
    hub_out: Vec<VecDeque<(Message, Cycle)>>,
    hub_used: Vec<u32>,
    /// Per-packet count of flits ejected locally (delivery assembly).
    pub stats: NetStats,
    /// Observability probe (disabled by default; observers only, never
    /// feeds back into routing or timing).
    probe: ProbeHandle,
    /// Host self-profiler; network sub-phase laps fire only under the
    /// `ATAC_NETPROF` knob (one bool branch otherwise).
    prof: HostProfiler,
    /// Cycle-domain network observer (disabled by default; observers
    /// only, never feeds back into routing or timing).
    obs: NetObsHandle,
    /// Double buffer for `active`: the two lists are swapped each tick,
    /// so neither reallocates once warm.
    work: Vec<u32>,
    /// Reused candidate-source scratch for `tick_router`.
    src_scratch: Vec<Src>,
    /// Reused completed-replication-index scratch for `tick_router`.
    rep_done_scratch: Vec<usize>,
}

impl Mesh {
    /// Create a mesh network.
    pub fn new(topo: Topology, kind: MeshKind, flit_width: u32, buffer_depth: usize) -> Self {
        let n = topo.cores();
        Mesh {
            topo,
            kind,
            flit_width,
            buffer_depth,
            routers: (0..n).map(|_| Router::default()).collect(),
            packets: Vec::new(),
            free: Vec::new(),
            active: Vec::new(),
            is_active: vec![false; n],
            deliveries: Vec::new(),
            hub_out: (0..topo.clusters()).map(|_| VecDeque::new()).collect(),
            hub_used: vec![0; topo.clusters()],
            stats: NetStats::default(),
            probe: ProbeHandle::default(),
            prof: HostProfiler::disabled(),
            obs: NetObsHandle::disabled(),
            work: Vec::new(),
            src_scratch: Vec::new(),
            rep_done_scratch: Vec::new(),
        }
    }

    /// Attach an observability probe; mesh deliveries report as
    /// [`Subnet::ENet`].
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// Attach a host profiler for network sub-phase attribution
    /// (sub-laps are inert unless it was created with netprof on).
    pub fn set_profiler(&mut self, prof: HostProfiler) {
        self.prof = prof;
    }

    /// Attach a cycle-domain network observer.
    pub fn set_observer(&mut self, obs: NetObsHandle) {
        self.obs = obs;
    }

    /// The topology this mesh spans.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Flit width in bits.
    pub fn flit_width(&self) -> u32 {
        self.flit_width
    }

    /// The mesh flavor (broadcast handling).
    pub fn kind(&self) -> MeshKind {
        self.kind
    }

    fn alloc_packet(&mut self, p: Packet) -> u32 {
        if let Some(id) = self.free.pop() {
            self.packets[id as usize] = Some(p);
            id
        } else {
            self.packets.push(Some(p));
            (self.packets.len() - 1) as u32 // audit: allow(cast) slab index bounded by in-flight packet cap
        }
    }

    fn free_packet(&mut self, id: u32) {
        self.packets[id as usize] = None;
        self.free.push(id);
    }

    fn activate(&mut self, r: usize) {
        if !self.is_active[r] {
            self.is_active[r] = true;
            // audit: allow(alloc) amortized: double-buffered with `work`, so capacity reaches steady state and push stops allocating
            self.active.push(r as u32); // audit: allow(cast) router index < cores ≤ 1024
        }
    }

    /// Number of flits a message occupies.
    fn flits_of(&self, msg: &Message) -> u8 {
        msg.class.flits(self.flit_width) as u8 // audit: allow(cast) flit count per packet is single-digit
    }

    /// Inject a message. Returns `false` (back-pressure) if the source NIC
    /// queue is full; the caller must retry later.
    ///
    /// Self-sends (unicast to the sending core) bypass the network with a
    /// 1-cycle latency, as a real NIC loopback would.
    pub fn try_send(&mut self, msg: Message, now: Cycle) -> bool {
        match msg.dest {
            Dest::Unicast(dst) if dst == msg.src => {
                self.stats.unicast_messages += 1;
                self.stats.unicast_received += 1;
                self.stats.latency_sum += 1;
                self.stats.latency_count += 1;
                self.probe.net_deliver(&NetDeliver {
                    subnet: Subnet::ENet,
                    kind: TrafficKind::Unicast,
                    src: u32::from(msg.src.0),
                    dst: u32::from(dst.0),
                    inject: now,
                    at: now + 1,
                });
                self.deliveries.push(Delivery {
                    msg,
                    receiver: dst,
                    at: now + 1,
                });
                true
            }
            Dest::Unicast(dst) => {
                if self.routers[msg.src.idx()].nicq.len() >= NIC_CAP {
                    return false;
                }
                let len = self.flits_of(&msg);
                let id = self.alloc_packet(Packet {
                    msg,
                    route: Route::ToCore(dst),
                    len,
                    inject: now,
                });
                self.routers[msg.src.idx()].nicq.push_back(id);
                self.activate(msg.src.idx());
                self.stats.unicast_messages += 1;
                self.stats.flits_injected += u64::from(len);
                true
            }
            Dest::Broadcast => match self.kind {
                MeshKind::Pure => self.inject_expanded_broadcast(msg, now),
                MeshKind::BcastTree => self.inject_tree_broadcast(msg, now),
            },
        }
    }

    /// Inject a message destined for the *hub* of the sender's cluster
    /// (ENet role inside ATAC). Same back-pressure contract as
    /// [`Mesh::try_send`].
    pub fn try_send_to_hub(&mut self, msg: Message, now: Cycle) -> bool {
        let cluster = self.topo.cluster_of(msg.src);
        let hub_tile = self.topo.hub_core(cluster);
        if self.routers[msg.src.idx()].nicq.len() >= NIC_CAP {
            return false;
        }
        let len = self.flits_of(&msg);
        let id = self.alloc_packet(Packet {
            msg,
            route: Route::ToHub(hub_tile),
            len,
            inject: now,
        });
        self.routers[msg.src.idx()].nicq.push_back(id);
        self.activate(msg.src.idx());
        self.stats.flits_injected += u64::from(len);
        true
    }

    /// Pop a message that finished ejecting into a cluster's hub buffer,
    /// along with its original injection cycle.
    pub fn pop_hub_out(&mut self, cluster: ClusterId) -> Option<(Message, Cycle)> {
        let m = self.hub_out[cluster.idx()].pop_front();
        if let Some((ref msg, _)) = m {
            let len = u32::from(self.flits_of(msg));
            self.hub_used[cluster.idx()] -= len;
        }
        m
    }

    /// Peek whether a hub buffer holds a completed message.
    pub fn hub_out_ready(&self, cluster: ClusterId) -> bool {
        !self.hub_out[cluster.idx()].is_empty()
    }

    /// EMesh-Pure: a broadcast becomes `N−1` unicast packets queued at the
    /// source NIC (bypassing the NIC cap — the expansion is a protocol
    /// obligation, and back-pressure still applies to all later sends).
    fn inject_expanded_broadcast(&mut self, msg: Message, now: Cycle) -> bool {
        self.stats.broadcast_messages += 1;
        let len = self.flits_of(&msg);
        // audit: allow(cast) core count ≤ 1024 fits u16
        for c in 0..self.topo.cores() as u16 {
            let dst = CoreId(c);
            if dst == msg.src {
                continue;
            }
            let id = self.alloc_packet(Packet {
                msg,
                route: Route::ToCore(dst),
                len,
                inject: now,
            });
            self.routers[msg.src.idx()].nicq.push_back(id);
            self.stats.flits_injected += u64::from(len);
        }
        self.activate(msg.src.idx());
        true
    }

    /// EMesh-BCast: seed the XY multicast tree (≤ 4 branch packets placed
    /// in the source router's replication queue, as source-router
    /// replication hardware would).
    fn inject_tree_broadcast(&mut self, msg: Message, now: Cycle) -> bool {
        // Broadcast replication happens in the router, but the message
        // still enters through the single NIC port; apply the same cap.
        if self.routers[msg.src.idx()].nicq.len() >= NIC_CAP {
            return false;
        }
        self.stats.broadcast_messages += 1;
        let len = self.flits_of(&msg);
        let (x, y) = self.topo.xy(msg.src);
        // At most one branch per compass direction: a fixed array keeps
        // this per-broadcast path allocation-free.
        let branches: [Option<Route>; 4] = [
            (x + 1 < self.topo.width).then_some(Route::McastRow(Dir::East)),
            (x > 0).then_some(Route::McastRow(Dir::West)),
            (y > 0).then_some(Route::McastCol(Dir::North)),
            (y + 1 < self.topo.height).then_some(Route::McastCol(Dir::South)),
        ];
        for route in branches.into_iter().flatten() {
            let id = self.alloc_packet(Packet {
                msg,
                route,
                len,
                inject: now,
            });
            self.routers[msg.src.idx()].repq.push_back(Flow {
                pkt: id,
                sent: 0,
                ready: now,
            });
            self.stats.flits_injected += u64::from(len);
        }
        self.activate(msg.src.idx());
        true
    }

    /// The output port a packet wants at router `here`.
    fn route_port(&self, pkt: &Packet, here: CoreId) -> Port {
        match pkt.route {
            Route::ToCore(d) => xy_route(&self.topo, here, d),
            Route::ToHub(h) => {
                if here == h {
                    Port::Hub
                } else {
                    xy_route(&self.topo, here, h)
                }
            }
            Route::McastRow(d) | Route::McastCol(d) => d.port(),
        }
    }

    /// Whether the network holds any traffic.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.hub_out.iter().all(|q| q.is_empty())
    }

    /// Move deliveries accumulated since the last call into `out`.
    pub fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    /// Advance the mesh by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // Deterministic processing order. Swapping with the `work`
        // double buffer (instead of `mem::take`) keeps both lists'
        // capacity warm, so the active-list machinery stops allocating
        // after the first few ticks.
        self.active.sort_unstable();
        std::mem::swap(&mut self.active, &mut self.work);
        // Allow routers to be (re-)activated during processing, including
        // by deposits into routers later in this very list.
        for i in 0..self.work.len() {
            self.is_active[self.work[i] as usize] = false;
        }
        self.prof.net_lap(NetSubPhase::SkipScan);
        for i in 0..self.work.len() {
            self.tick_router(self.work[i] as usize, now);
        }
        for i in 0..self.work.len() {
            let r = self.work[i] as usize;
            if self.routers[r].has_work() {
                self.activate(r);
            }
        }
        self.work.clear();
        self.prof.net_lap(NetSubPhase::SkipScan);
    }

    /// Candidate sources at a router, rotated for round-robin fairness,
    /// written into `src_scratch` (cleared first) so the per-router
    /// inner loop never allocates once the scratch is warm.
    fn collect_sources(&mut self, r: usize, now: Cycle) {
        let router = &self.routers[r];
        self.src_scratch.clear();
        for i in 0..4 {
            if !router.buf[i].is_empty() {
                // audit: allow(alloc) amortized: reused scratch buffer at steady-state capacity
                self.src_scratch.push(Src::In(i));
            }
        }
        if !router.nicq.is_empty() {
            // audit: allow(alloc) amortized: reused scratch buffer at steady-state capacity
            self.src_scratch.push(Src::Nic);
        }
        for i in 0..router.repq.len() {
            // audit: allow(alloc) amortized: reused scratch buffer at steady-state capacity
            self.src_scratch.push(Src::Rep(i));
        }
        if self.src_scratch.len() > 1 {
            let rot = (now as usize + r) % self.src_scratch.len();
            self.src_scratch.rotate_left(rot);
        }
    }

    /// Peek the next flit a source would emit: (pkt, idx, head, tail).
    fn peek(&self, r: usize, src: Src, now: Cycle) -> Option<(u32, u8, bool, bool)> {
        let router = &self.routers[r];
        match src {
            Src::In(i) => {
                let f = router.buf[i].front()?;
                if f.arrival > now {
                    return None;
                }
                let len = self.packets[f.pkt as usize].as_ref()?.len;
                Some((f.pkt, f.idx, f.idx == 0, f.idx + 1 == len))
            }
            Src::Nic => {
                let &pkt = router.nicq.front()?;
                let len = self.packets[pkt as usize].as_ref()?.len;
                let idx = router.nic_sent;
                Some((pkt, idx, idx == 0, idx + 1 == len))
            }
            Src::Rep(i) => {
                let flow = router.repq.get(i)?;
                if flow.ready > now {
                    return None;
                }
                let len = self.packets[flow.pkt as usize].as_ref()?.len;
                Some((flow.pkt, flow.sent, flow.sent == 0, flow.sent + 1 == len))
            }
        }
    }

    fn tick_router(&mut self, r: usize, now: Cycle) {
        let here = CoreId(r as u16); // audit: allow(cast) router index < cores fits u16
        if self.obs.is_enabled() {
            let occ = self.routers[r].buf.iter().map(|b| b.len()).sum();
            self.obs.router_cycle(r, occ);
        }
        let mut out_used = [false; 6];
        self.collect_sources(r, now);
        // Detach the scratch lists so the borrow checker allows `&mut
        // self` calls inside the loop; both are restored at the end.
        let sources = std::mem::take(&mut self.src_scratch);
        // Track repq entries that completed, to remove after the loop.
        let mut rep_done = std::mem::take(&mut self.rep_done_scratch);
        self.prof.net_lap(NetSubPhase::SwitchArb);

        for &src in &sources {
            let Some((pkt_id, idx, is_head, is_tail)) = self.peek(r, src, now) else {
                continue;
            };
            let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
            let out = self.route_port(&pkt, here);
            let oi = out.idx();
            self.prof.net_lap(NetSubPhase::RouteCompute);
            if out_used[oi] {
                continue;
            }
            // Switch allocation (wormhole: the head claims the output,
            // the tail releases it).
            match self.routers[r].out_owner[oi] {
                Some(owner) if owner == pkt_id => {}
                Some(_) => continue, // output held by another packet
                None => {
                    if !is_head {
                        // A body flit whose allocation was lost can only
                        // happen through a bug; wormhole keeps ownership.
                        debug_assert!(false, "body flit without allocation");
                        continue;
                    }
                    self.routers[r].out_owner[oi] = Some(pkt_id);
                    self.stats.arbitrations += 1;
                }
            }
            self.prof.net_lap(NetSubPhase::SwitchArb);

            // Can the flit actually move?
            let moved = match out {
                Port::Local => {
                    self.deliver_flit(pkt_id, is_tail, now);
                    true
                }
                Port::Hub => self.eject_to_hub(pkt_id, here, is_tail),
                Port::North | Port::South | Port::East | Port::West => {
                    self.forward_flit(r, out, pkt_id, idx, is_tail, now)
                }
            };
            if !moved {
                continue;
            }
            out_used[oi] = true;
            self.stats.xbar_traversals += 1;
            self.obs.flit_routed(r, oi);

            // Consume from the source.
            match src {
                Src::In(i) => {
                    self.routers[r].buf[i].pop_front();
                    self.stats.buffer_reads += 1;
                }
                Src::Nic => {
                    if is_tail {
                        self.routers[r].nicq.pop_front();
                        self.routers[r].nic_sent = 0;
                    } else {
                        self.routers[r].nic_sent += 1;
                    }
                }
                Src::Rep(i) => {
                    if is_tail {
                        // audit: allow(alloc) amortized: reused scratch buffer at steady-state capacity
                        rep_done.push(i);
                    } else {
                        self.routers[r].repq[i].sent += 1;
                    }
                }
            }
            if is_tail {
                self.routers[r].out_owner[oi] = None;
            }
            self.prof.net_lap(NetSubPhase::QueueOps);
        }

        rep_done.sort_unstable_by(|a, b| b.cmp(a));
        for &i in &rep_done {
            self.routers[r].repq.remove(i);
        }
        rep_done.clear();
        self.src_scratch = sources;
        self.rep_done_scratch = rep_done;
        self.prof.net_lap(NetSubPhase::QueueOps);
    }

    /// Forward a flit out a direction port into the neighbouring router's
    /// opposite input buffer (1-cycle router + 1-cycle link → visible at
    /// `now + 2`). Returns `false` when the downstream buffer is full.
    fn forward_flit(
        &mut self,
        r: usize,
        out: Port,
        pkt_id: u32,
        idx: u8,
        is_tail: bool,
        now: Cycle,
    ) -> bool {
        let (x, y) = self.topo.xy(CoreId(r as u16)); // audit: allow(cast) router index < cores fits u16
        let (nr, in_port) = match out {
            Port::North => (self.topo.core_at(x, y - 1), 1), // enters from its South
            Port::South => (self.topo.core_at(x, y + 1), 0),
            Port::East => (self.topo.core_at(x + 1, y), 3), // enters from its West
            Port::West => (self.topo.core_at(x - 1, y), 2),
            Port::Local | Port::Hub => unreachable!("forward_flit only crosses mesh links"),
        };
        let nri = nr.idx();
        let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
        let continues = self.continues_at(&pkt, nr);
        if continues && self.routers[nri].buf[in_port].len() >= self.buffer_depth {
            self.obs.credit_stall(r);
            self.prof.net_lap(NetSubPhase::Credit);
            return false;
        }
        self.prof.net_lap(NetSubPhase::Credit);
        self.stats.link_traversals += 1;
        if continues {
            self.routers[nri].buf[in_port].push_back(Flit {
                pkt: pkt_id,
                idx,
                arrival: now + 2,
            });
            self.stats.buffer_writes += 1;
        }
        if is_tail {
            self.on_tail_arrival(pkt_id, nr, continues, now + 2);
        }
        self.activate(nri);
        true
    }

    /// Does this packet continue past router `at` (i.e. should its flits
    /// be buffered there)? Multicast branches die at the mesh edge; their
    /// flits still traverse the final link but are not re-buffered.
    fn continues_at(&self, pkt: &Packet, at: CoreId) -> bool {
        let (x, y) = self.topo.xy(at);
        match pkt.route {
            Route::ToCore(_) | Route::ToHub(_) => true, // terminate via ejection ports
            Route::McastRow(Dir::East) => x + 1 < self.topo.width,
            Route::McastRow(Dir::West) => x > 0,
            Route::McastCol(Dir::North) => y > 0,
            Route::McastCol(Dir::South) => y + 1 < self.topo.height,
            Route::McastRow(_) | Route::McastCol(_) => unreachable!("invalid multicast direction"),
        }
    }

    /// Handle a multicast tail arriving at router `at` (the arrival takes
    /// effect at `ready`): spawn the local copy (and, for row branches,
    /// the column branches); free the packet if the branch ends here.
    fn on_tail_arrival(&mut self, pkt_id: u32, at: CoreId, continues: bool, ready: Cycle) {
        let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
        let (_, y) = self.topo.xy(at);
        match pkt.route {
            Route::ToCore(_) | Route::ToHub(_) => {}
            Route::McastRow(_) => {
                self.spawn(pkt_id, at, Route::ToCore(at), ready);
                if y > 0 {
                    self.spawn(pkt_id, at, Route::McastCol(Dir::North), ready);
                }
                if y + 1 < self.topo.height {
                    self.spawn(pkt_id, at, Route::McastCol(Dir::South), ready);
                }
                if !continues {
                    self.free_packet(pkt_id);
                }
            }
            Route::McastCol(_) => {
                self.spawn(pkt_id, at, Route::ToCore(at), ready);
                if !continues {
                    self.free_packet(pkt_id);
                }
            }
        }
    }

    fn spawn(&mut self, parent: u32, at: CoreId, route: Route, ready: Cycle) {
        let p = self.packets[parent as usize].expect("live packet"); // audit: allow(expect) parent held live until children spawn
        let id = self.alloc_packet(Packet { route, ..p });
        self.routers[at.idx()].repq.push_back(Flow {
            pkt: id,
            sent: 0,
            ready,
        });
        self.activate(at.idx());
    }

    /// Deliver one flit at the local port; on the tail, record the
    /// delivery and free the packet.
    fn deliver_flit(&mut self, pkt_id: u32, is_tail: bool, now: Cycle) {
        if !is_tail {
            return;
        }
        let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
        let receiver = match pkt.route {
            Route::ToCore(d) => d,
            Route::ToHub(_) | Route::McastRow(_) | Route::McastCol(_) => {
                unreachable!("only ToCore ejects locally")
            }
        };
        let kind = match pkt.msg.dest {
            Dest::Unicast(_) => {
                self.stats.unicast_received += 1;
                TrafficKind::Unicast
            }
            Dest::Broadcast => {
                self.stats.broadcast_received += 1;
                TrafficKind::Broadcast
            }
        };
        self.stats.latency_sum += now + 1 - pkt.inject;
        self.stats.latency_count += 1;
        self.probe.net_deliver(&NetDeliver {
            subnet: Subnet::ENet,
            kind,
            src: u32::from(pkt.msg.src.0),
            dst: u32::from(receiver.0),
            inject: pkt.inject,
            at: now + 1,
        });
        self.deliveries.push(Delivery {
            msg: pkt.msg,
            receiver,
            at: now + 1,
        });
        self.free_packet(pkt_id);
    }

    /// Eject a flit into the hub buffer of the cluster at `here`.
    /// Returns `false` when the hub buffer is full (back-pressure).
    fn eject_to_hub(&mut self, pkt_id: u32, here: CoreId, is_tail: bool) -> bool {
        let cl = self.topo.cluster_of(here).idx();
        if self.hub_used[cl] >= HUB_BUF_FLITS {
            return false;
        }
        self.hub_used[cl] += 1;
        self.stats.hub_buffer_writes += 1;
        if is_tail {
            let pkt = self.packets[pkt_id as usize].expect("live packet"); // audit: allow(expect) flit refs keep the slab entry live
            self.hub_out[cl].push_back((pkt.msg, pkt.inject));
            self.free_packet(pkt_id);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MessageClass;

    fn msg(src: u16, dest: Dest) -> Message {
        Message {
            src: CoreId(src),
            dest,
            class: MessageClass::Control,
            token: 0,
        }
    }

    fn run_until_idle(mesh: &mut Mesh, start: Cycle, max: u64) -> (Vec<Delivery>, Cycle) {
        let mut out = Vec::new();
        let mut now = start;
        while !mesh.is_idle() {
            mesh.tick(now);
            mesh.drain_deliveries(&mut out);
            now += 1;
            assert!(now - start < max, "mesh did not drain in {max} cycles");
        }
        (out, now)
    }

    #[test]
    fn unicast_reaches_destination() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let m = msg(0, Dest::Unicast(CoreId(63)));
        assert!(mesh.try_send(m, 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 1000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].receiver, CoreId(63));
        assert_eq!(out[0].msg, m);
    }

    #[test]
    fn unicast_latency_matches_hop_count() {
        // 2 cycles per hop + serialization (2 flits) + ejection.
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let dst = topo.core_at(7, 7); // 14 hops from (0,0)
        assert!(mesh.try_send(msg(0, Dest::Unicast(dst)), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 1000);
        let lat = out[0].at;
        // zero-load: ~2 cycles/hop + flits + eject = 14*2 + 2 + small
        assert!(lat >= 28, "latency {lat}");
        assert!(lat <= 36, "latency {lat}");
    }

    #[test]
    fn self_send_bypasses_network() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        assert!(mesh.try_send(msg(5, Dest::Unicast(CoreId(5))), 10));
        let mut out = Vec::new();
        mesh.drain_deliveries(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, 11);
        assert!(mesh.is_idle());
    }

    #[test]
    fn tree_broadcast_reaches_everyone_once() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        assert!(mesh.try_send(msg(27, Dest::Broadcast), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 5000);
        assert_eq!(out.len(), 63, "every core but the source, exactly once");
        let mut seen = [false; 64];
        for d in &out {
            assert!(!seen[d.receiver.idx()], "duplicate to {:?}", d.receiver);
            seen[d.receiver.idx()] = true;
        }
        assert!(!seen[27]);
    }

    #[test]
    fn tree_broadcast_from_corner() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        assert!(mesh.try_send(msg(0, Dest::Broadcast), 0));
        let (out, _) = run_until_idle(&mut mesh, 0, 5000);
        assert_eq!(out.len(), 63);
    }

    #[test]
    fn pure_broadcast_is_serialized_unicasts() {
        let topo = Topology::small(4, 2);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        assert!(mesh.try_send(msg(0, Dest::Broadcast), 0));
        let (out, end) = run_until_idle(&mut mesh, 0, 10_000);
        assert_eq!(out.len(), 15);
        // Serialization: 15 packets × 2 flits from one NIC ≥ 30 cycles.
        assert!(end >= 30, "end {end}");
        assert_eq!(mesh.stats.broadcast_received, 15);
    }

    #[test]
    fn pure_broadcast_much_slower_than_tree() {
        let topo = Topology::small(8, 4);
        let mut pure = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let mut tree = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        pure.try_send(msg(0, Dest::Broadcast), 0);
        tree.try_send(msg(0, Dest::Broadcast), 0);
        let (_, t_pure) = run_until_idle(&mut pure, 0, 10_000);
        let (_, t_tree) = run_until_idle(&mut tree, 0, 10_000);
        assert!(
            t_pure > 2 * t_tree,
            "pure {t_pure} should be ≫ tree {t_tree}"
        );
    }

    #[test]
    fn hub_ejection_and_pop() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let m = msg(10, Dest::Unicast(CoreId(50))); // dest used by upper layer
        assert!(mesh.try_send_to_hub(m, 0));
        let mut now = 0;
        let cl = topo.cluster_of(CoreId(10));
        let mut got = None;
        while got.is_none() && now < 200 {
            mesh.tick(now);
            got = mesh.pop_hub_out(cl);
            now += 1;
        }
        assert_eq!(got, Some((m, 0)));
        assert!(mesh.stats.hub_buffer_writes >= 2);
    }

    #[test]
    fn nic_back_pressure_eventually_refuses() {
        let topo = Topology::small(4, 2);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let mut accepted = 0;
        for _ in 0..100 {
            if mesh.try_send(msg(0, Dest::Unicast(CoreId(15))), 0) {
                accepted += 1;
            }
        }
        assert!(accepted >= NIC_CAP as u32);
        assert!(accepted < 100, "NIC must exert back-pressure");
        // Draining restores capacity.
        let _ = run_until_idle(&mut mesh, 0, 20_000);
        assert!(mesh.try_send(msg(0, Dest::Unicast(CoreId(15))), 1000));
    }

    #[test]
    fn stats_count_flits_and_hops() {
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 64, 4);
        let dst = topo.core_at(3, 0); // 3 hops straight east
        assert!(mesh.try_send(msg(0, Dest::Unicast(dst)), 0));
        let _ = run_until_idle(&mut mesh, 0, 1000);
        // control = 2 flits; 3 link hops each.
        assert_eq!(mesh.stats.flits_injected, 2);
        assert_eq!(mesh.stats.link_traversals, 6);
        assert_eq!(mesh.stats.unicast_received, 1);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let topo = Topology::small(8, 4);
        let run = || {
            let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
            for i in 0..32u16 {
                mesh.try_send(msg(i, Dest::Unicast(CoreId(63 - i))), 0);
            }
            mesh.try_send(msg(5, Dest::Broadcast), 0);
            let (mut out, end) = run_until_idle(&mut mesh, 0, 50_000);
            out.sort_by_key(|d| (d.at, d.receiver.0, d.msg.src.0));
            (out, end, mesh.stats.clone())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn heavy_random_traffic_drains() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let topo = Topology::small(8, 4);
        let mut mesh = Mesh::new(topo, MeshKind::BcastTree, 64, 4);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sent = 0u64;
        let mut out = Vec::new();
        for now in 0..2000u64 {
            for c in 0..64u16 {
                if rng.gen_bool(0.05) {
                    let dest = if rng.gen_bool(0.01) {
                        Dest::Broadcast
                    } else {
                        Dest::Unicast(CoreId(rng.gen_range(0..64)))
                    };
                    if mesh.try_send(msg(c, dest), now) {
                        sent += 1;
                    }
                }
            }
            mesh.tick(now);
            mesh.drain_deliveries(&mut out);
        }
        let (rest, _) = run_until_idle(&mut mesh, 2000, 3_000_000);
        out.extend(rest);
        assert!(sent > 1000);
        // Every unicast delivered exactly once; broadcasts 63× each.
        let bc = mesh.stats.broadcast_messages;
        let uc = mesh.stats.unicast_messages;
        assert_eq!(
            out.len() as u64,
            uc + bc * 63,
            "uc={uc} bc={bc} out={}",
            out.len()
        );
    }

    #[test]
    fn wide_flits_reduce_flit_count() {
        let topo = Topology::small(4, 2);
        let mut mesh = Mesh::new(topo, MeshKind::Pure, 256, 4);
        let m = Message {
            src: CoreId(0),
            dest: Dest::Unicast(CoreId(15)),
            class: MessageClass::Data,
            token: 0,
        };
        assert!(mesh.try_send(m, 0));
        let _ = run_until_idle(&mut mesh, 0, 1000);
        assert_eq!(mesh.stats.flits_injected, 3); // 616/256 → 3 flits
    }
}
