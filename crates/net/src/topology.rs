//! Chip geometry: the 32×32 core mesh and its 8×8 grid of 4×4-core
//! clusters, exactly the 1024-core / 64-cluster layout of the paper.

use crate::types::{ClusterId, CoreId};

/// Geometry of the tiled chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Mesh width in tiles (32 for the paper's chip).
    pub width: u16,
    /// Mesh height in tiles (32).
    pub height: u16,
    /// Cluster width/height in tiles (4 → 16-core clusters).
    pub cluster_side: u16,
}

impl Topology {
    /// The paper's 1024-core chip: 32×32 tiles, 64 clusters of 16 cores.
    pub fn atac_1024() -> Self {
        Topology {
            width: 32,
            height: 32,
            cluster_side: 4,
        }
    }

    /// A small chip for fast tests: 8×8 tiles, 4 clusters of 16 cores
    /// (or custom cluster side).
    pub fn small(side: u16, cluster_side: u16) -> Self {
        assert!(
            side.is_multiple_of(cluster_side),
            "cluster side must divide mesh side"
        );
        Topology {
            width: side,
            height: side,
            cluster_side,
        }
    }

    /// Total number of cores.
    #[inline]
    pub fn cores(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of clusters (= ONet hubs).
    #[inline]
    pub fn clusters(&self) -> usize {
        let cx = self.width / self.cluster_side;
        let cy = self.height / self.cluster_side;
        cx as usize * cy as usize
    }

    /// Cores per cluster.
    #[inline]
    pub fn cores_per_cluster(&self) -> usize {
        (self.cluster_side as usize) * (self.cluster_side as usize)
    }

    /// (x, y) tile position of a core.
    #[inline]
    pub fn xy(&self, c: CoreId) -> (u16, u16) {
        (c.0 % self.width, c.0 / self.width)
    }

    /// Core at tile (x, y).
    #[inline]
    pub fn core_at(&self, x: u16, y: u16) -> CoreId {
        debug_assert!(x < self.width && y < self.height);
        CoreId(y * self.width + x)
    }

    /// Cluster of a core.
    #[inline]
    pub fn cluster_of(&self, c: CoreId) -> ClusterId {
        let (x, y) = self.xy(c);
        let cx = x / self.cluster_side;
        let cy = y / self.cluster_side;
        let clusters_x = self.width / self.cluster_side;
        ClusterId((cy * clusters_x + cx) as u8)
    }

    /// The core that hosts a cluster's hub (its top-left tile, whose
    /// router carries the extra hub port).
    #[inline]
    pub fn hub_core(&self, cl: ClusterId) -> CoreId {
        let clusters_x = self.width / self.cluster_side;
        let cx = u16::from(cl.0) % clusters_x;
        let cy = u16::from(cl.0) / clusters_x;
        self.core_at(cx * self.cluster_side, cy * self.cluster_side)
    }

    /// All cores in a cluster, in row-major order.
    pub fn cluster_cores(&self, cl: ClusterId) -> impl Iterator<Item = CoreId> + '_ {
        let clusters_x = self.width / self.cluster_side;
        let cx = (u16::from(cl.0) % clusters_x) * self.cluster_side;
        let cy = (u16::from(cl.0) / clusters_x) * self.cluster_side;
        let side = self.cluster_side;
        (0..side).flat_map(move |dy| (0..side).map(move |dx| self.core_at(cx + dx, cy + dy)))
    }

    /// Manhattan distance in mesh hops between two cores — the metric of
    /// the Distance-i routing scheme (§IV-C).
    #[inline]
    pub fn manhattan(&self, a: CoreId, b: CoreId) -> u32 {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        u32::from(ax.abs_diff(bx) + ay.abs_diff(by))
    }
}

/// The five mesh router ports (plus the optional hub port on hub tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward decreasing y.
    North,
    /// Toward increasing y.
    South,
    /// Toward increasing x.
    East,
    /// Toward decreasing x.
    West,
    /// Ejection to the local core.
    Local,
    /// Ejection to the cluster hub (only present on hub tiles).
    Hub,
}

impl Port {
    /// Index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Local => 4,
            Port::Hub => 5,
        }
    }

    /// All ports in index order.
    pub const ALL: [Port; 6] = [
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::Local,
        Port::Hub,
    ];
}

/// XY dimension-order routing: the next output port on the path from the
/// router at `here` to `dst` (X first, then Y), or `Local` on arrival.
#[inline]
pub fn xy_route(topo: &Topology, here: CoreId, dst: CoreId) -> Port {
    let (hx, hy) = topo.xy(here);
    let (dx, dy) = topo.xy(dst);
    if dx > hx {
        Port::East
    } else if dx < hx {
        Port::West
    } else if dy > hy {
        Port::South
    } else if dy < hy {
        Port::North
    } else {
        Port::Local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_dimensions() {
        let t = Topology::atac_1024();
        assert_eq!(t.cores(), 1024);
        assert_eq!(t.clusters(), 64);
        assert_eq!(t.cores_per_cluster(), 16);
    }

    #[test]
    fn xy_roundtrip() {
        let t = Topology::atac_1024();
        for id in [0u16, 1, 31, 32, 1023] {
            let c = CoreId(id);
            let (x, y) = t.xy(c);
            assert_eq!(t.core_at(x, y), c);
        }
    }

    #[test]
    fn cluster_mapping_partitions_cores() {
        let t = Topology::atac_1024();
        let mut counts = vec![0usize; t.clusters()];
        for id in 0..t.cores() as u16 {
            counts[t.cluster_of(CoreId(id)).idx()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16));
    }

    #[test]
    fn cluster_cores_iter_agrees_with_cluster_of() {
        let t = Topology::atac_1024();
        for cl in 0..t.clusters() as u8 {
            let cl = ClusterId(cl);
            let cores: Vec<_> = t.cluster_cores(cl).collect();
            assert_eq!(cores.len(), 16);
            for c in cores {
                assert_eq!(t.cluster_of(c), cl);
            }
        }
    }

    #[test]
    fn hub_core_is_in_its_cluster() {
        let t = Topology::atac_1024();
        for cl in 0..t.clusters() as u8 {
            let cl = ClusterId(cl);
            assert_eq!(t.cluster_of(t.hub_core(cl)), cl);
        }
    }

    #[test]
    fn manhattan_examples() {
        let t = Topology::atac_1024();
        let a = t.core_at(0, 0);
        let b = t.core_at(31, 31);
        assert_eq!(t.manhattan(a, b), 62);
        assert_eq!(t.manhattan(a, a), 0);
        assert_eq!(t.manhattan(t.core_at(3, 4), t.core_at(5, 1)), 5);
    }

    #[test]
    fn xy_route_goes_x_first() {
        let t = Topology::atac_1024();
        let here = t.core_at(5, 5);
        assert_eq!(xy_route(&t, here, t.core_at(9, 2)), Port::East);
        assert_eq!(xy_route(&t, here, t.core_at(2, 9)), Port::West);
        assert_eq!(xy_route(&t, here, t.core_at(5, 9)), Port::South);
        assert_eq!(xy_route(&t, here, t.core_at(5, 2)), Port::North);
        assert_eq!(xy_route(&t, here, here), Port::Local);
    }

    #[test]
    fn xy_route_reaches_destination() {
        let t = Topology::atac_1024();
        let dst = t.core_at(17, 23);
        let mut here = t.core_at(3, 8);
        let mut hops = 0;
        loop {
            let p = xy_route(&t, here, dst);
            if p == Port::Local {
                break;
            }
            let (x, y) = t.xy(here);
            here = match p {
                Port::North => t.core_at(x, y - 1),
                Port::South => t.core_at(x, y + 1),
                Port::East => t.core_at(x + 1, y),
                Port::West => t.core_at(x - 1, y),
                _ => unreachable!(),
            };
            hops += 1;
            assert!(hops <= 64, "routing loop");
        }
        assert_eq!(here, dst);
        assert_eq!(hops, t.manhattan(t.core_at(3, 8), dst));
    }

    #[test]
    fn small_topology() {
        let t = Topology::small(8, 4);
        assert_eq!(t.cores(), 64);
        assert_eq!(t.clusters(), 4);
        assert_eq!(t.cores_per_cluster(), 16);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_cluster_side_panics() {
        let _ = Topology::small(10, 4);
    }
}
