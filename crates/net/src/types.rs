//! Core identifier and message types shared by every network model.

/// Simulation time in clock cycles (cores and network share a 1 GHz clock
/// in the paper, Table I).
pub type Cycle = u64;

/// Identifies one of the 1024 cores (also its tile / router position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Index as usize for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifies one of the 64 clusters (= ONet hubs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u8);

impl ClusterId {
    /// Index as usize for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Where a message is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// A single destination core.
    Unicast(CoreId),
    /// Every other core on the chip (coherence invalidation broadcasts).
    Broadcast,
}

/// Coarse message classes, used for statistics and payload sizing.
///
/// Payload sizes follow §IV-C: a coherence control message is 88 bits
/// (64 address + 20 sender/receiver + 4 type) and a data message is 600
/// bits (512 data + 64 address + 20 IDs + 4 type); both carry the 16-bit
/// ATAC+ sequence number without growing their flit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Address-only coherence traffic (requests, invalidations, acks).
    Control,
    /// Cache-line-bearing traffic (fills, writebacks, flush data).
    Data,
    /// Synthetic traffic from the Fig. 3 network-only harness.
    Synthetic,
}

impl MessageClass {
    /// Payload size in bits, including the 16-bit sequence number.
    #[inline]
    pub fn payload_bits(self) -> u32 {
        match self {
            MessageClass::Control => 88 + 16,
            MessageClass::Data => 600 + 16,
            MessageClass::Synthetic => 88 + 16,
        }
    }

    /// Number of flits at the given flit width.
    #[inline]
    pub fn flits(self, flit_width: u32) -> u32 {
        self.payload_bits().div_ceil(flit_width)
    }
}

/// A network message as seen by the protocol layers above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending core.
    pub src: CoreId,
    /// Destination.
    pub dest: Dest,
    /// Class (sets payload size).
    pub class: MessageClass,
    /// Opaque token round-tripped to the sender's protocol layer; the
    /// network never interprets it.
    pub token: u64,
}

/// A message arriving at a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The original message.
    pub msg: Message,
    /// The core receiving this copy (for broadcasts, one delivery per
    /// receiving core).
    pub receiver: CoreId,
    /// Cycle at which the last flit reached the receiver.
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_match_paper() {
        assert_eq!(MessageClass::Control.payload_bits(), 104);
        assert_eq!(MessageClass::Data.payload_bits(), 616);
    }

    #[test]
    fn flit_counts_at_64_bits() {
        // §IV-C: adding the sequence number creates no extra flits —
        // control stays at 2 flits, data at 10 flits of 64 bits.
        assert_eq!(MessageClass::Control.flits(64), 2);
        assert_eq!(MessageClass::Data.flits(64), 10);
        // without the seq number: 88/64→2, 600/64→10. Same.
        assert_eq!(88u32.div_ceil(64), 2);
        assert_eq!(600u32.div_ceil(64), 10);
    }

    #[test]
    fn flit_counts_scale_with_width() {
        assert_eq!(MessageClass::Data.flits(16), 39);
        assert_eq!(MessageClass::Data.flits(128), 5);
        assert_eq!(MessageClass::Data.flits(256), 3);
        assert_eq!(MessageClass::Control.flits(256), 1);
    }
}
