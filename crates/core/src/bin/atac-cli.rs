//! `atac-cli` — command-line front end for the evaluation framework.
//!
//! ```text
//! atac-cli list
//! atac-cli run --bench radix --arch atac+ --cores 256 --scale paper
//! atac-cli run --bench barnes --arch emesh-bcast --protocol dir4b
//! atac-cli compare --bench ocean_contig --cores 256
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency): flags are
//! `--key value` pairs, validated against the same enums the library
//! exposes, so the CLI can never drift from the API.

use atac::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
atac-cli — ATAC+ nanophotonic manycore evaluation (IPDPS 2012 reproduction)

USAGE:
  atac-cli list
  atac-cli run     --bench <name> [--arch <name>] [--cores 64|256|1024]
                   [--scale test|paper] [--protocol ackwise<k>|dir<k>b]
                   [--scenario ideal|practical|ringtuned|cons]
                   [--flit <bits>] [--ndd <0..1>]
                   [--metrics-out <file.jsonl>] [--trace-out <file.json>]
                   [--epoch-cycles <n>]
  atac-cli compare --bench <name> [--cores 64|256|1024] [--scale test|paper]

TRACING:
  --metrics-out  write latency histograms + epoch metrics as JSONL
  --trace-out    write a Chrome trace-event file (open at ui.perfetto.dev)
  --epoch-cycles sample laser/link/queue/energy time series every <n> cycles

ARCHITECTURES: atac+ | atac | emesh-bcast | emesh-pure | distance-<i>
BENCHMARKS:    dynamic_graph radix barnes fmm ocean_contig lu_contig
               ocean_non_contig lu_non_contig";

/// Parse `--key value` pairs.
fn flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let k = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{k}'"))?;
        let v = it.next().ok_or_else(|| format!("--{k} needs a value"))?;
        out.push((k.to_string(), v.clone()));
    }
    Ok(out)
}

fn parse_bench(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark '{name}' (try: atac-cli list)"))
}

fn parse_arch(name: &str) -> Result<Arch, String> {
    match name {
        "atac+" => Ok(Arch::atac_plus()),
        "atac" => Ok(Arch::atac_baseline()),
        "emesh-bcast" => Ok(Arch::EMeshBcast),
        "emesh-pure" => Ok(Arch::EMeshPure),
        other => {
            if let Some(i) = other.strip_prefix("distance-") {
                let i: u32 = i.parse().map_err(|_| format!("bad distance '{other}'"))?;
                Ok(Arch::Atac(RoutingPolicy::Distance(i), ReceiveNet::StarNet))
            } else {
                Err(format!("unknown architecture '{other}'"))
            }
        }
    }
}

fn parse_protocol(name: &str) -> Result<ProtocolKind, String> {
    if let Some(k) = name.strip_prefix("ackwise") {
        return Ok(ProtocolKind::AckWise {
            k: k.parse().map_err(|_| format!("bad k in '{name}'"))?,
        });
    }
    if let Some(k) = name.strip_prefix("dir").and_then(|s| s.strip_suffix('b')) {
        return Ok(ProtocolKind::DirB {
            k: k.parse().map_err(|_| format!("bad k in '{name}'"))?,
        });
    }
    Err(format!("unknown protocol '{name}' (ackwise4, dir4b, ...)"))
}

fn parse_scenario(name: &str) -> Result<PhotonicScenario, String> {
    Ok(match name {
        "ideal" => PhotonicScenario::Ideal,
        "practical" => PhotonicScenario::Practical,
        "ringtuned" => PhotonicScenario::RingTuned,
        "cons" => PhotonicScenario::Conservative,
        _ => return Err(format!("unknown scenario '{name}'")),
    })
}

fn parse_cores(v: &str) -> Result<Topology, String> {
    match v {
        "64" => Ok(Topology::small(8, 4)),
        "256" => Ok(Topology::small(16, 4)),
        "1024" => Ok(Topology::atac_1024()),
        _ => Err("supported core counts: 64, 256, 1024".into()),
    }
}

struct RunSpec {
    bench: Benchmark,
    cfg: SimConfig,
    scale: Scale,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    epoch_cycles: Option<u64>,
}

impl RunSpec {
    /// Any tracing output requested?
    fn traced(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some() || self.epoch_cycles.is_some()
    }
}

fn parse_run(args: &[String]) -> Result<RunSpec, String> {
    let mut bench = None;
    let mut cfg = SimConfig {
        topo: Topology::small(16, 4),
        ..SimConfig::default()
    };
    let mut scale = Scale::Paper;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut epoch_cycles = None;
    for (k, v) in flags(args)? {
        match k.as_str() {
            "bench" => bench = Some(parse_bench(&v)?),
            "arch" => cfg.arch = parse_arch(&v)?,
            "cores" => cfg.topo = parse_cores(&v)?,
            "protocol" => cfg.protocol = parse_protocol(&v)?,
            "scenario" => cfg.scenario = parse_scenario(&v)?,
            "flit" => cfg.flit_width = v.parse().map_err(|_| "bad flit width".to_string())?,
            "ndd" => cfg.core_ndd_fraction = v.parse().map_err(|_| "bad ndd".to_string())?,
            "scale" => {
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    _ => return Err("scale is 'test' or 'paper'".into()),
                }
            }
            "metrics-out" => metrics_out = Some(v),
            "trace-out" => trace_out = Some(v),
            "epoch-cycles" => {
                let n: u64 = v.parse().map_err(|_| "bad epoch length".to_string())?;
                if n == 0 {
                    return Err("--epoch-cycles must be > 0".into());
                }
                epoch_cycles = Some(n);
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    Ok(RunSpec {
        bench: bench.ok_or("--bench is required")?,
        cfg,
        scale,
        metrics_out,
        trace_out,
        epoch_cycles,
    })
}

fn cmd_list() -> i32 {
    println!("benchmarks:");
    for b in Benchmark::ALL {
        println!("  {}", b.name());
    }
    println!("\narchitectures: atac+ atac emesh-bcast emesh-pure distance-<i>");
    println!("scenarios:     ideal practical ringtuned cons");
    println!("protocols:     ackwise<k> dir<k>b   (e.g. ackwise4, dir4b)");
    0
}

fn report(r: &SimResult, cfg: &SimConfig) {
    println!("benchmark        {}", r.workload);
    println!("architecture     {}", r.arch);
    println!("cores            {}", cfg.topo.cores());
    println!(
        "completion       {} cycles ({:.3} ms at 1 GHz)",
        r.cycles,
        r.cycles as f64 / 1e6
    );
    println!(
        "instructions     {}   (IPC/core {:.4})",
        r.instructions, r.ipc
    );
    println!("L1-D miss rate   {:.2} %", r.coh.l1d_miss_rate() * 100.0);
    println!(
        "inv broadcasts   {}   unicasts/broadcast {:.0}",
        r.coh.inv_broadcasts,
        r.net.unicasts_per_broadcast()
    );
    println!(
        "offered load     {:.4} flits/cycle/core",
        r.net.offered_load(cfg.topo.cores())
    );
    let e = &r.energy;
    println!(
        "energy           network {:.3e} J | caches {:.3e} J | cores {:.3e} J",
        e.network().value(),
        e.caches().value(),
        e.cores().value()
    );
    println!("energy-delay     {:.3e} J*s", r.edp(cfg).value());
}

fn cmd_run(args: &[String]) -> i32 {
    match parse_run(args) {
        Ok(spec) if spec.traced() => cmd_run_traced(&spec),
        Ok(spec) => {
            let r = atac::run_benchmark(&spec.cfg, spec.bench, spec.scale);
            report(&r, &spec.cfg);
            0
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            2
        }
    }
}

fn cmd_run_traced(spec: &RunSpec) -> i32 {
    use std::cell::RefCell;
    use std::rc::Rc;

    let collector = Rc::new(RefCell::new(TraceCollector::new()));
    let probe = ProbeHandle::attach(Rc::clone(&collector));
    let r = atac::run_benchmark_traced(&spec.cfg, spec.bench, spec.scale, probe, spec.epoch_cycles);
    report(&r, &spec.cfg);

    let c = collector.borrow();
    println!("\nlatency percentiles (cycles):");
    for (subnet, kind, h) in c.net_histograms() {
        if !h.is_empty() {
            let class = format!("{}/{}", subnet.name(), kind.name());
            println!("  {}", atac::trace::percentile_row(&class, h));
        }
    }
    for (name, h) in c.txn_histograms() {
        if !h.is_empty() {
            println!("  {}", atac::trace::percentile_row(name, h));
        }
    }
    if let Some(path) = &spec.metrics_out {
        if let Err(e) = std::fs::write(path, atac::trace::metrics_jsonl(&c)) {
            eprintln!("error: writing {path}: {e}");
            return 1;
        }
        println!("metrics  -> {path}");
    }
    if let Some(path) = &spec.trace_out {
        if let Err(e) = std::fs::write(path, atac::trace::chrome_trace(&c)) {
            eprintln!("error: writing {path}: {e}");
            return 1;
        }
        println!("trace    -> {path}  (load at ui.perfetto.dev)");
    }
    0
}

fn cmd_compare(args: &[String]) -> i32 {
    match parse_run(args) {
        Ok(spec) => {
            println!(
                "{:<14} {:>12} {:>10} {:>14} {:>14}",
                "architecture", "cycles", "IPC", "energy (J)", "EDP (J*s)"
            );
            for arch in [
                Arch::atac_plus(),
                Arch::atac_baseline(),
                Arch::EMeshBcast,
                Arch::EMeshPure,
            ] {
                let cfg = SimConfig {
                    arch,
                    ..spec.cfg.clone()
                };
                let r = atac::run_benchmark(&cfg, spec.bench, spec.scale);
                println!(
                    "{:<14} {:>12} {:>10.4} {:>14.4e} {:>14.4e}",
                    r.arch,
                    r.cycles,
                    r.ipc,
                    r.energy.total().value(),
                    r.edp(&cfg).value()
                );
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_full_run_spec() {
        let spec = parse_run(&s(&[
            "--bench",
            "radix",
            "--arch",
            "distance-25",
            "--cores",
            "64",
            "--scale",
            "test",
            "--protocol",
            "dir8b",
            "--scenario",
            "cons",
            "--flit",
            "128",
            "--ndd",
            "0.4",
        ]))
        .expect("parses");
        assert_eq!(spec.bench, Benchmark::Radix);
        assert_eq!(
            spec.cfg.arch,
            Arch::Atac(RoutingPolicy::Distance(25), ReceiveNet::StarNet)
        );
        assert_eq!(spec.cfg.topo.cores(), 64);
        assert_eq!(spec.cfg.protocol, ProtocolKind::DirB { k: 8 });
        assert_eq!(spec.cfg.scenario, PhotonicScenario::Conservative);
        assert_eq!(spec.cfg.flit_width, 128);
        assert_eq!(spec.scale, Scale::Test);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_run(&s(&["--bench", "nope"])).is_err());
        assert!(parse_run(&s(&["--bench"])).is_err());
        assert!(parse_run(&s(&["bench", "radix"])).is_err());
        assert!(parse_run(&s(&["--bench", "radix", "--cores", "100"])).is_err());
        assert!(parse_run(&s(&[])).is_err(), "--bench required");
        assert!(parse_arch("warp-drive").is_err());
        assert!(parse_protocol("mesi").is_err());
    }

    #[test]
    fn parses_tracing_flags() {
        let spec = parse_run(&s(&[
            "--bench",
            "radix",
            "--metrics-out",
            "m.jsonl",
            "--trace-out",
            "t.json",
            "--epoch-cycles",
            "5000",
        ]))
        .expect("parses");
        assert!(spec.traced());
        assert_eq!(spec.metrics_out.as_deref(), Some("m.jsonl"));
        assert_eq!(spec.trace_out.as_deref(), Some("t.json"));
        assert_eq!(spec.epoch_cycles, Some(5000));

        let plain = parse_run(&s(&["--bench", "radix"])).expect("parses");
        assert!(!plain.traced());
        assert!(parse_run(&s(&["--bench", "radix", "--epoch-cycles", "0"])).is_err());
        assert!(parse_run(&s(&["--bench", "radix", "--epoch-cycles", "soon"])).is_err());
    }

    #[test]
    fn parses_all_architectures() {
        for a in ["atac+", "atac", "emesh-bcast", "emesh-pure", "distance-15"] {
            assert!(parse_arch(a).is_ok(), "{a}");
        }
    }

    #[test]
    fn parses_all_benchmarks() {
        for b in Benchmark::ALL {
            assert_eq!(parse_bench(b.name()).unwrap(), b);
        }
    }
}
