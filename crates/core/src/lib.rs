//! # atac — end-to-end evaluation framework for the ATAC+ nanophotonic
//! 1024-core architecture
//!
//! This is the umbrella crate of a full reproduction of *"Cross-layer
//! Energy and Performance Evaluation of a Nanophotonic Manycore Processor
//! System Using Real Application Workloads"* (Kurian et al., IPDPS 2012).
//! It re-exports the five substrate crates and provides the high-level
//! experiment API the examples and the figure-regeneration harness use.
//!
//! ## Layers
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`phys`] | `atac-phys` | 11 nm electrical + photonic device models (DSENT/McPAT substitute) |
//! | [`net`] | `atac-net` | cycle-level NoC simulator: EMesh-Pure/BCast, ATAC, ATAC+ |
//! | [`coherence`] | `atac-coherence` | caches + ACKwise_k / Dir_kB directory protocols |
//! | [`workloads`] | `atac-workloads` | SPLASH-2-class application kernels + dynamic graph |
//! | [`sim`] | `atac-sim` | execution-driven full-system simulator + energy integration |
//!
//! ## Quickstart
//!
//! ```
//! use atac::prelude::*;
//!
//! // A 64-core chip for a fast demonstration (the paper's chip is
//! // Topology::atac_1024()).
//! let cfg = SimConfig {
//!     topo: Topology::small(8, 4),
//!     arch: Arch::atac_plus(),
//!     ..SimConfig::default()
//! };
//! let result = atac::run_benchmark(&cfg, Benchmark::OceanContig, Scale::Test);
//! assert!(result.cycles > 0);
//! println!(
//!     "{} on {}: {} cycles, {:.3e} J, EDP {:.3e} J·s",
//!     result.workload,
//!     result.arch,
//!     result.cycles,
//!     result.energy.total().value(),
//!     result.edp(&cfg).value(),
//! );
//! ```

pub use atac_coherence as coherence;
pub use atac_net as net;
pub use atac_phys as phys;
pub use atac_sim as sim;
pub use atac_trace as trace;
pub use atac_workloads as workloads;

pub use atac_sim::{run, Arch, EnergyBreakdown, SimConfig, SimResult};
pub use atac_trace::{ProbeHandle, TraceCollector};
pub use atac_workloads::{Benchmark, Scale};

/// Everything needed to configure and run an experiment.
pub mod prelude {
    pub use crate::coherence::ProtocolKind;
    pub use crate::net::{ReceiveNet, RoutingPolicy, Topology};
    pub use crate::phys::units::{JouleSeconds, Joules, Seconds, Watts};
    pub use crate::phys::PhotonicScenario;
    pub use crate::sim::{run, Arch, EnergyBreakdown, SimConfig, SimResult};
    pub use crate::trace::{ProbeHandle, TraceCollector};
    pub use crate::workloads::{Benchmark, Scale};
}

/// Build the named benchmark for `cfg`'s core count and run it to
/// completion. Deterministic: identical inputs produce identical results.
pub fn run_benchmark(cfg: &SimConfig, benchmark: Benchmark, scale: Scale) -> SimResult {
    let workload = benchmark.build(cfg.topo.cores(), scale);
    atac_sim::run(cfg, &workload)
}

/// [`run_benchmark`] with instrumentation: events flow to `probe`, and
/// `epoch_cycles` (if set) enables the engine's epoch sampler. With a
/// disabled probe this returns a result bit-identical to
/// [`run_benchmark`].
pub fn run_benchmark_traced(
    cfg: &SimConfig,
    benchmark: Benchmark,
    scale: Scale,
    probe: ProbeHandle,
    epoch_cycles: Option<u64>,
) -> SimResult {
    let workload = benchmark.build(cfg.topo.cores(), scale);
    atac_sim::run_with_probe(cfg, &workload, probe, epoch_cycles)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn quickstart_flow() {
        let cfg = SimConfig {
            topo: Topology::small(8, 4),
            ..SimConfig::default()
        };
        let r = crate::run_benchmark(&cfg, Benchmark::LuContig, Scale::Test);
        assert!(r.cycles > 0);
        assert!(r.energy.total().value() > 0.0);
        assert!(r.edp(&cfg).value() > 0.0);
    }

    #[test]
    fn public_api_covers_the_paper_matrix() {
        // All four architectures, both protocols, all four scenarios are
        // reachable through the prelude.
        let _ = [
            Arch::EMeshPure,
            Arch::EMeshBcast,
            Arch::atac_baseline(),
            Arch::atac_plus(),
        ];
        let _ = [ProtocolKind::AckWise { k: 4 }, ProtocolKind::DirB { k: 4 }];
        let _ = PhotonicScenario::ALL;
        let _ = Benchmark::ALL;
    }
}
