//! SI unit newtypes.
//!
//! Every physical model in this crate computes with these thin wrappers
//! over `f64` rather than bare floats, so a Joule cannot silently be added
//! to a Watt. Only the operations that are dimensionally meaningful are
//! implemented (e.g. `Watts * Seconds -> Joules`, `Farads * Volts^2 ->
//! Joules`), which catches most unit mistakes at compile time while staying
//! zero-cost at run time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw `f64` value in base SI units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Maximum of two quantities.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Minimum of two quantities.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two like quantities.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4e} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Length in metres.
    Meters,
    "m"
);
unit!(
    /// Area in square metres.
    SquareMeters,
    "m^2"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electric current in amperes.
    Amps,
    "A"
);
unit!(
    /// Energy-delay product in joule-seconds (the paper's headline
    /// comparison metric, Fig. 8).
    JouleSeconds,
    "J*s"
);

/// Optical power ratio expressed in decibels (positive = loss).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Decibels(pub f64);

impl Decibels {
    /// No loss.
    pub const ZERO: Decibels = Decibels(0.0);

    /// The linear power ratio `10^(dB/10)` this loss multiplies input power by.
    ///
    /// A *loss* of `x` dB means the required input power is
    /// `output * 10^(x/10)`.
    #[inline]
    pub fn linear_factor(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Construct from a linear power ratio (> 0).
    #[inline]
    pub fn from_linear(ratio: f64) -> Decibels {
        assert!(ratio > 0.0, "linear power ratio must be positive");
        Decibels(10.0 * ratio.log10())
    }

    /// Raw dB value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Add for Decibels {
    type Output = Decibels;
    #[inline]
    fn add(self, rhs: Decibels) -> Decibels {
        Decibels(self.0 + rhs.0)
    }
}

impl Sub for Decibels {
    type Output = Decibels;
    #[inline]
    fn sub(self, rhs: Decibels) -> Decibels {
        Decibels(self.0 - rhs.0)
    }
}

impl AddAssign for Decibels {
    #[inline]
    fn add_assign(&mut self, rhs: Decibels) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Decibels {
    type Output = Decibels;
    #[inline]
    fn mul(self, rhs: f64) -> Decibels {
        Decibels(self.0 * rhs)
    }
}

impl Sum for Decibels {
    fn sum<I: Iterator<Item = Decibels>>(iter: I) -> Decibels {
        Decibels(iter.map(|x| x.0).sum())
    }
}

impl fmt::Display for Decibels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} dB", self.0)
    }
}

// ------------------------------------------------------------------
// Cross-unit arithmetic (only the physically meaningful products).
// ------------------------------------------------------------------

impl Mul<Seconds> for Joules {
    type Output = JouleSeconds;
    #[inline]
    fn mul(self, rhs: Seconds) -> JouleSeconds {
        JouleSeconds(self.0 * rhs.0)
    }
}

impl Mul<Joules> for Seconds {
    type Output = JouleSeconds;
    #[inline]
    fn mul(self, rhs: Joules) -> JouleSeconds {
        JouleSeconds(self.0 * rhs.0)
    }
}

impl Div<Seconds> for JouleSeconds {
    type Output = Joules;
    #[inline]
    fn div(self, rhs: Seconds) -> Joules {
        Joules(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Meters> for Meters {
    type Output = SquareMeters;
    #[inline]
    fn mul(self, rhs: Meters) -> SquareMeters {
        SquareMeters(self.0 * rhs.0)
    }
}

impl Farads {
    /// Switching energy `C * V^2` of a full-swing transition on this
    /// capacitance (charged then discharged; the canonical CMOS dynamic
    /// energy accounting where each complete charge/discharge pair draws
    /// `C*V^2` from the supply).
    #[inline]
    pub fn switching_energy(self, vdd: Volts) -> Joules {
        Joules(self.0 * vdd.0 * vdd.0)
    }

    /// Energy drawn from the supply for a single low→high transition,
    /// `1/2 C V^2` stored on the cap (the other half is dissipated in the
    /// pull-up; both halves are eventually heat, so for energy accounting
    /// per *transition pair* use [`Farads::switching_energy`]).
    #[inline]
    pub fn half_cv2(self, vdd: Volts) -> Joules {
        Joules(0.5 * self.0 * vdd.0 * vdd.0)
    }
}

// ------------------------------------------------------------------
// Convenience constructors.
// ------------------------------------------------------------------

/// Femtofarads.
#[inline]
pub fn ff(v: f64) -> Farads {
    Farads(v * 1e-15)
}

/// Picojoules.
#[inline]
pub fn pj(v: f64) -> Joules {
    Joules(v * 1e-12)
}

/// Femtojoules.
#[inline]
pub fn fj(v: f64) -> Joules {
    Joules(v * 1e-15)
}

/// Milliwatts.
#[inline]
pub fn mw(v: f64) -> Watts {
    Watts(v * 1e-3)
}

/// Microwatts.
#[inline]
pub fn uw(v: f64) -> Watts {
    Watts(v * 1e-6)
}

/// Nanoseconds.
#[inline]
pub fn ns(v: f64) -> Seconds {
    Seconds(v * 1e-9)
}

/// Micrometres.
#[inline]
pub fn um(v: f64) -> Meters {
    Meters(v * 1e-6)
}

/// Millimetres.
#[inline]
pub fn mm(v: f64) -> Meters {
    Meters(v * 1e-3)
}

/// Square millimetres.
#[inline]
pub fn mm2(v: f64) -> SquareMeters {
    SquareMeters(v * 1e-6)
}

/// Square micrometres.
#[inline]
pub fn um2(v: f64) -> SquareMeters {
    SquareMeters(v * 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_power_time_algebra() {
        let p = Watts(2.0);
        let t = Seconds(3.0);
        assert_eq!(p * t, Joules(6.0));
        assert_eq!(t * p, Joules(6.0));
        assert_eq!(Joules(6.0) / t, p);
        assert_eq!(Joules(6.0) / p, t);
    }

    #[test]
    fn decibel_roundtrip() {
        for loss in [0.0, 0.2, 1.0, 3.0103, 10.0] {
            let db = Decibels(loss);
            let back = Decibels::from_linear(db.linear_factor());
            assert!((back.value() - loss).abs() < 1e-9, "{loss}");
        }
        // 3.0103 dB is a factor of ~2.
        assert!((Decibels(3.0102999566).linear_factor() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn decibel_addition_is_linear_multiplication() {
        let a = Decibels(1.5);
        let b = Decibels(2.5);
        let combined = (a + b).linear_factor();
        assert!((combined - a.linear_factor() * b.linear_factor()).abs() < 1e-12);
    }

    #[test]
    fn capacitor_switching_energy() {
        // 1 fF at 0.6 V -> 0.36 fJ per full transition pair.
        let e = ff(1.0).switching_energy(Volts(0.6));
        assert!((e.value() - 0.36e-15).abs() < 1e-24);
        assert!((ff(1.0).half_cv2(Volts(0.6)).value() - 0.18e-15).abs() < 1e-24);
    }

    #[test]
    fn unit_sums_and_ordering() {
        let total: Joules = [pj(1.0), pj(2.0), pj(3.0)].into_iter().sum();
        assert!((total.value() - 6e-12).abs() < 1e-21);
        assert!(pj(2.0) > pj(1.0));
        assert_eq!(pj(2.0).max(pj(5.0)), pj(5.0));
        assert_eq!(pj(2.0).min(pj(5.0)), pj(2.0));
    }

    #[test]
    fn scalar_scaling() {
        assert_eq!(Watts(2.0) * 3.0, Watts(6.0));
        assert_eq!(3.0 * Watts(2.0), Watts(6.0));
        assert_eq!(Watts(6.0) / 3.0, Watts(2.0));
        assert!((Watts(6.0) / Watts(3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn area_from_lengths() {
        let a = mm(2.0) * mm(3.0);
        assert!((a.value() - 6e-6).abs() < 1e-15);
    }

    #[test]
    fn display_formats_contain_suffix() {
        assert!(format!("{}", Joules(1.0)).contains('J'));
        assert!(format!("{}", Decibels(1.0)).contains("dB"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn decibel_from_nonpositive_ratio_panics() {
        let _ = Decibels::from_linear(0.0);
    }
}
