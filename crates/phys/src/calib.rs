//! Calibration constants.
//!
//! Everything in this module is a modeling choice *not* printed in the
//! paper's tables. Each constant is documented with its provenance
//! (DSENT/McPAT defaults, the Georgas et al. CICC'11 link paper the authors
//! cite as reference 28, or ITRS-class projections). Centralizing them here keeps
//! the physically-published parameters (Tables II/III) clean in
//! [`crate::tech`] / [`crate::photonics`], and makes sensitivity studies
//! trivial: the ablation benches sweep these.

/// Minimum optical power at a photodetector for error-free reception at
/// 1 GHz signalling, in watts.
///
/// Georgas et al. report receiver sensitivities of a few µA; with the
/// paper's 1.1 A/W responsivity that is a few µW of optical power. We use
/// 4 µW, which also lands the paper's reported dynamic-energy crossover
/// between ENet and ONet unicasts at ≈ 8 mesh hops (§IV-C).
pub const RECEIVER_SENSITIVITY_W: f64 = 4e-6;

/// Wall-plug power to run one ring's *thermal tuning* in the non-athermal
/// ("Tuned") scenarios, in watts.
///
/// Electrically-assisted thermal tuning per Georgas-et-al.-era estimates runs
/// single-digit µW to tens of µW per ring depending on the assumed
/// process/temperature corner. With the ATAC+ ring count (~290 K rings
/// including the select link) 8 µW/ring yields ~2.3 W of chip-level
/// tuning power, reproducing Fig. 7's observation that ring tuning is the
/// same order as the un-gated laser and roughly doubles the RingTuned
/// flavor's network+cache energy.
pub const RING_TUNING_W_PER_RING: f64 = 8e-6;

/// Modulator dynamic energy per bit (driver + junction), joules.
/// Georgas-class depletion modulators at advanced nodes: ~40 fJ/bit.
pub const MODULATOR_ENERGY_PER_BIT_J: f64 = 40e-15;

/// Receiver (TIA + clocked sense) dynamic energy per bit, joules.
/// Georgas-class receivers: ~50 fJ/bit.
pub const RECEIVER_ENERGY_PER_BIT_J: f64 = 50e-15;

/// Static (bias) power of one receiver front-end while tuned-in, watts.
/// Receivers on the select link stay tuned-in permanently; data-link
/// receivers only while receiving a message.
pub const RECEIVER_BIAS_W: f64 = 10e-6;

/// Fixed optical losses on any path that are not the waveguide itself:
/// modulator insertion loss (dB).
pub const MODULATOR_INSERTION_LOSS_DB: f64 = 1.0;

/// Miscellaneous path losses (bends, splitters other than the 1/N receive
/// split, photonic-die interface), dB.
pub const MISC_PATH_LOSS_DB: f64 = 0.5;

/// Physical length of the ONet serpentine ring waveguide, metres.
///
/// The ONet loops through all 64 hub positions of an 8×8 cluster grid and
/// closes on itself. For the ~500 mm² die our area model produces, the
/// serpentine is ≈ 8 cm. The worst-case sender→receiver path is the full
/// loop.
pub const ONET_WAVEGUIDE_LENGTH_M: f64 = 8e-2;

/// SRAM leakage multiplier over the raw 6T subthreshold estimate.
///
/// McPAT adds gate leakage, junction leakage and always-on periphery
/// (sense amps, decoders, repeaters) that our 6T-only estimate misses; at
/// HVT these dominate. The multiplier is chosen so a 256 KB L2 leaks
/// ~2.5 mW, which reproduces the paper's statement that L2 energy is
/// "evenly split between the leakage and dynamic components" for the
/// SPLASH-2 runs.
pub const SRAM_LEAKAGE_MULT: f64 = 10.0;

/// Fraction of a cache's peripheral clock/decode energy charged per cycle
/// even without an access (ungated-clock NDD contributor), as a fraction
/// of one read's energy.
pub const CACHE_IDLE_CLOCK_FRACTION: f64 = 0.02;

/// Router clock + control leakage overhead as a fraction of the router's
/// buffer leakage (arbiter state, pipeline registers).
pub const ROUTER_CONTROL_OVERHEAD: f64 = 0.5;

/// Side length of one core tile, metres.
///
/// 1024 tiles of 0.7 mm give a 22.4 mm die (≈ 500 mm²), consistent with
/// the cache-dominated area our mini-McPAT model produces for
/// 32+32 KB L1 + 256 KB L2 per core at 11 nm (Fig. 10 scale).
pub const TILE_SIDE_M: f64 = 0.7e-3;

/// Average activity factor for data wires/buffers (probability a given bit
/// toggles per flit). 0.5 is the standard random-data assumption DSENT uses.
pub const DATA_ACTIVITY: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_constants_in_sane_ranges() {
        let in_range = |v: f64, lo: f64, hi: f64| v > lo && v < hi;
        assert!(in_range(RECEIVER_SENSITIVITY_W, 1e-7, 1e-4));
        assert!(in_range(RING_TUNING_W_PER_RING, 1e-6, 1e-3));
        assert!(in_range(MODULATOR_ENERGY_PER_BIT_J, 0.0, 1e-12));
        assert!(in_range(ONET_WAVEGUIDE_LENGTH_M, 0.01, 0.5));
        assert!(in_range(DATA_ACTIVITY, 0.0, 1.0 + f64::EPSILON));
        assert!(in_range(TILE_SIDE_M, 1e-4, 5e-3));
    }
}
